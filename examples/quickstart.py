#!/usr/bin/env python
"""Quickstart: a fault-tolerant counter in ~40 lines.

Deploys an actively replicated counter on two nodes, invokes it from an
unreplicated client, kills one replica mid-stream, and shows that (a) the
failure is masked and (b) the re-launched replica is reinstated with a
consistent state by Eternal's recovery protocol.

Run:  python examples/quickstart.py
"""

from repro import Checkpointable, EternalSystem, FTProperties, operation
from repro.apps.packet_driver import PacketDriverServant


class Counter(Checkpointable):
    """The application object: note there is no fault-tolerance code in it
    beyond inheriting Checkpointable and implementing get/set_state."""

    type_id = "IDL:example/Counter:1.0"

    def __init__(self):
        self.value = 0

    @operation
    def echo(self, token):
        # the packet driver streams echo(); we also count invocations
        self.value += 1
        return token

    def get_state(self):
        return {"value": self.value}

    def set_state(self, state):
        self.value = state["value"]


def main():
    system = EternalSystem(["manager", "client", "server-1", "server-2"])

    # Replicate the counter on the two server nodes.
    system.register_factory(Counter.type_id, Counter,
                            nodes=["server-1", "server-2"])
    group = system.create_group(
        "counter", Counter.type_id,
        FTProperties(initial_replicas=2, min_replicas=1),
        nodes=["server-1", "server-2"],
    )
    system.run_for(0.05)      # simulated seconds: ring forms, group deploys
    print(f"deployed on {group.operational_nodes()}  "
          f"IOGR={group.iogr().stringify()[:48]}…")

    # A streaming client (the paper's packet driver).
    iogr = group.iogr().stringify()
    system.register_factory("IDL:repro/PacketDriver:1.0",
                            lambda: PacketDriverServant(iogr),
                            nodes=["client"])
    system.create_group("driver", "IDL:repro/PacketDriver:1.0",
                        FTProperties(initial_replicas=1), nodes=["client"])
    system.run_for(0.2)

    replica = {n: group.servant_on(n) for n in ("server-1", "server-2")}
    print(f"t={system.now:.3f}s  counts: "
          f"{replica['server-1'].value} / {replica['server-2'].value}")

    # Kill one replica; the other masks the failure.
    print("killing server-2 …")
    system.kill_node("server-2")
    system.run_for(0.2)
    print(f"t={system.now:.3f}s  service continued, server-1 count = "
          f"{replica['server-1'].value}")

    # Re-launch it; Eternal synchronizes all three kinds of state.
    print("re-launching server-2 …")
    relaunch = system.now
    system.restart_node("server-2")
    system.wait_for(lambda: group.is_operational_on("server-2"), timeout=5)
    print(f"recovered in {(system.now - relaunch) * 1000:.1f} ms "
          f"(simulated)")

    system.run_for(0.2)
    s1 = group.servant_on("server-1")
    s2 = group.servant_on("server-2")
    print(f"t={system.now:.3f}s  counts: {s1.value} / {s2.value}  "
          f"consistent={s1.value == s2.value}")
    assert s1.value == s2.value, "replicas diverged!"
    print("OK: strong replica consistency held through failure and recovery")


if __name__ == "__main__":
    main()
