#!/usr/bin/env python
"""A bidding war over a fault-tolerant auction house.

Two bidder bots (each its own replicated client group) compete for a lot on
an actively replicated auction house.  Mid-war, one auction replica is
killed and recovered; the war, the rejections, and the final winner are
identical on every replica — including the recovered one.

Run:  python examples/auction_bidding_war.py
"""

from repro import EternalSystem, FTProperties
from repro.apps.auction import AuctionServant
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.giop.messages import ReplyStatus
from repro.orb.servant import operation


class WarBidder(Checkpointable):
    """Raises by a fixed increment whenever it is outbid (via rejection)."""

    type_id = "IDL:example/WarBidder:1.0"

    def __init__(self, auction_ior, name, increment, limit):
        self._ior = auction_ior
        self.name = name
        self.increment = increment
        self.limit = limit
        self.next_amount = 100 + increment
        self.victories = 0
        self.rejections = 0
        self._proxy = None

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._eternal_container.connect(
                IOR.from_string(self._ior)
            )
        return self._proxy

    def start(self):
        self._ensure().invoke("create_auction", "lot", 100,
                              on_reply=lambda r: self._bid())

    def resume(self):
        self._bid()

    def _bid(self):
        if self.next_amount > self.limit:
            return                     # bowed out
        self._ensure().invoke("bid", "lot", self.name, self.next_amount,
                              on_reply=self._on_bid)

    def _on_bid(self, reply):
        if reply.reply_status is ReplyStatus.NO_EXCEPTION:
            self.victories += 1
            # wait to be outbid: probe by re-bidding one increment higher
            self.next_amount += self.increment
            self._bid()
        else:
            self.rejections += 1
            self.next_amount += self.increment
            self._bid()

    def get_state(self):
        return {"name": self.name, "next_amount": self.next_amount,
                "victories": self.victories, "rejections": self.rejections,
                "increment": self.increment, "limit": self.limit}

    def set_state(self, state):
        self.name = state["name"]
        self.next_amount = state["next_amount"]
        self.victories = state["victories"]
        self.rejections = state["rejections"]
        self.increment = state["increment"]
        self.limit = state["limit"]


def main():
    system = EternalSystem(["m", "alice-node", "bob-node", "h1", "h2"])
    system.register_factory(AuctionServant.type_id, AuctionServant,
                            nodes=["h1", "h2"])
    house = system.create_group("house", AuctionServant.type_id,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["h1", "h2"])
    system.run_for(0.05)
    iogr = house.iogr().stringify()

    system.register_factory("IDL:example/Alice:1.0",
                            lambda: WarBidder(iogr, "alice", 7, 2_000),
                            nodes=["alice-node"])
    system.register_factory("IDL:example/Bob:1.0",
                            lambda: WarBidder(iogr, "bob", 11, 1_500),
                            nodes=["bob-node"])
    system.create_group("alice", "IDL:example/Alice:1.0",
                        FTProperties(initial_replicas=1),
                        nodes=["alice-node"])
    system.create_group("bob", "IDL:example/Bob:1.0",
                        FTProperties(initial_replicas=1),
                        nodes=["bob-node"])
    system.run_for(0.3)

    print("mid-war: killing auction replica h2 and recovering it …")
    system.kill_node("h2")
    system.run_for(0.2)
    system.restart_node("h2")
    system.wait_for(lambda: house.is_operational_on("h2"), timeout=5.0)

    # let the war run to exhaustion, then close
    system.run_for(2.0)
    closer = house.connect_from("h1")
    winner = []
    closer.invoke("close_auction", "lot",
                  on_reply=lambda r: winner.append(r.result))
    system.wait_for(lambda: bool(winner), timeout=2.0)
    system.run_for(0.1)

    h1 = house.servant_on("h1")
    h2 = house.servant_on("h2")
    status = h1.status("lot")
    print(f"winner: {winner[0]}  high bid: {status['high_bid']}  "
          f"total bids: {status['bids']}")
    print(f"replica agreement: h1==h2 → {h1.get_state() == h2.get_state()}")
    h1.check_invariants()
    h2.check_invariants()
    assert h1.get_state() == h2.get_state()
    assert winner[0] == "alice"        # the deeper pocket wins
    print("OK: the war survived the fault; both replicas agree on history")


if __name__ == "__main__":
    main()
