#!/usr/bin/env python
"""The paper's §6 experiment as a runnable demo (Figure 6).

"The client object of the test application acts as a packet driver, sending
a constant stream of two-way invocations to the actively replicated server
object.  During the experiments, one or the other of the server replicas
was killed and then re-launched.  The time to recover such a failed replica
was measured as the time interval between the re-launch of the failed
replica and the replica's reinstatement to normal operation."

This demo sweeps the application-level state size and prints the recovery
time curve — the same shape as the paper's Figure 6 (flat below one
Ethernet frame, then linear in the number of multicast fragments).

Run:  python examples/packet_driver_demo.py
"""

from repro.bench.deployments import build_client_server, measure_recovery
from repro.ftcorba.properties import ReplicationStyle

STATE_SIZES = [10, 1_000, 10_000, 50_000, 100_000, 200_000, 350_000]
MTU_PAYLOAD = 1500 - 32


def main():
    print("state bytes   fragments   recovery (ms, simulated)")
    print("-" * 52)
    for size in STATE_SIZES:
        deployment = build_client_server(
            style=ReplicationStyle.ACTIVE,
            server_replicas=2,
            state_size=size,
            warmup=0.2,
        )
        recovery_time = measure_recovery(deployment, "s2")
        fragments = max(1, -(-size // MTU_PAYLOAD))
        bar = "#" * int(recovery_time * 1000 / 2)
        print(f"{size:>11,}   {fragments:>9}   {recovery_time * 1e3:>8.2f}  {bar}")
        # sanity: the recovered replica is consistent with the survivor
        deployment.system.run_for(0.2)
        s1 = deployment.server_servant("s1")
        s2 = deployment.server_servant("s2")
        assert s1.echo_count == s2.echo_count
    print("\nshape check: flat below one Ethernet frame (1518 B), then")
    print("linear in the number of multicast fragments — Figure 6.")


if __name__ == "__main__":
    main()
