#!/usr/bin/env python
"""Narrated recovery: watch the §5.1 protocol step by step.

Runs the paper's kill-and-relaunch experiment once with tracing enabled and
prints the annotated timeline — fault injection, ring membership events,
the get_state() synchronization point, the fabricated set_state() with its
piggybacked state, the handshake replay, and reinstatement — followed by a
per-recovery summary, the online audit verdict, and a health snapshot.

Run:  python examples/recovery_timeline.py
"""

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.health import render_health
from repro.tools import recovery_summary, render_timeline


def main():
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=50_000,
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    # verify the §5.1 invariants live while the fault plays out
    auditor = system.attach_auditor()

    print("killing server replica s2 …")
    kill_time = system.now
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    system.run_for(0.05)

    print("\n=== timeline (fault → reinstatement) ===")
    print(render_timeline(
        system.tracer,
        categories={"fault", "process", "totem", "recovery"},
        since=kill_time,
        group="store",
    ))

    print("\n=== recovery summary ===")
    for summary in recovery_summary(system.tracer):
        duration_ms = (summary.duration or 0) * 1000
        print(f"  group={summary.group} node={summary.node}  "
              f"state={summary.state_bytes} B  "
              f"announced→recovered: {duration_ms:.2f} ms")

    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    system.run_for(0.2)
    print(f"\nconsistency after recovery: s1={s1.echo_count} "
          f"s2={s2.echo_count}  equal={s1.echo_count == s2.echo_count}")
    assert s1.echo_count == s2.echo_count

    print("\n=== online audit ===")
    auditor.finish()
    print(auditor.summary())

    print("\n=== health snapshot ===")
    print(render_health(system), end="")
    assert auditor.ok


if __name__ == "__main__":
    main()
