#!/usr/bin/env python
"""Partitioned operation and remerge.

Eternal "sustains operation in all components of a partitioned system,
should a partition occur" (paper §2).  This demo isolates one server
replica: the majority component keeps serving; the Replication Manager
drops the unreachable member.  When the partition heals, the rings merge
(primary-component semantics — the majority's history is canonical) and the
returning node's replica is re-added and re-synchronized through the
standard recovery protocol.

Run:  python examples/partition_demo.py
"""

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle


def main():
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=1_000,
        warmup=0.2,
    )
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver

    print(f"t={system.now:.2f}s  members={group.member_nodes()}  "
          f"acked={driver.acked}")

    print("partitioning: {m, c1, s1} | {s2} …")
    system.faults.partition([{"m", "c1", "s1"}, {"s2"}])
    before = driver.acked
    system.run_for(0.5)
    print(f"t={system.now:.2f}s  majority kept serving: "
          f"acked {before} → {driver.acked}")
    print(f"           group members now {group.member_nodes()} "
          f"(s2 dropped)")

    print("healing the partition …")
    system.faults.heal()
    recovered = system.wait_for(lambda: group.is_operational_on("s2"),
                                timeout=10.0)
    print(f"t={system.now:.2f}s  s2 re-added and recovered: {recovered}")

    system.run_for(0.3)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    print(f"final echo counts: {s1.echo_count} / {s2.echo_count}  "
          f"consistent={s1.echo_count == s2.echo_count}")
    assert recovered and s1.echo_count == s2.echo_count
    print("OK: service survived the partition; the returning replica was "
          "re-synchronized")


if __name__ == "__main__":
    main()
