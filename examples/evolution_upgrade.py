#!/usr/bin/env python
"""Live software upgrade via the Evolution Manager (paper §2).

"The Eternal Evolution Manager exploits object replication to support
upgrades to the CORBA application objects."  Each replica is replaced in
turn; the recovery protocol transfers the surviving replicas' state into
the upgraded implementation, so the service never stops and no state is
lost.  The V2 implementation migrates V1 state inside ``set_state()``.

Run:  python examples/evolution_upgrade.py
"""

from repro import EternalSystem, FTProperties
from repro.apps.kvstore import KvStoreServant
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


class KvStoreV2(KvStoreServant):
    """V2 adds a feature flag and migrates V1 state transparently."""

    IMPLEMENTATION_VERSION = 2

    def set_state(self, state):
        # migration contract: accept V1 state (no 'v2_migrated' marker)
        super().set_state(state)
        self.v2_migrated = True


def main():
    system = EternalSystem(["manager", "client", "s1", "s2"])
    system.register_factory(KVSTORE, lambda: KvStoreServant(500),
                            nodes=["s1", "s2"], version=0)
    system.register_factory(KVSTORE, lambda: KvStoreV2(500),
                            nodes=["s1", "s2"], version=1)
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["s1", "s2"])
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["client"])
    driver_group = system.create_group("drv", DRIVER,
                                       FTProperties(initial_replicas=1),
                                       nodes=["client"])
    system.run_for(0.3)
    driver = driver_group.servant_on("client")

    v1 = store.servant_on("s1")
    print(f"running V{getattr(v1, 'IMPLEMENTATION_VERSION', 1)}, "
          f"echo_count={v1.echo_count}, client acked={driver.acked}")

    print("rolling upgrade to V2 …")
    done = []
    acked_at_start = driver.acked
    system.evolution_manager.upgrade("store", 1,
                                     on_complete=lambda: done.append(1))
    assert system.wait_for(lambda: bool(done), timeout=10.0)
    system.run_for(0.3)

    for node in ("s1", "s2"):
        servant = store.servant_on(node)
        assert servant.IMPLEMENTATION_VERSION == 2
        assert servant.v2_migrated
    s1, s2 = store.servant_on("s1"), store.servant_on("s2")
    print(f"upgraded: both replicas are V2 (migrated={s1.v2_migrated})")
    print(f"state survived: echo counts {s1.echo_count} / {s2.echo_count}")
    print(f"service never stopped: client progressed "
          f"{acked_at_start} → {driver.acked} during the upgrade")
    assert s1.echo_count == s2.echo_count
    assert driver.acked > acked_at_start
    print("OK")


if __name__ == "__main__":
    main()
