#!/usr/bin/env python
"""Warm-passive bank: checkpointing, primary failover, and log replay.

A bank object is replicated warm-passively: the primary executes all
operations; every 100 ms its state is retrieved via the fabricated
``get_state()`` and transferred to the backup (plus logged); the ordered
messages since the checkpoint stay in the log.  When the primary is killed
mid-traffic, the backup is promoted: it already holds the last checkpoint,
replays the logged messages, and continues — no acknowledged deposit is
lost and none is applied twice.

Run:  python examples/bank_failover.py
"""

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.bank import BankServant
from repro.apps.packet_driver import PacketDriverServant
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.giop.messages import ReplyStatus
from repro.orb.servant import operation


class DepositClient(Checkpointable):
    """Streams deposits into one account and tracks the balance it saw."""

    type_id = "IDL:example/DepositClient:1.0"

    def __init__(self, bank_ior):
        self._bank_ior = bank_ior
        self.deposits_made = 0
        self.last_balance = 0
        self._proxy = None

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._eternal_container.connect(
                IOR.from_string(self._bank_ior)
            )
        return self._proxy

    def start(self):
        self._ensure().invoke("open_account", "alice", 0,
                              on_reply=self._on_reply)

    def resume(self):
        # single in-flight invocation: re-issue it (suppressed on the wire)
        self._deposit()

    def _deposit(self):
        self._ensure().invoke("deposit", "alice", 10,
                              on_reply=self._on_reply)

    def _on_reply(self, reply):
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        if isinstance(reply.result, int):
            self.last_balance = reply.result
        self.deposits_made += 1
        self._deposit()

    def get_state(self):
        return {"deposits_made": self.deposits_made,
                "last_balance": self.last_balance}

    def set_state(self, state):
        self.deposits_made = state["deposits_made"]
        self.last_balance = state["last_balance"]


def main():
    system = EternalSystem(["manager", "client", "bank-1", "bank-2"])
    system.register_factory(BankServant.type_id, BankServant,
                            nodes=["bank-1", "bank-2"])
    bank = system.create_group(
        "bank", BankServant.type_id,
        FTProperties(replication_style=ReplicationStyle.WARM_PASSIVE,
                     initial_replicas=2, min_replicas=1,
                     checkpoint_interval=0.1),
        nodes=["bank-1", "bank-2"],
    )
    system.run_for(0.05)

    iogr = bank.iogr().stringify()
    system.register_factory(DepositClient.type_id,
                            lambda: DepositClient(iogr), nodes=["client"])
    client_group = system.create_group(
        "depositor", DepositClient.type_id,
        FTProperties(initial_replicas=1), nodes=["client"],
    )
    system.run_for(0.5)

    client = client_group.servant_on("client")
    primary = bank.primary_node()
    backup = [n for n in ("bank-1", "bank-2") if n != primary][0]
    primary_servant = bank.servant_on(primary)
    print(f"primary={primary}  deposits={client.deposits_made}  "
          f"balance@primary={primary_servant.balances.get('alice')}")
    backup_log = bank.binding_on(backup).log
    print(f"backup checkpoint count={backup_log.checkpoints_taken}  "
          f"log length={backup_log.log_length}")

    print(f"killing primary {primary} …")
    before = client.last_balance
    system.kill_node(primary)
    system.wait_for(lambda: client.last_balance > before + 100, timeout=5)
    print(f"failover complete: new primary={bank.primary_node()}")

    system.run_for(0.3)
    new_primary = bank.servant_on(bank.primary_node())
    balance = new_primary.balances["alice"]
    expected = client.last_balance
    print(f"balance@new-primary={balance}  last client-visible={expected}")
    # Exactly-once: the balance equals the last acknowledged balance or is
    # at most one (in-flight) deposit ahead.
    assert balance in (expected, expected + 10), (balance, expected)
    print("OK: no acknowledged deposit lost, none applied twice")


if __name__ == "__main__":
    main()
