"""A declarative fault-scenario DSL over :class:`~repro.core.system.EternalSystem`.

Reliability tests read better as schedules than as imperative driving
code::

    from repro.scenarios import (Scenario, Run, Kill, Restart,
                                 WaitOperational, ExpectProgress,
                                 ExpectConsistent)

    Scenario(
        Run(0.2),
        Kill("s2"),
        ExpectProgress("driver", min_acks=100, within=0.3),
        Restart("s2"),
        WaitOperational("store", "s2"),
        Run(0.3),
        ExpectConsistent("store", ["s1", "s2"]),
    ).execute(deployment)

Each step appends a transcript line; a failing expectation raises
:class:`ScenarioError` carrying the full transcript, so a broken schedule
reports *where in the fault sequence* the property broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from repro.bench.deployments import ClientServerDeployment
from repro.errors import ReproError


class ScenarioError(ReproError):
    """An expectation failed; ``transcript`` shows the executed schedule."""

    def __init__(self, message: str, transcript: List[str]) -> None:
        rendered = "\n".join(transcript)
        super().__init__(f"{message}\n--- scenario transcript ---\n"
                         f"{rendered}")
        self.transcript = transcript


class Step:
    """Base class: a step acts on the deployment and describes itself."""

    def apply(self, ctx: "ScenarioContext") -> None:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class Run(Step):
    """Advance simulated time."""

    duration: float

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.run_for(self.duration)

    def describe(self) -> str:
        return f"run {self.duration * 1000:.0f} ms"


@dataclass
class Kill(Step):
    """Crash a node's process."""

    node: str

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.kill_node(self.node)

    def describe(self) -> str:
        return f"kill {self.node}"


@dataclass
class Restart(Step):
    """Re-launch a crashed node."""

    node: str

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.restart_node(self.node)

    def describe(self) -> str:
        return f"restart {self.node}"


@dataclass
class Hang(Step):
    """Hang one replica (process stays alive)."""

    group: str
    node: str

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.hang_replica(self.group, self.node)

    def describe(self) -> str:
        return f"hang {self.group}@{self.node}"


@dataclass
class Partition(Step):
    """Split the network into isolated groups of nodes."""

    groups: Sequence[Iterable[str]]

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.faults.partition(self.groups)

    def describe(self) -> str:
        sides = " | ".join("{" + ",".join(sorted(g)) + "}"
                           for g in self.groups)
        return f"partition {sides}"


@dataclass
class Heal(Step):
    """Remove any partition."""

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.faults.heal()

    def describe(self) -> str:
        return "heal partition"


@dataclass
class SetLoss(Step):
    """Set the network loss rate."""

    rate: float

    def apply(self, ctx: "ScenarioContext") -> None:
        ctx.system.faults.set_loss_rate(self.rate)

    def describe(self) -> str:
        return f"loss rate {self.rate:.0%}"


@dataclass
class WaitOperational(Step):
    """Wait until a group's replica on a node is operational."""

    group: str
    node: str
    timeout: float = 10.0

    def apply(self, ctx: "ScenarioContext") -> None:
        handle = ctx.group(self.group)
        if not ctx.system.wait_for(
                lambda: handle.is_operational_on(self.node),
                timeout=self.timeout):
            ctx.fail(f"{self.group}@{self.node} not operational within "
                     f"{self.timeout}s")

    def describe(self) -> str:
        return f"wait operational {self.group}@{self.node}"


@dataclass
class ExpectProgress(Step):
    """The packet driver must acknowledge ``min_acks`` more invocations
    within ``within`` simulated seconds."""

    client_group: str
    min_acks: int
    within: float

    def apply(self, ctx: "ScenarioContext") -> None:
        driver = ctx.deployment.driver
        target = driver.acked + self.min_acks
        if not ctx.system.wait_for(lambda: driver.acked >= target,
                                   timeout=self.within):
            ctx.fail(f"client progressed only {driver.acked - target + self.min_acks}"
                     f"/{self.min_acks} acks in {self.within}s")

    def describe(self) -> str:
        return f"expect +{self.min_acks} acks within {self.within}s"


@dataclass
class ExpectStalled(Step):
    """The packet driver must make NO progress for ``duration`` seconds."""

    client_group: str
    duration: float

    def apply(self, ctx: "ScenarioContext") -> None:
        driver = ctx.deployment.driver
        before = driver.acked
        ctx.system.run_for(self.duration)
        if driver.acked != before:
            ctx.fail(f"client progressed {driver.acked - before} acks "
                     f"while expected stalled")

    def describe(self) -> str:
        return f"expect stalled for {self.duration}s"


@dataclass
class ExpectConsistent(Step):
    """All listed live replicas of a group report identical state."""

    group: str
    nodes: Sequence[str]

    def apply(self, ctx: "ScenarioContext") -> None:
        handle = ctx.group(self.group)
        states = {}
        for node in self.nodes:
            servant = handle.servant_on(node)
            if servant is None:
                ctx.fail(f"no live replica of {self.group} on {node}")
            states[node] = servant.get_state()
        reference = states[self.nodes[0]]
        for node, state in states.items():
            if state != reference:
                ctx.fail(f"replica divergence: {self.nodes[0]}={reference!r}"
                         f" vs {node}={state!r}")

    def describe(self) -> str:
        return f"expect {self.group} consistent on {list(self.nodes)}"


@dataclass
class Check(Step):
    """Arbitrary predicate over the deployment."""

    label: str
    predicate: Callable[[ClientServerDeployment], bool]

    def apply(self, ctx: "ScenarioContext") -> None:
        if not self.predicate(ctx.deployment):
            ctx.fail(f"check failed: {self.label}")

    def describe(self) -> str:
        return f"check: {self.label}"


class ScenarioContext:
    """Execution state handed to each step."""

    def __init__(self, deployment: ClientServerDeployment,
                 transcript: List[str]) -> None:
        self.deployment = deployment
        self.system = deployment.system
        self._transcript = transcript

    def group(self, group_id: str):
        if group_id == self.deployment.server_group.group_id:
            return self.deployment.server_group
        if group_id == self.deployment.client_group.group_id:
            return self.deployment.client_group
        from repro.core.system import GroupHandle
        return GroupHandle(self.system, group_id)

    def fail(self, message: str) -> None:
        self._transcript.append(f"  !! {message}")
        raise ScenarioError(message, self._transcript)


class Scenario:
    """An ordered fault/assertion schedule."""

    def __init__(self, *steps: Step) -> None:
        self.steps = list(steps)

    def execute(self, deployment: ClientServerDeployment) -> List[str]:
        """Run every step; returns the transcript on success."""
        transcript: List[str] = []
        ctx = ScenarioContext(deployment, transcript)
        for index, step in enumerate(self.steps):
            stamp = f"t={ctx.system.now * 1000:9.2f} ms"
            transcript.append(f"  {index + 1:2}. {stamp}  {step.describe()}")
            step.apply(ctx)
        return transcript
