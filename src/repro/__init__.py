"""repro — a reproduction of the Eternal system (Narasimhan, Moser,
Melliar-Smith: *State Synchronization and Recovery for Strongly Consistent
Replicated CORBA Objects*, DSN 2001).

Eternal provides transparent fault tolerance for CORBA applications by
replicating objects, conveying their IIOP messages over reliable
totally-ordered multicast, and — this paper's contribution — recovering
failed replicas by synchronizing *three kinds of state* (application-level,
ORB/POA-level, infrastructure-level) at a single logical point in the total
order.

Quick start::

    from repro import EternalSystem, FTProperties, Checkpointable, operation

    class Counter(Checkpointable):
        type_id = "IDL:Counter:1.0"
        def __init__(self): self.value = 0
        @operation
        def increment(self, n):
            self.value += n
            return self.value
        def get_state(self): return {"value": self.value}
        def set_state(self, s): self.value = s["value"]

    system = EternalSystem(["n1", "n2", "n3"])
    system.register_factory("IDL:Counter:1.0", Counter)
    group = system.create_group("ctr", "IDL:Counter:1.0",
                                FTProperties(initial_replicas=2))
    system.run_for(0.1)     # simulated seconds

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
of the paper's evaluation.
"""

from repro.core.config import EternalConfig
from repro.core.system import EternalSystem, GroupHandle
from repro.scenarios import Scenario
from repro.ftcorba.checkpointable import (
    Checkpointable,
    InvalidState,
    NoStateAvailable,
)
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.giop.ior import IOR
from repro.orb.servant import CorbaUserException, operation

__version__ = "1.0.0"

__all__ = [
    "EternalSystem",
    "GroupHandle",
    "EternalConfig",
    "Scenario",
    "FTProperties",
    "ReplicationStyle",
    "Checkpointable",
    "NoStateAvailable",
    "InvalidState",
    "CorbaUserException",
    "operation",
    "IOR",
    "__version__",
]
