"""Reusable replicated test applications.

These are the CORBA application objects the examples, tests, and benchmarks
deploy: every one inherits :class:`~repro.ftcorba.checkpointable.Checkpointable`
and implements ``get_state()`` / ``set_state()``, exactly as the FT-CORBA
standard requires of replicated objects (paper §4.1).

* :class:`~repro.apps.counter.CounterServant` — minimal stateful server.
* :class:`~repro.apps.bank.BankServant` — accounts with history and user
  exceptions (a structured, growing application state).
* :class:`~repro.apps.kvstore.KvStoreServant` — bulk state of configurable
  size (the Figure 6 server).
* :class:`~repro.apps.packet_driver.PacketDriverServant` — the paper's
  measurement client: "a packet driver, sending a constant stream of
  two-way invocations" (§6); replicable as an active client group.
* :class:`~repro.apps.auction.AuctionServant` — auctions with rejected
  bids (user exceptions on the normal path), oneway watch registrations,
  and checkable invariants.
"""

from repro.apps.auction import AuctionServant, BidRejected
from repro.apps.bank import BankServant, InsufficientFunds
from repro.apps.counter import CounterServant
from repro.apps.kvstore import KvStoreServant
from repro.apps.packet_driver import PacketDriverServant

__all__ = [
    "CounterServant",
    "BankServant",
    "InsufficientFunds",
    "KvStoreServant",
    "PacketDriverServant",
    "AuctionServant",
    "BidRejected",
]
