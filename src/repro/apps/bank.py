"""A replicated bank: accounts, transfers, history, user exceptions.

Exercises structured application-level state (nested dicts and lists inside
the CORBA ``any``) and the user-exception path through GIOP replies.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.orb.servant import CorbaUserException, operation


class InsufficientFunds(CorbaUserException):
    """The account balance cannot cover the requested amount."""

    exception_id = "IDL:repro/Bank/InsufficientFunds:1.0"


class NoSuchAccount(CorbaUserException):
    """No account with the requested name exists."""

    exception_id = "IDL:repro/Bank/NoSuchAccount:1.0"


class BankServant(Checkpointable):
    """Accounts with integer balances and a bounded operation history."""

    type_id = "IDL:repro/Bank:1.0"
    MAX_HISTORY = 1000

    def __init__(self) -> None:
        self.balances: Dict[str, int] = {}
        self.history: List[str] = []

    def _note(self, entry: str) -> None:
        self.history.append(entry)
        if len(self.history) > self.MAX_HISTORY:
            del self.history[: len(self.history) - self.MAX_HISTORY]

    def _account(self, name: str) -> int:
        if name not in self.balances:
            raise NoSuchAccount(name)
        return self.balances[name]

    @operation
    def open_account(self, name: str, initial: int = 0) -> int:
        """Create an account (idempotent); returns its balance."""
        if name not in self.balances:
            self.balances[name] = initial
            self._note(f"open {name} {initial}")
        return self.balances[name]

    @operation
    def deposit(self, name: str, amount: int) -> int:
        """Add funds; returns the new balance."""
        balance = self._account(name)
        self.balances[name] = balance + amount
        self._note(f"deposit {name} {amount}")
        return self.balances[name]

    @operation
    def withdraw(self, name: str, amount: int) -> int:
        """Remove funds; raises InsufficientFunds if uncovered."""
        balance = self._account(name)
        if amount > balance:
            raise InsufficientFunds(f"{name}: {amount} > {balance}")
        self.balances[name] = balance - amount
        self._note(f"withdraw {name} {amount}")
        return self.balances[name]

    @operation
    def transfer(self, src: str, dst: str, amount: int) -> int:
        """Move funds between accounts; returns the source balance."""
        src_balance = self._account(src)
        self._account(dst)
        if amount > src_balance:
            raise InsufficientFunds(f"{src}: {amount} > {src_balance}")
        self.balances[src] -= amount
        self.balances[dst] += amount
        self._note(f"transfer {src}->{dst} {amount}")
        return self.balances[src]

    @operation
    def balance(self, name: str) -> int:
        return self._account(name)

    @operation
    def audit(self) -> Dict[str, int]:
        """Totals for invariant checking: sum and account count."""
        return {"total": sum(self.balances.values()),
                "accounts": len(self.balances)}

    def get_state(self) -> Any:
        return {"balances": dict(self.balances),
                "history": list(self.history)}

    def set_state(self, state: Any) -> None:
        try:
            self.balances = dict(state["balances"])
            self.history = list(state["history"])
        except (TypeError, KeyError) as exc:
            raise InvalidState(f"bad bank state: {exc}") from exc
