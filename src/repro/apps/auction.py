"""A replicated auction house: richer application semantics for tests.

Exercises paths the simpler apps don't combine: user exceptions on normal
operations (rejected bids), oneway notifications (non-binding watch
registrations), time-independent deterministic logic (auction close is an
explicit operation, not a timer — replicas must not consult clocks), and a
nested-structure state with invariants the test suite can check after
arbitrary fault schedules:

* the highest bid never decreases;
* a closed auction's winner is the highest bidder at close;
* every accepted bid id is unique and retained in the history.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.orb.servant import CorbaUserException, operation


class BidRejected(CorbaUserException):
    """The bid did not beat the reserve or the current high bid."""

    exception_id = "IDL:repro/Auction/BidRejected:1.0"


class NoSuchAuction(CorbaUserException):
    """No auction with the requested name exists."""

    exception_id = "IDL:repro/Auction/NoSuchAuction:1.0"


class AuctionClosed(CorbaUserException):
    """The auction has been closed; no further bids are accepted."""

    exception_id = "IDL:repro/Auction/AuctionClosed:1.0"


class AuctionServant(Checkpointable):
    """Multiple named auctions with bids, watchers, and explicit close."""

    type_id = "IDL:repro/Auction:1.0"

    def __init__(self) -> None:
        self.auctions: Dict[str, Dict[str, Any]] = {}
        self.bid_counter = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _auction(self, name: str) -> Dict[str, Any]:
        auction = self.auctions.get(name)
        if auction is None:
            raise NoSuchAuction(name)
        return auction

    def _open_auction(self, name: str) -> Dict[str, Any]:
        auction = self._auction(name)
        if auction["closed"]:
            raise AuctionClosed(name)
        return auction

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    @operation
    def create_auction(self, name: str, reserve: int) -> bool:
        """Open a new auction with a reserve price (idempotent)."""
        if name not in self.auctions:
            self.auctions[name] = {
                "reserve": reserve,
                "closed": False,
                "winner": None,
                "high_bid": 0,
                "high_bidder": None,
                "history": [],
                "watchers": [],
            }
        return True

    @operation
    def bid(self, name: str, bidder: str, amount: int) -> int:
        """Place a bid; returns the bid id.  Raises BidRejected unless the
        bid beats both the reserve and the current high bid."""
        auction = self._open_auction(name)
        if amount < auction["reserve"]:
            raise BidRejected(f"{amount} below reserve {auction['reserve']}")
        if amount <= auction["high_bid"]:
            raise BidRejected(f"{amount} does not beat {auction['high_bid']}")
        self.bid_counter += 1
        bid_id = self.bid_counter
        auction["high_bid"] = amount
        auction["high_bidder"] = bidder
        auction["history"].append(
            {"id": bid_id, "bidder": bidder, "amount": amount}
        )
        return bid_id

    @operation(oneway=True)
    def watch(self, name: str, watcher: str) -> None:
        """Register interest (oneway: no reply, best-effort semantics —
        but still totally ordered and executed on every replica)."""
        auction = self.auctions.get(name)
        if auction is None or auction["closed"]:
            return
        if watcher not in auction["watchers"]:
            auction["watchers"].append(watcher)

    @operation
    def close_auction(self, name: str) -> Optional[str]:
        """Close the auction; returns the winner (None if reserve unmet)."""
        auction = self._open_auction(name)
        auction["closed"] = True
        auction["winner"] = auction["high_bidder"]
        return auction["winner"]

    @operation
    def status(self, name: str) -> Dict[str, Any]:
        auction = self._auction(name)
        return {
            "closed": auction["closed"],
            "high_bid": auction["high_bid"],
            "high_bidder": auction["high_bidder"],
            "winner": auction["winner"],
            "bids": len(auction["history"]),
            "watchers": len(auction["watchers"]),
        }

    # ------------------------------------------------------------------
    # Invariants (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any internal invariant is broken."""
        seen_ids: set = set()
        for name, auction in self.auctions.items():
            amounts = [entry["amount"] for entry in auction["history"]]
            assert amounts == sorted(amounts), f"{name}: bids not increasing"
            assert len(set(amounts)) == len(amounts), f"{name}: equal bids"
            for entry in auction["history"]:
                assert entry["id"] not in seen_ids, "duplicate bid id"
                seen_ids.add(entry["id"])
            if auction["history"]:
                top = auction["history"][-1]
                assert auction["high_bid"] == top["amount"]
                assert auction["high_bidder"] == top["bidder"]
            if auction["closed"]:
                assert auction["winner"] == auction["high_bidder"]

    # ------------------------------------------------------------------
    # Checkpointable
    # ------------------------------------------------------------------

    def get_state(self) -> Any:
        return {
            "auctions": {
                name: {
                    "reserve": a["reserve"],
                    "closed": a["closed"],
                    "winner": a["winner"],
                    "high_bid": a["high_bid"],
                    "high_bidder": a["high_bidder"],
                    "history": [dict(e) for e in a["history"]],
                    "watchers": list(a["watchers"]),
                }
                for name, a in self.auctions.items()
            },
            "bid_counter": self.bid_counter,
        }

    def set_state(self, state: Any) -> None:
        try:
            self.auctions = {
                name: {
                    "reserve": a["reserve"],
                    "closed": a["closed"],
                    "winner": a["winner"],
                    "high_bid": a["high_bid"],
                    "high_bidder": a["high_bidder"],
                    "history": [dict(e) for e in a["history"]],
                    "watchers": list(a["watchers"]),
                }
                for name, a in state["auctions"].items()
            }
            self.bid_counter = int(state["bid_counter"])
        except (TypeError, KeyError, ValueError, AttributeError) as exc:
            raise InvalidState(f"bad auction state: {exc}") from exc
