"""A key-value store with bulk state of configurable size.

This is the Figure 6 server: the experiment varies "the size of the
replica's application-level state ... from 10 bytes to 350,000 bytes" and
measures recovery time.  ``preload(size)`` (or constructing via
:func:`make_kvstore_factory`) installs an opaque payload of exactly that
many bytes into the state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.orb.servant import operation


class KvStoreServant(Checkpointable):
    """String-keyed store plus an opaque bulk payload."""

    type_id = "IDL:repro/KvStore:1.0"

    def __init__(self, payload_size: int = 0) -> None:
        self.data: Dict[str, Any] = {}
        self.payload = self._make_payload(payload_size)
        self.echo_count = 0
        self.scribble_count = 0

    @staticmethod
    def _make_payload(size: int) -> bytes:
        if size <= 0:
            return b""
        pattern = b"0123456789abcdef"
        return (pattern * (size // len(pattern) + 1))[:size]

    @operation
    def put(self, key: str, value: Any) -> bool:
        self.data[key] = value
        return True

    @operation(read_only=True)
    def get(self, key: str) -> Any:
        return self.data.get(key)

    @operation
    def delete(self, key: str) -> bool:
        return self.data.pop(key, None) is not None

    @operation(read_only=True)
    def size(self) -> int:
        return len(self.data)

    @operation
    def preload(self, payload_size: int) -> int:
        """Install an opaque payload of exactly ``payload_size`` bytes."""
        self.payload = self._make_payload(payload_size)
        return len(self.payload)

    @operation
    def echo(self, token: int) -> int:
        """The packet driver's two-way no-op; counts invocations."""
        self.echo_count += 1
        return token

    @operation
    def scribble(self, fraction: float = 0.1) -> int:
        """Rewrite a rotating window covering ``fraction`` of the payload.

        Models a workload that dirties a bounded fraction of the state
        between checkpoints: each call overwrites one contiguous window
        whose position advances deterministically with an internal counter
        (part of the checkpointed state, so active replicas — and replicas
        recovered mid-run — scribble identical bytes).  Returns the number
        of bytes rewritten.
        """
        size = len(self.payload)
        if size == 0 or fraction <= 0:
            return 0
        window = max(1, min(size, int(size * fraction)))
        start = (self.scribble_count * window) % size
        stamp = (self.scribble_count + 1) & 0xFF
        patch = bytes((stamp + i) & 0xFF for i in range(window))
        buf = bytearray(self.payload)
        end = start + window
        buf[start:min(end, size)] = patch[:size - start][:window]
        if end > size:                      # window wraps around
            buf[:end - size] = patch[size - start:]
        self.payload = bytes(buf)
        self.scribble_count += 1
        return window

    def get_state(self) -> Any:
        return {"data": dict(self.data), "payload": self.payload,
                "echo_count": self.echo_count,
                "scribble_count": self.scribble_count}

    def set_state(self, state: Any) -> None:
        try:
            self.data = dict(state["data"])
            self.payload = bytes(state["payload"])
            self.echo_count = int(state["echo_count"])
            self.scribble_count = int(state.get("scribble_count", 0))
        except (TypeError, KeyError, ValueError) as exc:
            raise InvalidState(f"bad kvstore state: {exc}") from exc


def make_kvstore_factory(payload_size: int) -> Callable[[], KvStoreServant]:
    """Factory producing stores pre-loaded with ``payload_size`` bytes."""
    def factory() -> KvStoreServant:
        return KvStoreServant(payload_size)
    return factory
