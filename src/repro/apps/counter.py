"""A minimal replicated counter."""

from __future__ import annotations

from typing import Any

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.orb.servant import operation


class CounterServant(Checkpointable):
    """A counter whose whole application-level state is one integer."""

    type_id = "IDL:repro/Counter:1.0"

    def __init__(self) -> None:
        self.value = 0

    @operation
    def increment(self, amount: int = 1) -> int:
        """Add ``amount``; returns the new value."""
        self.value += amount
        return self.value

    @operation(read_only=True)
    def read(self) -> int:
        """Current value."""
        return self.value

    @operation
    def reset(self) -> int:
        """Zero the counter; returns the previous value."""
        previous, self.value = self.value, 0
        return previous

    def get_state(self) -> Any:
        return {"value": self.value}

    def set_state(self, state: Any) -> None:
        if not isinstance(state, dict) or "value" not in state:
            raise InvalidState(f"counter state must be {{'value': int}}, "
                               f"got {state!r}")
        self.value = state["value"]
