"""The paper's measurement client (§6).

"The client object of the test application acts as a packet driver, sending
a constant stream of two-way invocations to the actively replicated server
object."  Each reply immediately triggers the next invocation, so the
driver keeps exactly one request in flight — a deterministic, replicable
client whose whole behaviour is a function of its application state.

Recovery contract (see :meth:`resume`): after ``set_state()``, the driver
re-issues its single in-flight invocation (derived from its state) before
anything new, which keeps its recovered ORB's request_ids aligned with the
Interceptor's rewrite offset (paper §4.2.1).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus


class PacketDriverServant(Checkpointable):
    """Streams ``echo(token)`` invocations at a replicated server."""

    type_id = "IDL:repro/PacketDriver:1.0"

    def __init__(self, target_ior: str, *, max_invocations: int = 0,
                 payload_token_base: int = 0, scribble_every: int = 0,
                 scribble_fraction: float = 0.1) -> None:
        self._target_ior = target_ior
        self._max_invocations = max_invocations     # 0: unbounded
        self._token_base = payload_token_base
        #: Every ``scribble_every`` echo replies (0: never), issue one
        #: ``scribble(fraction)`` — a state-dirtying write mixed into the
        #: read-mostly stream, reply-clocked like everything else so the
        #: driver still keeps exactly one request in flight.
        self._scribble_every = scribble_every
        self._scribble_fraction = scribble_fraction
        self.sent = 0           # echo invocations issued so far
        self.acked = 0          # echo replies received so far
        self.scribbles_sent = 0
        self.scribbles_acked = 0
        self.last_token: Optional[int] = None
        self._proxy = None

    # ------------------------------------------------------------------
    # Application logic (deterministic function of state)
    # ------------------------------------------------------------------

    def _ensure_proxy(self):
        if self._proxy is None:
            container = self._eternal_container
            self._proxy = container.connect(IOR.from_string(self._target_ior))
        return self._proxy

    def _next_token(self) -> int:
        return self._token_base + self.sent

    def _send_next(self) -> None:
        if self._max_invocations and self.sent >= self._max_invocations:
            return
        proxy = self._ensure_proxy()
        token = self._next_token()
        self.sent += 1
        proxy.invoke("echo", token, on_reply=self._on_reply)

    def _reissue_inflight(self) -> None:
        """Re-issue the invocation the state says is outstanding; the
        Interceptor suppresses the duplicate on the wire."""
        proxy = self._ensure_proxy()
        token = self._token_base + self.sent - 1
        proxy.invoke("echo", token, on_reply=self._on_reply)

    def _scribble_due(self) -> bool:
        return (self._scribble_every > 0
                and self.acked >= self._scribble_every * (
                    self.scribbles_sent + 1))

    def _send_scribble(self) -> None:
        proxy = self._ensure_proxy()
        self.scribbles_sent += 1
        proxy.invoke("scribble", self._scribble_fraction,
                     on_reply=self._on_scribble_reply)

    def _on_scribble_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        self.scribbles_acked += 1
        self._send_next()

    def _on_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        self.acked += 1
        self.last_token = reply.result
        if self._scribble_due():
            self._send_scribble()
        else:
            self._send_next()

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the replica container)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Initial kick: begin the invocation stream."""
        if self.sent == 0:
            self._send_next()

    def resume(self) -> None:
        """Post-recovery: re-issue the in-flight invocation, if any."""
        if self.scribbles_sent > self.scribbles_acked:
            # The state says a scribble is outstanding; re-issue it (the
            # Interceptor suppresses the on-the-wire duplicate).
            proxy = self._ensure_proxy()
            proxy.invoke("scribble", self._scribble_fraction,
                         on_reply=self._on_scribble_reply)
        elif self.sent > self.acked:
            self._reissue_inflight()
        elif self.sent == 0:
            self._send_next()

    # ------------------------------------------------------------------
    # Checkpointable
    # ------------------------------------------------------------------

    def get_state(self) -> Any:
        return {"sent": self.sent, "acked": self.acked,
                "last_token": self.last_token,
                "scribbles_sent": self.scribbles_sent,
                "scribbles_acked": self.scribbles_acked}

    def set_state(self, state: Any) -> None:
        try:
            self.sent = int(state["sent"])
            self.acked = int(state["acked"])
            self.last_token = state["last_token"]
            self.scribbles_sent = int(state.get("scribbles_sent", 0))
            self.scribbles_acked = int(state.get("scribbles_acked", 0))
        except (TypeError, KeyError, ValueError) as exc:
            raise InvalidState(f"bad packet driver state: {exc}") from exc
