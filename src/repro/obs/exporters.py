"""Trace export: JSONL and Chrome ``trace_event`` format.

``export_chrome_trace`` writes the JSON object format understood by
``chrome://tracing`` and by Perfetto's legacy-trace importer: completed
spans become duration (``"ph": "X"``) events, unfinished spans become
begin-only (``"ph": "B"``) events, and every non-span trace record becomes
a thread-scoped instant (``"ph": "i"``) event.  Groups map to *processes*
and nodes to *threads*, so a recovery reads as lanes per replica.

Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from repro.obs.spans import SPAN_CATEGORY, SpanTracker
from repro.runtime.trace import TraceRecord

Destination = Union[str, TextIO]


def _open(destination: Destination):
    if isinstance(destination, str):
        return open(destination, "w", encoding="utf-8"), True
    return destination, False


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return f"<{len(value)} bytes>"
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def export_jsonl(records: Iterable[TraceRecord],
                 destination: Destination) -> int:
    """Write one JSON object per trace record; returns the line count."""
    stream, owned = _open(destination)
    try:
        count = 0
        for record in records:
            stream.write(json.dumps({
                "ts": record.time,
                "category": record.category,
                "event": record.event,
                "fields": _jsonable(record.fields),
            }, sort_keys=True) + "\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def _lane(record_fields: Dict[str, Any]) -> Dict[str, str]:
    return {
        "pid": str(record_fields.get("group", "system")),
        "tid": str(record_fields.get("node", "-")),
    }


def _us(seconds: float) -> int:
    """Simulated seconds -> integer microseconds.

    Timestamps and durations are exported as integers so that
    ``ts + dur`` of a child is exactly comparable with its parent's:
    rounding endpoints independently (instead of the duration) keeps the
    mapping monotone, so span nesting survives the unit conversion."""
    return round(seconds * 1e6)


def chrome_trace_events(records: Iterable[TraceRecord],
                        *, include_instants: bool = True
                        ) -> List[Dict[str, Any]]:
    """Build the Chrome ``traceEvents`` list from trace records."""
    records = list(records)
    tracker = SpanTracker.from_records(records)
    events: List[Dict[str, Any]] = []
    lanes: Dict[tuple, None] = {}

    for span in tracker.spans:
        lane = _lane(span.attrs)
        lanes.setdefault((lane["pid"], lane["tid"]), None)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": SPAN_CATEGORY,
            "ts": _us(span.start),
            "args": _jsonable({**span.attrs, "span_id": span.span_id,
                               "parent_id": span.parent_id}),
            **lane,
        }
        if span.complete:
            event["ph"] = "X"
            event["dur"] = _us(span.end) - _us(span.start)
        else:
            event["ph"] = "B"       # unfinished: begin with no end
        events.append(event)

    if include_instants:
        for record in records:
            if record.category == SPAN_CATEGORY:
                continue
            lane = _lane(record.fields)
            lanes.setdefault((lane["pid"], lane["tid"]), None)
            events.append({
                "name": f"{record.category}.{record.event}",
                "cat": record.category,
                "ph": "i",
                "s": "t",           # thread-scoped instant
                "ts": _us(record.time),
                "args": _jsonable(record.fields),
                **lane,
            })

    # Name the lanes so chrome://tracing shows groups/replicas, not pids.
    metadata: List[Dict[str, Any]] = []
    for pid, tid in sorted(lanes):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": f"group {pid}"}})
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": f"node {tid}"}})
    return metadata + events


def export_chrome_trace(records: Iterable[TraceRecord],
                        destination: Destination,
                        *, include_instants: bool = True) -> int:
    """Write a Chrome/Perfetto trace file; returns the event count
    (excluding lane-name metadata events)."""
    events = chrome_trace_events(records,
                                 include_instants=include_instants)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    stream, owned = _open(destination)
    try:
        json.dump(payload, stream)
        stream.write("\n")
    finally:
        if owned:
            stream.close()
    return sum(1 for e in events if e["ph"] != "M")


class ChromeTraceWriter:
    """Streaming Chrome ``trace_event`` writer that survives abrupt exits.

    :func:`export_chrome_trace` buffers every record and serializes once at
    the end — a process killed mid-run (SIGINT, crash) leaves **no** trace
    file, and an earlier incremental attempt truncated mid-record, which
    Chrome rejects outright.  This writer instead emits each event as it
    arrives (``tracer.subscribe(writer.feed)``) and guarantees a valid JSON
    document however the run ends: the array prefix is written up front,
    every event lands on its own flush, and :meth:`close` — idempotent, and
    registered with ``atexit`` by default — emits begin-only events for any
    still-open spans before sealing the array.

    Completed spans become ``"X"`` duration events at span end; open spans
    surface as ``"B"`` events only at close (matching the one-shot
    exporter's treatment of unfinished spans).  Lane-naming metadata is
    emitted lazily, the first time a (group, node) lane appears.
    """

    def __init__(self, destination: Destination, *,
                 include_instants: bool = True,
                 register_atexit: bool = True) -> None:
        self._stream, self._owned = _open(destination)
        self._include_instants = include_instants
        self._open_spans: Dict[str, TraceRecord] = {}
        self._lanes: Dict[tuple, None] = {}
        self._first = True
        self._closed = False
        self.events_written = 0
        self._stream.write('{"displayTimeUnit": "ms", "traceEvents": [')
        self._stream.flush()
        if register_atexit:
            import atexit
            atexit.register(self.close)

    def _emit(self, event: Dict[str, Any], *, metadata: bool = False) -> None:
        prefix = "" if self._first else ","
        self._first = False
        self._stream.write(prefix + "\n" + json.dumps(event))
        if not metadata:
            self.events_written += 1

    def _ensure_lane(self, lane: Dict[str, str]) -> None:
        key = (lane["pid"], lane["tid"])
        if key in self._lanes:
            return
        self._lanes[key] = None
        self._emit({"name": "process_name", "ph": "M", "pid": lane["pid"],
                    "args": {"name": f"group {lane['pid']}"}},
                   metadata=True)
        self._emit({"name": "thread_name", "ph": "M", "pid": lane["pid"],
                    "tid": lane["tid"],
                    "args": {"name": f"node {lane['tid']}"}},
                   metadata=True)

    def _span_event(self, start: TraceRecord, *,
                    end_time: Optional[float]) -> Dict[str, Any]:
        fields = dict(start.fields)
        span_id = fields.pop("span", None)
        name = fields.pop("name", span_id)
        parent = fields.pop("parent", None)
        lane = _lane(fields)
        self._ensure_lane(lane)
        event: Dict[str, Any] = {
            "name": name,
            "cat": SPAN_CATEGORY,
            "ts": _us(start.time),
            "args": _jsonable({**fields, "span_id": span_id,
                               "parent_id": parent}),
            **lane,
        }
        if end_time is not None:
            event["ph"] = "X"
            event["dur"] = _us(end_time) - _us(start.time)
        else:
            event["ph"] = "B"
        return event

    def feed(self, record: TraceRecord) -> None:
        """Tracer subscriber: write the record's event(s) incrementally."""
        if self._closed:
            return
        if record.category == SPAN_CATEGORY:
            span_id = record.fields.get("span")
            if span_id is None:
                return
            if record.event == "span_start":
                self._open_spans.setdefault(span_id, record)
            elif record.event == "span_end":
                start = self._open_spans.pop(span_id, None)
                if start is not None:
                    self._emit(self._span_event(start,
                                                end_time=record.time))
                    self._stream.flush()
            return
        if not self._include_instants:
            return
        lane = _lane(record.fields)
        self._ensure_lane(lane)
        self._emit({
            "name": f"{record.category}.{record.event}",
            "cat": record.category,
            "ph": "i",
            "s": "t",
            "ts": _us(record.time),
            "args": _jsonable(record.fields),
            **lane,
        })
        self._stream.flush()

    def close(self) -> None:
        """Seal the document: flush still-open spans as begin-only events
        and close the JSON array.  Idempotent — safe to call from both the
        orderly exit path and the atexit hook."""
        if self._closed:
            return
        self._closed = True
        for start in self._open_spans.values():
            self._emit(self._span_event(start, end_time=None))
        self._open_spans.clear()
        self._stream.write("\n]}\n")
        self._stream.flush()
        if self._owned:
            self._stream.close()
