"""Trace export: JSONL and Chrome ``trace_event`` format.

``export_chrome_trace`` writes the JSON object format understood by
``chrome://tracing`` and by Perfetto's legacy-trace importer: completed
spans become duration (``"ph": "X"``) events, unfinished spans become
begin-only (``"ph": "B"``) events, and every non-span trace record becomes
a thread-scoped instant (``"ph": "i"``) event.  Groups map to *processes*
and nodes to *threads*, so a recovery reads as lanes per replica.

Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from repro.obs.spans import SPAN_CATEGORY, SpanTracker
from repro.runtime.trace import TraceRecord

Destination = Union[str, TextIO]


def _open(destination: Destination):
    if isinstance(destination, str):
        return open(destination, "w", encoding="utf-8"), True
    return destination, False


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return f"<{len(value)} bytes>"
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def export_jsonl(records: Iterable[TraceRecord],
                 destination: Destination) -> int:
    """Write one JSON object per trace record; returns the line count."""
    stream, owned = _open(destination)
    try:
        count = 0
        for record in records:
            stream.write(json.dumps({
                "ts": record.time,
                "category": record.category,
                "event": record.event,
                "fields": _jsonable(record.fields),
            }, sort_keys=True) + "\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def _lane(record_fields: Dict[str, Any]) -> Dict[str, str]:
    return {
        "pid": str(record_fields.get("group", "system")),
        "tid": str(record_fields.get("node", "-")),
    }


def _us(seconds: float) -> int:
    """Simulated seconds -> integer microseconds.

    Timestamps and durations are exported as integers so that
    ``ts + dur`` of a child is exactly comparable with its parent's:
    rounding endpoints independently (instead of the duration) keeps the
    mapping monotone, so span nesting survives the unit conversion."""
    return round(seconds * 1e6)


def chrome_trace_events(records: Iterable[TraceRecord],
                        *, include_instants: bool = True
                        ) -> List[Dict[str, Any]]:
    """Build the Chrome ``traceEvents`` list from trace records."""
    records = list(records)
    tracker = SpanTracker.from_records(records)
    events: List[Dict[str, Any]] = []
    lanes: Dict[tuple, None] = {}

    for span in tracker.spans:
        lane = _lane(span.attrs)
        lanes.setdefault((lane["pid"], lane["tid"]), None)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": SPAN_CATEGORY,
            "ts": _us(span.start),
            "args": _jsonable({**span.attrs, "span_id": span.span_id,
                               "parent_id": span.parent_id}),
            **lane,
        }
        if span.complete:
            event["ph"] = "X"
            event["dur"] = _us(span.end) - _us(span.start)
        else:
            event["ph"] = "B"       # unfinished: begin with no end
        events.append(event)

    if include_instants:
        for record in records:
            if record.category == SPAN_CATEGORY:
                continue
            lane = _lane(record.fields)
            lanes.setdefault((lane["pid"], lane["tid"]), None)
            events.append({
                "name": f"{record.category}.{record.event}",
                "cat": record.category,
                "ph": "i",
                "s": "t",           # thread-scoped instant
                "ts": _us(record.time),
                "args": _jsonable(record.fields),
                **lane,
            })

    # Name the lanes so chrome://tracing shows groups/replicas, not pids.
    metadata: List[Dict[str, Any]] = []
    for pid, tid in sorted(lanes):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": f"group {pid}"}})
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": f"node {tid}"}})
    return metadata + events


def export_chrome_trace(records: Iterable[TraceRecord],
                        destination: Destination,
                        *, include_instants: bool = True) -> int:
    """Write a Chrome/Perfetto trace file; returns the event count
    (excluding lane-name metadata events)."""
    events = chrome_trace_events(records,
                                 include_instants=include_instants)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    stream, owned = _open(destination)
    try:
        json.dump(payload, stream)
        stream.write("\n")
    finally:
        if owned:
            stream.close()
    return sum(1 for e in events if e["ph"] != "M")
