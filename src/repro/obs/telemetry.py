"""The cluster telemetry plane: flight recorder + metrics history.

Three gaps this module closes over the point-in-time signals of
:mod:`repro.obs.metrics` / :mod:`repro.obs.health`:

* **post-mortems survive the process** — a :class:`FlightRecorder` keeps a
  bounded per-node ring of recent trace records (spans, events, audit
  findings) and dumps it to JSONL on node kill, audit violation, unhandled
  exception, or SIGINT (see :func:`install_crash_hooks`);
* **signals have history** — a :class:`MetricsHistory` sampler snapshots
  counter deltas, gauge values, and histogram quantiles into fixed-size
  per-series rings, so "what was token-rotation latency 5 s before the
  replica died" has an answer (served over ``/metrics/history`` by
  :mod:`repro.live.health_http`, rendered by ``python -m repro top``);
* **queue depths are first-class** — every sampler tick polls the live
  stacks (Totem send queue, retransmit buffer, reassembly backlog,
  outstanding invocations, recovery queues, bulk-lane pages) into gauges
  before snapshotting, so backpressure is visible as a series, not just a
  point.

The whole plane is optional and cheap: with
``TelemetryConfig(enabled=False)`` nothing subscribes and nothing samples;
enabled, the hot-path cost is one list append per admitted trace record
(the ``obs-overhead`` bench gates the fault-free throughput cost at
<= 3 %).

The flight-dump line format is exactly :func:`repro.obs.exporters.
export_jsonl`'s (``{"ts", "category", "event", "fields"}``), so dumps from
several nodes stitch back into causal timelines with
:func:`repro.obs.report.stitch_jsonl_streams`.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.exporters import export_jsonl
from repro.runtime.timers import PeriodicTimer
from repro.runtime.trace import TraceRecord

#: Ring key for trace records that carry no ``node`` field (system-wide
#: administration events); they ride along in every dump.
GLOBAL_LANE = "-"


@dataclass(frozen=True)
class TelemetryConfig:
    """Tuning for one system's telemetry plane.

    ``flight_dir=None`` keeps flight dumps in memory only (the simulator
    default — tests inspect :attr:`FlightRecorder.dumps`); pointing it at a
    directory additionally writes one JSONL file per dump, which is what a
    live deployment wants so the evidence survives the process.

    ``flight_capacity`` trades post-mortem depth against cache footprint:
    every ringed record has its destruction delayed by one full ring
    cycle, so a large ring turns hot frees into cold-memory frees across
    the whole process.  512 records per lane is roughly a hundred
    invocations of context around the crash — raise it for deeper
    forensics, and pay for it only while telemetry is enabled.

    ``flight_exclude`` lists trace streams the flight recorder does *not*
    ring, as ``"category"`` or ``"category.event"`` entries.  Retaining a
    record costs ~1 µs of deferred cold-memory destruction however it is
    retained, so admission volume — not ring size — is the telemetry
    plane's dominant cost.  The default drops exactly the streams whose
    content is reconstructible from records the ring keeps:
    ``totem.deliver`` (per-fragment fan-out, one record per fragment per
    node; the envelope-level ``replication.delivered`` records carry the
    causal content and the trace id), ``net`` (simulated-transport
    internals), and ``replication.duplicate`` (routine in active
    replication — every non-primary replica's reply is suppressed as a
    duplicate, so the retained ``interceptor.reply`` records already
    imply it), and ``live.recv_batch`` (one record per socket wakeup in
    the live runtime; the ``live.sys.recv_batch_size`` histogram keeps
    the distribution).  Set it to ``()`` for full wire fidelity at
    roughly double the hot-path cost.
    """

    enabled: bool = True
    flight_capacity: int = 512
    flight_dir: Optional[str] = None
    flight_exclude: Tuple[str, ...] = ("net", "totem.deliver",
                                       "replication.duplicate",
                                       "live.recv_batch")
    sample_interval: float = 0.25
    history_capacity: int = 256


@dataclass(frozen=True)
class FlightDump:
    """One completed flight-recorder dump (whether or not it hit disk)."""

    node: str
    reason: str
    time: float
    records: Tuple[TraceRecord, ...]
    path: Optional[str] = None


class FlightRecorder:
    """Bounded per-node rings of recent trace records.

    Subscribed to the system tracer, it appends every record to the ring of
    the node named in the record's fields (``GLOBAL_LANE`` otherwise) and
    triggers an automatic dump of a node's ring — global lane included —
    when that node dies (``fault.crash``).  Audit findings arrive through
    :meth:`record_finding` (wired by ``SystemCore.attach_auditor``) and
    dump the offending node's ring too: a consistency violation is exactly
    the moment the recent past matters.
    """

    def __init__(self, config: TelemetryConfig,
                 clock: Callable[[], float]) -> None:
        self.config = config
        self._clock = clock
        #: Lanes are keyed by the *raw* ``node`` field value (``None`` for
        #: records without one) so the per-record path never stringifies;
        #: the cold read paths normalize key -> lane name instead.
        #:
        #: Each lane is a plain list trimmed in batch once it doubles,
        #: not a ``deque(maxlen=...)``: a maxlen deque destroys one
        #: long-retained (= cache-cold) record per append, which costs
        #: over a microsecond per record in a hot run.  Appending freely
        #: and slicing off the oldest half every ``capacity`` appends
        #: frees the same records sequentially, which the prefetcher can
        #: hide — the last ``capacity`` records are always intact.
        self._rings: Dict[Any, List[TraceRecord]] = {}
        self._capacity = config.flight_capacity
        self._trim_at = 2 * config.flight_capacity
        #: category -> True (skip whole category) | set of events to skip.
        self._skip: Dict[str, Any] = {}
        for spec in config.flight_exclude:
            category, dot, event = spec.partition(".")
            if not dot:
                self._skip[category] = True
            elif self._skip.get(category) is not True:
                self._skip.setdefault(category, set()).add(event)
        self._dump_seq = 0
        #: Completed dumps, newest last (in-memory record of every dump,
        #: with ``path`` set when ``flight_dir`` put it on disk too).
        self.dumps: List[FlightDump] = []

    def _ring(self, lane) -> List[TraceRecord]:
        ring = self._rings.get(lane)
        if ring is None:
            ring = self._rings[lane] = []
        return ring

    def note(self, record: TraceRecord) -> None:
        """Tracer subscriber: ring the record, auto-dump on a crash.

        Runs for every record the system emits, so the dispatcher does
        only the exclusion check; :meth:`_admit` (separately so the
        obs-overhead bench can time ring admission without paying two
        clock reads on every *skipped* record too) does one dict lookup,
        one list append, and an amortized batch trim."""
        sel = self._skip.get(record.category)
        if sel is not None and (sel is True or record.event in sel):
            return
        self._admit(record)

    def _admit(self, record: TraceRecord) -> None:
        """Ring one admitted record (the per-record hot path)."""
        lane = record.fields.get("node")
        try:
            tape = self._rings[lane]
        except KeyError:
            tape = self._rings[lane] = []
        tape.append(record)
        if len(tape) >= self._trim_at:
            del tape[:-self._capacity]
        if record.category == "fault" and record.event == "crash":
            self.dump(node=GLOBAL_LANE if lane is None else str(lane),
                      reason="crash")

    def record_finding(self, finding) -> None:
        """Ring an audit finding (as a synthetic ``audit.finding`` record)
        and dump the implicated node — the auditor's ``on_finding`` hook."""
        lane = getattr(finding, "node", None)
        name = GLOBAL_LANE if lane is None else str(lane)
        record = TraceRecord(
            time=getattr(finding, "time", self._clock()),
            category="audit", event="finding",
            fields={"node": name,
                    "invariant": getattr(finding, "invariant", "?"),
                    "detail": getattr(finding, "detail", "")},
        )
        self._ring(lane).append(record)
        self.dump(node=name, reason="audit_violation")

    @staticmethod
    def _lane_name(lane) -> str:
        return GLOBAL_LANE if lane is None else str(lane)

    def records_for(self, node: str) -> List[TraceRecord]:
        """A node's current ring contents plus the global lane, in time
        order (what a dump of that node would contain)."""
        merged: List[TraceRecord] = []
        for lane, ring in self._rings.items():
            name = self._lane_name(lane)
            if name == node or (name == GLOBAL_LANE and node != GLOBAL_LANE):
                merged.extend(ring[-self._capacity:])
        merged.sort(key=lambda r: r.time)
        return merged

    def dump(self, *, node: str = GLOBAL_LANE,
             reason: str = "manual") -> FlightDump:
        """Snapshot one node's ring into a :class:`FlightDump` (and a JSONL
        file when ``flight_dir`` is configured)."""
        records = self.records_for(node)
        path: Optional[str] = None
        if self.config.flight_dir is not None:
            os.makedirs(self.config.flight_dir, exist_ok=True)
            self._dump_seq += 1
            path = os.path.join(
                self.config.flight_dir,
                f"flight-{node}-{self._dump_seq:03d}-{reason}.jsonl")
            export_jsonl(records, path)
        dump = FlightDump(node=node, reason=reason, time=self._clock(),
                          records=tuple(records), path=path)
        self.dumps.append(dump)
        return dump

    def dump_all(self, reason: str = "shutdown") -> List[FlightDump]:
        """Dump every node's ring (SIGINT/atexit/excepthook path)."""
        nodes = sorted({self._lane_name(lane) for lane in self._rings}
                       - {GLOBAL_LANE})
        if not nodes:
            nodes = [GLOBAL_LANE]
        return [self.dump(node=node, reason=reason) for node in nodes]


class MetricsHistory:
    """Fixed-size time series sampled from a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    Each :meth:`sample` appends one point per live series:

    * counters — the **delta** since the previous sample (re-based, so a
      series that resets — e.g. a registry rebuilt via ``spawn_empty`` —
      yields a zero delta, never a negative one);
    * gauges — the current value;
    * histograms — ``[p50, p95, count]`` (cumulative quantiles: cheap,
      monotone in sample count, good enough to see a latency shift).
    """

    def __init__(self, metrics, capacity: int = 256) -> None:
        self._metrics = metrics
        self._capacity = capacity
        self._series: Dict[str, Dict[str, Any]] = {}
        self._counter_bases: Dict[str, float] = {}

    @staticmethod
    def series_key(name: str, labels: Dict[str, str]) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}}"

    def _slot(self, key: str, kind: str,
              labels: Dict[str, str]) -> Deque[list]:
        slot = self._series.get(key)
        if slot is None:
            slot = {"kind": kind, "labels": dict(labels),
                    "points": deque(maxlen=self._capacity)}
            self._series[key] = slot
        return slot["points"]

    def sample(self, now: float) -> int:
        """Snapshot every registry metric at time ``now``; returns the
        number of series touched."""
        touched = 0
        for name, labels, metric in self._metrics.find():
            key = self.series_key(name, labels)
            kind = metric.kind
            if kind == "counter":
                base = self._counter_bases.get(key, 0.0)
                delta = max(0.0, metric.value - base)
                self._counter_bases[key] = metric.value
                point = [now, delta]
            elif kind == "gauge":
                point = [now, metric.value]
            else:   # histogram
                point = [now, metric.p50, metric.p95, metric.count]
            self._slot(key, kind, labels).append(point)
            touched += 1
        return touched

    def series(self, key: str) -> List[list]:
        slot = self._series.get(key)
        return [list(p) for p in slot["points"]] if slot else []

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data dump of every series (the ``/metrics/history`` body)."""
        return {
            "series": {
                key: {"kind": slot["kind"], "labels": slot["labels"],
                      "points": [list(p) for p in slot["points"]]}
                for key, slot in sorted(self._series.items())
            }
        }


class TelemetryPlane:
    """One system's telemetry plane: flight recorder + history sampler.

    Constructed unconditionally by ``SystemCore._init_core`` so call sites
    can rely on ``system.telemetry`` existing; inert unless the config
    enables it (no tracer subscription, no sampler — zero overhead).
    """

    def __init__(self, config: TelemetryConfig, *, tracer, metrics,
                 clock: Callable[[], float]) -> None:
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        self._clock = clock
        self._system = None
        self._sampler: Optional[PeriodicTimer] = None
        self.flight = FlightRecorder(config, clock)
        self.history = MetricsHistory(metrics, config.history_capacity)
        if config.enabled:
            tracer.subscribe(self.flight.note)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def bind_system(self, system) -> None:
        """Attach the system whose stacks :meth:`poll` reads depths from."""
        self._system = system

    def start_sampler(self, scheduler) -> None:
        """Start the periodic poll-and-sample loop on ``scheduler`` (the
        simulated scheduler or the live asyncio one — same interface)."""
        if not self.config.enabled or self._sampler is not None:
            return
        self._sampler = PeriodicTimer(scheduler,
                                      self.config.sample_interval,
                                      self.sample_now)
    def stop(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None

    def sample_now(self) -> None:
        """One sampler tick: poll live queue depths, then snapshot."""
        self.poll()
        self.history.sample(self._clock())

    def poll(self) -> None:
        """Read the live stacks' queue depths into gauges: the
        backpressure signals the ROADMAP's admission-control and
        phi-accrual arcs consume as continuous series."""
        system = self._system
        if system is None:
            return
        profiler = getattr(system, "profiler", None)
        if profiler is not None and profiler.enabled:
            # The span-resource profiler defers its counter export off the
            # hot path; reconcile here so this tick's history sample (and
            # the /metrics/history body) sees current profile.* series.
            profiler.flush_to_metrics()
        for node_id, stack in getattr(system, "stacks", {}).items():
            if not stack.process.alive:
                continue
            totem = stack.totem
            if totem is not None:
                self.metrics.gauge("totem.send_queue_depth",
                                   node=node_id).set(len(totem._send_queue))
                self.metrics.gauge("totem.retransmit_buffer",
                                   node=node_id).set(len(totem._held))
                self.metrics.gauge("totem.reassembly_pending",
                                   node=node_id).set(
                                       totem.reassembly_pending)
            mechanisms = stack.mechanisms
            if mechanisms is None:
                continue
            for group_id, binding in mechanisms.bindings.items():
                self.metrics.gauge(
                    "eternal.outstanding_invocations",
                    node=node_id, group=group_id,
                ).set(binding.interceptor.outstanding_invocations)
                self.metrics.gauge(
                    "eternal.recovery_queue_depth",
                    node=node_id, group=group_id,
                ).set(len(binding.enqueued))
            bulk = getattr(mechanisms.recovery, "bulk", None)
            if bulk is not None:
                stashes = (len(getattr(bulk, "_stashes", {}))
                           + len(getattr(bulk, "_sessions", {})))
                self.metrics.gauge("bulk.store_depth",
                                   node=node_id).set(stashes)


# ---------------------------------------------------------------------------
# Terminal rendering (``python -m repro top``)
# ---------------------------------------------------------------------------

def _cpu_pct(point: list) -> str:
    # CPU%% needs a rate: the sampled counter delta (host ns of thread CPU
    # attributed to this node's spans) over the inter-sample interval.  In
    # simulated runs the interval is *simulated* seconds while the CPU is
    # host nanoseconds, so >100% readings are expected and meaningful
    # (host cost per simulated second); live runs read as normal CPU%%.
    if len(point) < 3 or point[2] <= 0:
        return "-"
    return f"{point[1] / (point[2] * 1e9) * 100:.1f}"


#: Counter-delta series (fed by the span-resource profiler; see
#: :mod:`repro.obs.profiling`): their latest sample is folded across
#: duplicate timestamps (a manual ``sample_now`` can coincide with a
#: periodic tick, leaving a zero-delta point at the same instant) and
#: carries the inter-sample interval as a third element for rate columns.
_COUNTER_SERIES = ("profile.node_cpu_ns", "profile.node_alloc_blocks")

#: (column header, series name, value picker) for the per-node top table.
_TOP_COLUMNS = (
    ("rot p50 ms", "span.totem.rotation",
     lambda p: f"{p[1] * 1000:.2f}"),
    ("cpu%", "profile.node_cpu_ns", _cpu_pct),
    ("allocs", "profile.node_alloc_blocks", lambda p: f"{p[1]:g}"),
    ("sendq", "totem.send_queue_depth", lambda p: f"{p[1]:g}"),
    ("held", "totem.retransmit_buffer", lambda p: f"{p[1]:g}"),
    ("reasm", "totem.reassembly_pending", lambda p: f"{p[1]:g}"),
    ("pend-op", "eternal.outstanding_invocations", lambda p: f"{p[1]:g}"),
    ("recovq", "eternal.recovery_queue_depth", lambda p: f"{p[1]:g}"),
    ("bulk", "bulk.store_depth", lambda p: f"{p[1]:g}"),
    ("tok-rtt ms", "totem.token_interarrival",
     lambda p: f"{p[1] * 1000:.2f}"),
    ("rxbatch p50", "live.sys.recv_batch_size", lambda p: f"{p[1]:g}"),
)


def render_top(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsHistory.snapshot` as the per-node ``top``
    table (latest sample per series; per-group series collapse onto their
    node, numeric columns summing gauges and keeping the slowest p50)."""
    series = snapshot.get("series", {})
    latest: Dict[Tuple[str, str], list] = {}
    nodes: Dict[str, None] = {}
    rings: Dict[str, None] = {}
    last_ts = None

    def fold(name: str, row: str, point: list) -> None:
        spot = latest.get((name, row))
        if spot is None:
            latest[(name, row)] = list(point)
        elif name.startswith("span.") or name == "totem.token_interarrival":
            if point[1] > spot[1]:
                latest[(name, row)] = list(point)
        else:
            spot[1] += point[1]

    for key, slot in series.items():
        points = slot.get("points") or []
        if not points:
            continue
        point = points[-1]
        last_ts = point[0] if last_ts is None else max(last_ts, point[0])
        labels = slot.get("labels", {})
        node = labels.get("node")
        if node is None:
            continue
        name = key.split("{", 1)[0]
        nodes.setdefault(node)
        point = list(point)
        if name in _COUNTER_SERIES:
            ts = point[0]
            delta = 0.0
            prev_ts = None
            for prior in reversed(points):
                if prior[0] >= ts:      # same-instant samples: sum deltas
                    delta += prior[1]
                else:
                    prev_ts = prior[0]
                    break
            point = [ts, delta,
                     (ts - prev_ts) if prev_ts is not None else 0.0]
        fold(name, node, point)
        ring = labels.get("ring")
        if ring:
            # Sharded deployments: the same sample also feeds the per-ring
            # aggregate rows (sums for depths, slowest for latencies).
            rings.setdefault(ring)
            fold(name, f"ring={ring}", point)
    header = f"{'node':8s} " + " ".join(f"{h:>11s}" for h, _, _ in
                                        _TOP_COLUMNS)
    lines = [header, "-" * len(header)]
    for node in sorted(nodes):
        cells = []
        for _header, name, pick in _TOP_COLUMNS:
            point = latest.get((name, node))
            cells.append(pick(point) if point is not None else "-")
        lines.append(f"{node:8s} " + " ".join(f"{c:>11s}" for c in cells))
    if rings:
        lines.append("-" * len(header))
        for ring in sorted(rings):
            cells = []
            for _header, name, pick in _TOP_COLUMNS:
                point = latest.get((name, f"ring={ring}"))
                cells.append(pick(point) if point is not None else "-")
            lines.append(f"{f'ring={ring}':8s} "
                         + " ".join(f"{c:>11s}" for c in cells))
    if last_ts is not None:
        lines.append(f"(latest sample at t={last_ts:.3f}s; "
                     f"{len(series)} series)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Crash hooks (live CLI): the flight recorder's reason to exist
# ---------------------------------------------------------------------------

def install_crash_hooks(plane: TelemetryPlane, *,
                        on_dump: Optional[Callable[[List[FlightDump]],
                                                   None]] = None
                        ) -> Callable[[], None]:
    """Dump every flight ring on unhandled exception, SIGINT, or interpreter
    exit, so a live run's post-mortem survives however it dies.

    Returns an ``uninstall()`` that restores the previous hooks (the normal
    exit path calls it after its own orderly dump, so atexit does not dump
    a second time).
    """
    import atexit
    import signal

    state = {"done": False}

    def dump_once(reason: str) -> None:
        if state["done"] or not plane.enabled:
            return
        state["done"] = True
        dumps = plane.flight.dump_all(reason)
        if on_dump is not None:
            on_dump(dumps)

    previous_excepthook = sys.excepthook

    def excepthook(exc_type, exc, tb):
        dump_once("exception")
        previous_excepthook(exc_type, exc, tb)

    sys.excepthook = excepthook

    def on_atexit() -> None:
        dump_once("atexit")

    atexit.register(on_atexit)

    previous_sigint = None
    try:
        def on_sigint(signum, frame):
            dump_once("sigint")
            raise KeyboardInterrupt
        previous_sigint = signal.signal(signal.SIGINT, on_sigint)
    except (ValueError, OSError):       # non-main thread: atexit covers us
        previous_sigint = None

    def uninstall() -> None:
        state["done"] = True            # orderly exit already dumped
        sys.excepthook = previous_excepthook
        atexit.unregister(on_atexit)
        if previous_sigint is not None:
            try:
                signal.signal(signal.SIGINT, previous_sigint)
            except (ValueError, OSError):
                pass

    return uninstall
