"""Metrics registry: counters, gauges, and streaming histograms.

Metrics are identified by a name plus a frozen label set (typically
``node=<replica>`` and ``group=<object group>``), so per-replica and
per-group series of the same measurement coexist::

    registry.histogram("span.recovery.capture", node="s1", group="store")

Histograms are HdrHistogram-style **log-bucketed**: bucket boundaries grow
geometrically, bounding the relative quantile error by the growth factor
while keeping memory proportional to the number of *occupied* buckets, not
to the sample count.  Each bucket also tracks the sum of its samples, so a
quantile that falls in a bucket holding identical values is exact.

Bound to a :class:`~repro.runtime.trace.Tracer`
(:meth:`MetricsRegistry.bind`), the registry turns every completed span
into a latency observation in ``span.<name>`` and maintains the
``spans.open`` gauge — the bench tables' p50/p95/p99 per recovery phase
come straight from here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.runtime.trace import TraceRecord, Tracer

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class CounterMetric:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "CounterMetric") -> None:
        """Fold another counter's total into this one."""
        self.value += other.value

    def spawn_empty(self) -> "CounterMetric":
        """A fresh, empty counter (merge target for a new series)."""
        return CounterMetric()


class GaugeMetric:
    """A value that can go up and down (queue depth, open spans, …)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount

    def merge(self, other: "GaugeMetric") -> None:
        """Adopt the other gauge's latest value (last write wins)."""
        self.value = other.value

    def spawn_empty(self) -> "GaugeMetric":
        """A fresh gauge (merge target for a new series)."""
        return GaugeMetric()


class StreamingHistogram:
    """Log-bucketed streaming histogram with quantile estimation.

    Values are assigned to geometric buckets ``[min_value·g^i,
    min_value·g^(i+1))``; per bucket we keep a count and a sum.  The
    reported quantile is the mean of the bucket containing the requested
    rank (nearest-rank rule), which is

    * **exact** when every sample in that bucket has the same value, and
    * otherwise within a factor ``growth`` of the true order statistic.

    Values at or below ``min_value`` share the underflow bucket.
    """

    kind = "histogram"

    def __init__(self, *, min_value: float = 1e-9,
                 growth: float = 1.04) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1:
            raise ValueError("growth must exceed 1")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, List[float]] = {}   # index -> [count, sum]
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return -1
        return int(math.log(value / self.min_value) / self._log_growth)

    def record(self, value: float) -> None:
        """Record one sample (negative samples clamp to the underflow
        bucket, preserving count and sum semantics)."""
        bucket = self._buckets.setdefault(self._index(value), [0, 0.0])
        bucket[0] += 1
        bucket[1] += value
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Exact mean of all recorded samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``, nearest-rank)."""
        if not 0 < q <= 1:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._buckets):
            count, total = self._buckets[index]
            seen += count
            if seen >= rank:
                return total / count
        return self.max or 0.0      # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram's buckets into this one.

        Requires identical bucketing parameters (indices must align).
        """
        if (other.min_value != self.min_value
                or other.growth != self.growth):
            raise ValueError("cannot merge histograms with different "
                             "bucketing parameters")
        for index, (count, total) in other._buckets.items():
            bucket = self._buckets.setdefault(index, [0, 0.0])
            bucket[0] += count
            bucket[1] += total
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            theirs = getattr(other, bound)
            ours = getattr(self, bound)
            if theirs is not None:
                pick = theirs if ours is None else \
                    (min if bound == "min" else max)(ours, theirs)
                setattr(self, bound, pick)

    def spawn_empty(self) -> "StreamingHistogram":
        """A fresh histogram with *this* histogram's bucketing parameters
        (merge target for a new series — a default-parameter histogram
        would refuse the merge)."""
        return StreamingHistogram(min_value=self.min_value,
                                  growth=self.growth)


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by name + labels."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._open_spans: Dict[str, TraceRecord] = {}
        # node -> (last token receipt time, last inter-arrival delta);
        # feeds the per-peer token RTT/jitter histograms.
        self._last_token: Dict[str, Tuple[float, Optional[float]]] = {}

    # -- get-or-create -----------------------------------------------------

    def _get(self, factory, name: str, labels: Dict[str, Any]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(f"metric {name!r}{dict(key[1])} already "
                            f"registered as {metric.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        """The counter for ``name`` + labels (created on first use)."""
        return self._get(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        """The gauge for ``name`` + labels (created on first use)."""
        return self._get(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels: Any) -> StreamingHistogram:
        """The histogram for ``name`` + labels (created on first use)."""
        return self._get(StreamingHistogram, name, labels)

    # -- tracer binding ----------------------------------------------------

    def bind(self, tracer: Tracer) -> None:
        """Subscribe to a tracer: every completed span becomes a duration
        sample in histogram ``span.<name>`` labelled by the span's ``node``
        and ``group`` attrs; ``spans.open`` gauges the in-flight count."""
        tracer.subscribe(self.observe_record)

    def observe_record(self, record: TraceRecord) -> None:
        """Live trace subscriber (installed by :meth:`bind`)."""
        if record.category == "fault_detector":
            self._observe_fault_detector(record)
            return
        if record.category == "delta":
            self._observe_delta(record)
            return
        if record.category == "bulk":
            self._observe_bulk(record)
            return
        if record.category == "store":
            self._observe_store(record)
            return
        if (record.category == "recovery"
                and record.event == "set_state_multicast"):
            labels = {k: record.fields[k]
                      for k in ("node", "group", "ring")
                      if k in record.fields}
            self.counter("state.bytes", lane="inorder", **labels).inc(
                record.fields.get("app_bytes", 0))
        if record.category == "totem" and record.event == "token":
            self._observe_token(record)
            return
        if record.category == "totem" and record.event == "packed_frame":
            labels = {k: record.fields[k] for k in ("node", "ring")
                      if k in record.fields}
            self.histogram("totem.payloads_per_frame", **labels).record(
                record.fields.get("payloads", 1))
            return
        if record.category == "live" and record.event == "recv_batch":
            labels = {k: record.fields[k] for k in ("node", "ring")
                      if k in record.fields}
            self.histogram("live.sys.recv_batch_size", **labels).record(
                record.fields.get("n", 1))
            return
        if record.category == "lease":
            labels = {k: record.fields[k] for k in ("node", "ring")
                      if k in record.fields}
            self.counter(f"lease.{record.event}", **labels).inc()
            return
        if record.category != "span":
            return
        span_id = record.fields.get("span")
        if span_id is None:
            return
        if record.event == "span_start":
            self._open_spans.setdefault(span_id, record)
        elif record.event == "span_end":
            start = self._open_spans.pop(span_id, None)
            if start is not None:
                labels = {k: start.fields[k]
                          for k in ("node", "group", "ring")
                          if k in start.fields}
                name = start.fields.get("name", span_id)
                self.histogram(f"span.{name}", **labels).record(
                    record.time - start.time
                )
        self.gauge("spans.open").set(len(self._open_spans))

    def _observe_delta(self, record: TraceRecord) -> None:
        """Turn delta-state-transfer trace events into counters: how many
        transfers went out as page deltas vs. full bodies, the page and
        byte economics of the deltas, and how often a receiver had to fall
        back (couldn't reconstruct) or request a resync."""
        labels = {k: record.fields[k] for k in ("node", "group", "ring")
                  if k in record.fields}
        if record.event == "delta_sent":
            self.counter("delta.transfers_delta", **labels).inc()
            self.counter("delta.pages_sent", **labels).inc(
                record.fields.get("pages_sent", 0))
            self.counter("delta.pages_skipped", **labels).inc(
                record.fields.get("pages_skipped", 0))
            self.counter("delta.wire_bytes", **labels).inc(
                record.fields.get("wire_bytes", 0))
            self.counter("delta.full_bytes", **labels).inc(
                record.fields.get("full_bytes", 0))
        elif record.event == "full_sent":
            reason = record.fields.get("reason", "unknown")
            self.counter("delta.transfers_full",
                         reason=reason, **labels).inc()
        elif record.event == "fallback":
            self.counter("delta.fallbacks", **labels).inc()
        elif record.event == "resync_requested":
            self.counter("delta.resyncs", **labels).inc()

    def _observe_bulk(self, record: TraceRecord) -> None:
        """Turn bulk-lane trace events into counters: session outcomes,
        retransmit/restripe/drop economics, and the out-of-band byte lane
        (``state.bytes{lane=oob}`` — the in-order complement is counted
        off the ``set_state_multicast`` event)."""
        labels = {k: record.fields[k] for k in ("node", "group", "ring")
                  if k in record.fields}
        event = record.event
        if event == "session_start":
            self.counter("bulk.sessions_started", **labels).inc()
        elif event == "session_complete":
            self.counter("bulk.sessions_completed", **labels).inc()
        elif event == "session_failed":
            self.counter("bulk.fallbacks", **labels).inc()
        elif event == "retransmit":
            self.counter("bulk.retransmits", **labels).inc()
        elif event == "restripe":
            self.counter("bulk.restripes", **labels).inc()
        elif event == "sponsor_dropped":
            self.counter("bulk.sponsors_dropped", **labels).inc()
        elif event == "page_crc_bad":
            self.counter("bulk.page_crc_errors", **labels).inc()
        elif event == "manifest_sent":
            self.counter("bulk.manifests_sent", **labels).inc()
        elif event == "pages_sent":
            self.counter("bulk.pages_served", **labels).inc(
                record.fields.get("count", 0))
            self.counter("state.bytes", lane="oob", **labels).inc(
                record.fields.get("bytes", 0))

    def _observe_store(self, record: TraceRecord) -> None:
        """Turn durable-store trace events into metrics: journal I/O
        economics (fsync latency, torn tails, segment rolls), checkpoint
        write amplification (delta vs full bytes), and the cold-restart
        ladder's disk-rung outcomes (restores, replays, corruption
        fallbacks, cold-boot seeds)."""
        labels = {k: record.fields[k] for k in ("node", "group", "ring")
                  if k in record.fields}
        event = record.event
        if event == "fsync":
            self.histogram("store.fsync.seconds", **labels).record(
                record.fields.get("seconds", 0.0))
        elif event == "tail_truncated":
            self.counter("store.tail_truncations", **labels).inc()
            self.counter("store.bytes.truncated", **labels).inc(
                record.fields.get("dropped", 0))
        elif event == "segment_rolled":
            self.counter("store.segments_rolled", **labels).inc()
        elif event == "checkpoint_delta":
            self.counter("store.checkpoints_delta", **labels).inc()
            self.counter("store.checkpoint.wire_bytes", **labels).inc(
                record.fields.get("wire_bytes", 0))
            self.counter("store.checkpoint.full_bytes", **labels).inc(
                record.fields.get("full_bytes", 0))
        elif event == "checkpoint_full":
            self.counter("store.checkpoints_full", **labels).inc()
            self.counter("store.checkpoint.wire_bytes", **labels).inc(
                record.fields.get("full_bytes", 0))
            self.counter("store.checkpoint.full_bytes", **labels).inc(
                record.fields.get("full_bytes", 0))
        elif event == "compacted":
            self.counter("store.compactions", **labels).inc()
        elif event == "restored":
            self.counter("store.restores", **labels).inc()
            self.counter("store.messages.restored", **labels).inc(
                record.fields.get("messages", 0))
        elif event == "corrupt":
            self.counter("store.corruptions", **labels).inc()
        elif event == "cold_seed_claimed":
            self.counter("store.cold_seeds", **labels).inc()
        elif event == "seed_replay":
            self.counter("store.messages.replayed", **labels).inc(
                record.fields.get("messages", 0))

    def _observe_token(self, record: TraceRecord) -> None:
        """Turn token receipts into the ring-health sample streams a
        phi-accrual failure detector consumes: per-node (and per-upstream-
        peer) token inter-arrival times and their jitter (the absolute
        change between consecutive inter-arrival deltas)."""
        node = record.fields.get("node")
        if node is None:
            return
        last = self._last_token.get(node)
        if last is None:
            self._last_token[node] = (record.time, None)
            return
        last_time, last_delta = last
        delta = record.time - last_time
        extra = {k: record.fields[k] for k in ("ring",)
                 if k in record.fields}
        src = record.fields.get("src")
        if src is not None:
            self.histogram("totem.token_interarrival",
                           node=node, peer=src, **extra).record(delta)
        else:
            self.histogram("totem.token_interarrival",
                           node=node, **extra).record(delta)
        if last_delta is not None:
            self.histogram("totem.token_jitter",
                           node=node, **extra).record(abs(delta - last_delta))
        self._last_token[node] = (record.time, delta)

    def _observe_fault_detector(self, record: TraceRecord) -> None:
        """Turn fault-detector trace events into counters: a first strike
        is one suspicion; a refutation before the report threshold is a
        false positive; a report is a declared replica fault."""
        labels = {k: record.fields[k] for k in ("node", "group", "ring")
                  if k in record.fields}
        if record.event == "suspect":
            if record.fields.get("strikes") == 1:
                self.counter("fault_detector.suspicions", **labels).inc()
        elif record.event == "refuted":
            self.counter("fault_detector.false_positives", **labels).inc()
        elif record.event == "report":
            self.counter("fault_detector.reports", **labels).inc()

    # -- aggregation and reporting ----------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Matching series merge pairwise.  A series present only in ``other``
        is adopted into a fresh metric spawned *from the source* —
        histograms keep their bucketing parameters, so merging a registry
        with labels (or tunings) the target lacks never drops samples.
        """
        for (name, labels), metric in other._metrics.items():
            key = (name, _label_key(dict(labels)))
            mine = self._metrics.get(key)
            if mine is None:
                mine = metric.spawn_empty()
                self._metrics[key] = mine
            elif not isinstance(mine, type(metric)):
                raise TypeError(f"metric {name!r}{dict(labels)} already "
                                f"registered as {mine.kind}")
            mine.merge(metric)

    def find(self, prefix: str = "") -> List[Tuple[str, Dict[str, str], Any]]:
        """All metrics whose name starts with ``prefix``, as
        ``(name, labels, metric)`` sorted by name then labels."""
        out = []
        for (name, labels), metric in sorted(self._metrics.items()):
            if name.startswith(prefix):
                out.append((name, dict(labels), metric))
        return out

    def snapshot(self) -> List[Dict[str, Any]]:
        """A plain-data dump of every metric (for export and tests)."""
        rows: List[Dict[str, Any]] = []
        for name, labels, metric in self.find():
            row: Dict[str, Any] = {"name": name, "labels": labels,
                                   "kind": metric.kind}
            if metric.kind == "histogram":
                row.update(count=metric.count, mean=metric.mean,
                           p50=metric.p50, p95=metric.p95, p99=metric.p99,
                           min=metric.min, max=metric.max)
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows

    def format_table(self, *, prefix: str = "",
                     scale: float = 1.0, unit: str = "") -> str:
        """Render matching metrics as a fixed-width text table.

        ``scale`` multiplies histogram statistics (e.g. ``1000`` renders
        second-valued durations in milliseconds).
        """
        lines: List[str] = []
        header = (f"{'metric':44s} {'labels':24s} {'count':>7s} "
                  f"{'mean':>10s} {'p50':>10s} {'p95':>10s} {'p99':>10s}")
        lines.append(header + (f"  [{unit}]" if unit else ""))
        lines.append("-" * len(header))
        for name, labels, metric in self.find(prefix):
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            if metric.kind == "histogram":
                lines.append(
                    f"{name:44s} {label_text:24s} {metric.count:7d} "
                    f"{metric.mean * scale:10.3f} {metric.p50 * scale:10.3f} "
                    f"{metric.p95 * scale:10.3f} {metric.p99 * scale:10.3f}"
                )
            else:
                lines.append(f"{name:44s} {label_text:24s} "
                             f"{metric.value:7g}  ({metric.kind})")
        return "\n".join(lines)


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge several registries (e.g. one per bench deployment) into one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
