"""Profiling and resource attribution: *why* a phase costs what it costs.

The telemetry plane (:mod:`repro.obs.telemetry`) answers "how long"; this
module answers "why" — it attributes host resources (CPU time, heap
allocations, and in live mode syscalls) to the protocol phases the span
layer already names, so hot-path work can proceed on evidence:

* :class:`SpanResourceProfiler` — an opt-in tracer subscriber that stamps
  every completed span (§5.1 recovery steps i–vi, Totem rotations and
  reassembly, RPC round-trips, checkpoint/delta encode) with the
  ``time.thread_time_ns`` CPU consumed between its start and end records
  and the net heap growth over the same interval, aggregated per phase
  name into :class:`PhaseCost` and exported as ``profile.*`` counters in
  the metrics registry (sampled into ``/metrics/history`` and rendered by
  ``python -m repro top``);
* :class:`StackSampler` — a threading-based sampling profiler emitting
  collapsed/folded stacks for flame graphs (``flamegraph.pl`` or
  speedscope ingest the ``.folded`` output directly), with each sample
  tagged by the phase that was open when it was taken;
* :class:`InSituProbe` — the one audited code path for overhead gates:
  it patches designated methods to accumulate their own wall-clock cost
  inside a run, which is how both the ``obs-overhead`` and the
  ``prof-overhead`` benches derive interference-immune overhead ratios
  (see :func:`repro.bench.sweeps.run_obs_overhead_point` for why plain
  on/off A-B wall deltas do not work on shared hardware);
* :class:`ProfileSession` — the CLI-facing bundle: one config handed to
  every deployment in a sweep, one sampler following whichever system is
  currently running, one merged cost table and ``.folded`` artifact out.

Measurement notes.  CPU is ``thread_time_ns`` of the emitting thread —
both substrates run the protocol on a single thread (the simulator's
driver loop, the live runtime's asyncio loop), so the delta between a
span's start and end records is exactly the CPU the interval consumed,
immune to wall-clock interference from other processes.  The *inclusive*
delta counts nested spans too; *self* CPU is derived by charging the CPU
between consecutive span events to the innermost span open at the time,
which survives the out-of-LIFO span ends the §5.1 protocol produces
(spans may start on one component and end on another).  Allocation cost
is the net ``sys.getallocatedblocks()`` delta — a call whose cost scales
with heap size on CPython >= 3.11 (it walks obmalloc's arenas), which is
why :data:`DEFAULT_ALLOC_SPANS` restricts the probes to the rare
recovery/failover spans unless a deep dive asks for more — plus net
traced bytes when :attr:`ProfilingConfig.alloc_trace` has started
``tracemalloc``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import tracemalloc
from collections import Counter
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro.obs.spans import END_EVENT, SPAN_CATEGORY, START_EVENT
from repro.runtime.trace import TraceRecord, Tracer

#: Folded-stack root used for samples taken while no span was open.
UNATTRIBUTED = "(no-span)"

#: Phase-table ordering: the §5.1 recovery steps in protocol order, then
#: the ring and RPC phases; anything else follows, sorted by CPU.
PHASE_ORDER = (
    "recovery.total", "recovery.announce", "recovery.quiesce",
    "recovery.capture", "recovery.xfer", "recovery.bulk",
    "recovery.apply", "recovery.assign", "recovery.drain",
    "failover.total", "failover.restore", "failover.replay",
    "totem.rotation", "totem.reassembly", "rpc.roundtrip",
)

#: Tracer-counter prefix for the live transport's syscall accounting
#: (see :class:`repro.live.transport.UdpTransport`).
SYSCALL_PREFIX = "live.sys."

#: Default allocation-probe granularity: the rare per-recovery spans only.
#: ``sys.getallocatedblocks`` walks obmalloc's arenas on CPython >= 3.11,
#: so its cost scales with heap size (~1 us small heap, tens of us at
#: production heaps) — cheap enough per *recovery*, ruinous per Totem
#: rotation.  ``ProfileSession`` (the dedicated ``profile`` command)
#: overrides this to ``None`` (probe every span) because a deep-dive
#: run's own overhead is not gated.
DEFAULT_ALLOC_SPANS: Tuple[str, ...] = ("recovery.", "failover.")


@dataclass(frozen=True)
class ProfilingConfig:
    """Tuning for one system's span-resource profiler.

    Disabled (the default) the profiler never subscribes to the tracer —
    the hot path pays nothing, which the ``prof-overhead`` bench proves
    and CI gates.  Enabled, every span start/end record costs one
    ``thread_time_ns`` read plus (when ``alloc`` is on and the span name
    passes ``alloc_spans``) one ``sys.getallocatedblocks`` call.

    ``alloc_spans`` is the allocation-probe *granularity* knob: ``None``
    measures allocations on every span; a tuple of name prefixes
    restricts the probes to matching spans.  The default is
    :data:`DEFAULT_ALLOC_SPANS` (recovery/failover spans only) because
    ``sys.getallocatedblocks`` is O(heap arenas) on CPython >= 3.11 —
    per-rotation alloc probes on a production heap would blow any
    percent-level budget, which the ``prof-overhead`` bench would catch.

    ``alloc_trace=True`` additionally starts ``tracemalloc`` (if not
    already tracing) so spans also report net traced bytes; it is the
    expensive option (~2x interpreter-wide allocation cost) and exists
    for deep dives, not for always-on attribution.
    """

    enabled: bool = False
    cpu: bool = True
    alloc: bool = True
    alloc_spans: Optional[Tuple[str, ...]] = DEFAULT_ALLOC_SPANS
    alloc_trace: bool = False
    node_series: bool = True
    sample_interval: float = 0.005


@dataclass
class PhaseCost:
    """Accumulated resource cost of one span name (phase)."""

    spans: int = 0
    #: Sum of span durations on the *system* clock (simulated seconds in
    #: the simulator, wall seconds live).
    wall_s: float = 0.0
    #: Inclusive CPU: thread CPU between start and end records (nested
    #: spans count toward their ancestors too).
    cpu_ns: int = 0
    #: Exclusive CPU: charged to the innermost open span only.
    self_cpu_ns: int = 0
    #: Net heap blocks allocated over the span (allocations minus frees).
    alloc_blocks: int = 0
    #: Net tracemalloc bytes (0 unless ``alloc_trace`` was on).
    alloc_bytes: int = 0

    def merge(self, other: "PhaseCost") -> None:
        self.spans += other.spans
        self.wall_s += other.wall_s
        self.cpu_ns += other.cpu_ns
        self.self_cpu_ns += other.self_cpu_ns
        self.alloc_blocks += other.alloc_blocks
        self.alloc_bytes += other.alloc_bytes


class SpanResourceProfiler:
    """Tracer subscriber attributing CPU and allocations to span phases.

    Span lifecycles arrive as ordinary ``span`` records (see
    :mod:`repro.obs.spans`); on ``span_start`` the profiler snapshots the
    emitting thread's CPU clock and the heap, on ``span_end`` it books the
    deltas under the span's *name* — so every ``recovery.capture`` across
    every transfer folds into one :class:`PhaseCost`.  Exclusive (self)
    CPU uses interval accounting: the CPU between two consecutive span
    events belongs to whichever span was innermost-open during it, which
    needs no LIFO discipline and therefore tolerates the protocol's
    cross-component span ends.

    When a metrics registry is supplied, completed spans also bump
    ``profile.{spans,cpu_ns,alloc_blocks}{phase=...}`` counters and — for
    spans carrying a ``node`` attr — ``profile.node_cpu_ns`` /
    ``profile.node_alloc_blocks`` per-node counters, which the telemetry
    plane samples into ``/metrics/history`` (the ``top`` CPU%% column).
    """

    def __init__(self, config: ProfilingConfig, *, metrics=None) -> None:
        self.config = config
        self.metrics = metrics
        self.phases: Dict[str, PhaseCost] = {}
        #: span_id -> (name, node, start_time, cpu0, blocks0, traced0, cost)
        self._open: Dict[str, tuple] = {}
        #: Innermost-open tracking for self-CPU and sampler phase tags;
        #: appended/removed on the emitting thread, read (last element
        #: only) by the sampler thread — both operations are atomic under
        #: the GIL, so no lock is needed.
        self._stack: List[tuple] = []
        self._mark = 0
        self._started_tracemalloc = False
        # Config hoisted to attributes: observe_span runs per span event.
        self._cpu = config.cpu
        self._alloc = config.alloc
        self._alloc_spans = config.alloc_spans
        # Counter export is deferred: the hot path accumulates into plain
        # lists ([spans, cpu_ns, alloc_blocks, *exported]) and
        # :meth:`flush_to_metrics` reconciles the registry counters —
        # per-span registry updates (label-key resolution + 5 inc calls)
        # cost more than the measurement itself.
        self._phase_acc: Dict[str, List[int]] = {}
        self._node_acc: Dict[str, List[int]] = {}
        self._phase_counters: Dict[str, tuple] = {}
        self._node_counters: Dict[str, tuple] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def attach(self, tracer: Tracer) -> "SpanResourceProfiler":
        """Subscribe to ``tracer`` (no-op — and no cost — when disabled)."""
        if self.config.enabled:
            if self.config.alloc_trace and not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracer.subscribe(self.observe_record)
        return self

    def release(self) -> None:
        """Stop ``tracemalloc`` if this profiler started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    # -- hot path ----------------------------------------------------------

    def observe_record(self, record: TraceRecord) -> None:
        """Live trace subscriber (installed by :meth:`attach`): one
        category compare per record, then span bookkeeping for span
        records only.  Kept as a two-level dispatch so the overhead bench
        can probe :meth:`observe_span` — the real per-span cost — without
        its own instrumentation drowning in the per-record early-outs."""
        if record.category == SPAN_CATEGORY:
            self.observe_span(record)

    def observe_span(self, record: TraceRecord) -> None:
        """Per-span-event bookkeeping (the profiler's actual hot path).

        The stack entries are ``(span_id, name, PhaseCost)`` so the
        interval self-CPU charge and the end-of-span booking both reach
        their accumulator without a dict lookup.
        """
        fields = record.fields
        span_id = fields.get("span")
        if span_id is None:
            return
        cpu_now = time.thread_time_ns() if self._cpu else 0
        stack = self._stack
        if stack:
            # Interval accounting: everything since the previous span
            # event ran inside the currently-innermost span.
            stack[-1][2].self_cpu_ns += cpu_now - self._mark
        self._mark = cpu_now
        event = record.event
        if event == START_EVENT:
            if span_id in self._open:
                return
            name = fields.get("name") or span_id
            cost = self.phases.get(name)
            if cost is None:
                cost = self.phases[name] = PhaseCost()
            if self._alloc and (self._alloc_spans is None
                                or name.startswith(self._alloc_spans)):
                blocks0 = sys.getallocatedblocks()
                traced0 = (tracemalloc.get_traced_memory()[0]
                           if tracemalloc.is_tracing() else None)
            else:
                blocks0 = traced0 = None
            self._open[span_id] = (name, fields.get("node"), record.time,
                                   cpu_now, blocks0, traced0, cost)
            stack.append((span_id, name, cost))
        elif event == END_EVENT:
            opened = self._open.pop(span_id, None)
            if opened is None:
                return
            name, node, t0, cpu0, blocks0, traced0, cost = opened
            if stack:
                if stack[-1][0] == span_id:
                    stack.pop()
                else:   # out-of-LIFO end (cross-component span)
                    for i in range(len(stack) - 1, -1, -1):
                        if stack[i][0] == span_id:
                            del stack[i]
                            break
            cost.spans += 1
            cost.wall_s += record.time - t0
            cpu_ns = cpu_now - cpu0
            cost.cpu_ns += cpu_ns
            alloc_blocks = 0
            if blocks0 is not None:
                alloc_blocks = sys.getallocatedblocks() - blocks0
                cost.alloc_blocks += alloc_blocks
                if traced0 is not None and tracemalloc.is_tracing():
                    cost.alloc_bytes += (tracemalloc.get_traced_memory()[0]
                                         - traced0)
            # Deferred counter export: clamped-positive running totals
            # (counters are monotone; the raw net deltas live in cost).
            acc = self._phase_acc.get(name)
            if acc is None:
                acc = self._phase_acc[name] = [0, 0, 0, 0, 0, 0]
            acc[0] += 1
            if cpu_ns > 0:
                acc[1] += cpu_ns
            if alloc_blocks > 0:
                acc[2] += alloc_blocks
            if node is not None:
                nacc = self._node_acc.get(node)
                if nacc is None:
                    nacc = self._node_acc[node] = [0, 0, 0, 0]
                if cpu_ns > 0:
                    nacc[0] += cpu_ns
                if alloc_blocks > 0:
                    nacc[1] += alloc_blocks

    def flush_to_metrics(self) -> None:
        """Reconcile the registry's ``profile.*`` counters with the
        accumulated totals (called off the hot path — the telemetry
        plane's sampler tick / ``/metrics/history`` handler, or directly
        before reading the registry)."""
        metrics = self.metrics
        if metrics is None:
            return
        for name, acc in self._phase_acc.items():
            counters = self._phase_counters.get(name)
            if counters is None:
                counters = self._phase_counters[name] = (
                    metrics.counter("profile.spans", phase=name),
                    metrics.counter("profile.cpu_ns", phase=name),
                    metrics.counter("profile.alloc_blocks", phase=name),
                )
            for i in range(3):
                delta = acc[i] - acc[i + 3]
                if delta:
                    counters[i].inc(delta)
                    acc[i + 3] = acc[i]
        if not self.config.node_series:
            return
        for node, nacc in self._node_acc.items():
            counters = self._node_counters.get(node)
            if counters is None:
                counters = self._node_counters[node] = (
                    metrics.counter("profile.node_cpu_ns", node=node),
                    metrics.counter("profile.node_alloc_blocks", node=node),
                )
            for i in range(2):
                delta = nacc[i] - nacc[i + 2]
                if delta:
                    counters[i].inc(delta)
                    nacc[i + 2] = nacc[i]

    # -- queries -----------------------------------------------------------

    def current_phase(self) -> Optional[str]:
        """The innermost currently-open span name (sampler tag); safe to
        call from any thread."""
        stack = self._stack
        try:
            return stack[-1][1]
        except IndexError:
            return None


def merge_phase_costs(
    sources: Iterable[Mapping[str, PhaseCost]],
) -> Dict[str, PhaseCost]:
    """Fold several per-system phase-cost maps into one (sweep totals)."""
    merged: Dict[str, PhaseCost] = {}
    for phases in sources:
        for name, cost in phases.items():
            into = merged.get(name)
            if into is None:
                merged[name] = into = PhaseCost()
            into.merge(cost)
    return merged


# ---------------------------------------------------------------------------
# Sampling stack profiler (collapsed/folded output)
# ---------------------------------------------------------------------------

def fold_frames(frame, *, max_depth: int = 64) -> Tuple[str, ...]:
    """Collapse a Python frame chain into root-first ``file:qualname``
    frame names (the unit of the folded-stack format)."""
    stack: List[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        name = getattr(code, "co_qualname", code.co_name)
        stack.append(f"{os.path.basename(code.co_filename)}:{name}")
        frame = frame.f_back
        depth += 1
    stack.reverse()
    return tuple(stack)


def render_folded(samples: Mapping[Tuple[str, Tuple[str, ...]], int]) -> str:
    """Render ``{(phase, stack): count}`` as collapsed/folded stack lines.

    One line per distinct stack — ``phase;frame;frame;... count`` — in
    deterministic (sorted) order, ending with a newline when non-empty:
    exactly what ``flamegraph.pl`` and speedscope consume.  The phase tag
    is the root frame, so a flame graph groups samples by protocol phase
    before code location.
    """
    lines = []
    for (phase, stack), count in sorted(samples.items()):
        frames = (phase,) + tuple(stack)
        lines.append(f"{';'.join(frames)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


class StackSampler:
    """Threading-based sampling profiler (simnet- and live-safe).

    A daemon thread wakes every ``interval`` wall-clock seconds and
    captures the *target* thread's Python stack via
    ``sys._current_frames()`` — no sys.settrace, no interpreter slowdown
    between samples, safe alongside both the simulator's synchronous
    driver loop and the live asyncio loop (neither is interrupted; the
    GIL serializes the walk).  Each sample is tagged with the phase the
    ``phase_provider`` reports (normally
    :meth:`SpanResourceProfiler.current_phase`), so samples land in the
    protocol phase that was open when they were taken.

    :meth:`start`/:meth:`stop` are idempotent and thread-safe; sample
    counts are kept under a lock so :meth:`snapshot` can run while
    sampling continues.
    """

    def __init__(self, *, interval: float = 0.005,
                 phase_provider: Optional[Callable[[], Optional[str]]] = None,
                 target_thread_id: Optional[int] = None,
                 max_depth: int = 64) -> None:
        self.interval = interval
        self._provider = phase_provider
        self._target = target_thread_id
        self._max_depth = max_depth
        self._samples: Counter = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples_taken = 0

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Begin sampling (no-op if already running).  The target thread
        defaults to the caller's — start from the thread that runs the
        protocol."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            if self._target is None:
                self._target = threading.get_ident()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-stack-sampler", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (no-op if stopped)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one sample of the target thread now; returns 1 if a stack
        was captured (callable from any thread, e.g. to guarantee a
        non-empty profile on very short runs)."""
        target = self._target
        if target is None:
            target = threading.get_ident()
        frame = sys._current_frames().get(target)
        if frame is None:
            return 0
        stack = fold_frames(frame, max_depth=self._max_depth)
        phase: Optional[str] = None
        provider = self._provider
        if provider is not None:
            try:
                phase = provider()
            except Exception:
                phase = None
        with self._lock:
            self._samples[(phase or UNATTRIBUTED, stack)] += 1
            self.samples_taken += 1
        return 1

    def snapshot(self) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        """A consistent copy of the sample counts."""
        with self._lock:
            return dict(self._samples)

    def folded(self) -> str:
        """The samples as collapsed/folded stack text."""
        return render_folded(self.snapshot())

    def write_folded(self, path: str) -> int:
        """Write the ``.folded`` artifact; returns the line count."""
        text = self.folded()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return 0 if not text else text.count("\n")


# ---------------------------------------------------------------------------
# In-situ overhead probe (the one audited overhead-measurement path)
# ---------------------------------------------------------------------------

class InSituProbe:
    """Accumulates the wall-clock time spent *inside* designated methods.

    Overhead gates need the instrumented plane's own share of a run, not
    an on/off A-B delta (shared-hardware interference swings A-B wall
    clocks by far more than a percent-level budget; the probe puts
    numerator and denominator inside the same run, where interference
    cancels to first order — see the ``obs-overhead`` bench docstring).
    The probe patches each target method on its *class* so it must be
    installed **before** the measured system is built: tracer
    subscriptions capture bound methods at subscribe time.

    The wrapper's own two clock reads per call are charged *to* the
    probed plane — a slight over-count, which is the conservative
    direction for a budget gate.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.seconds = 0.0
        self.calls = 0
        self._patched: List[Tuple[type, str, Any]] = []

    def patch(self, cls: type, method_name: str) -> "InSituProbe":
        """Wrap ``cls.method_name`` to accumulate its wall-clock cost."""
        original = getattr(cls, method_name)
        probe = self
        clock = self._clock

        def timed(*args: Any, **kwargs: Any):
            t0 = clock()
            try:
                return original(*args, **kwargs)
            finally:
                probe.seconds += clock() - t0
                probe.calls += 1

        timed.__wrapped__ = original
        setattr(cls, method_name, timed)
        self._patched.append((cls, method_name, original))
        return self

    def restore(self) -> None:
        """Put every patched method back (reverse order)."""
        while self._patched:
            cls, name, original = self._patched.pop()
            setattr(cls, name, original)

    def __enter__(self) -> "InSituProbe":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.restore()

    def overhead_ratio(self, run_seconds: float) -> float:
        """``run / (run - probed)``: what the run cost relative to what it
        would have cost without the time provably spent in the probed
        methods.  Exactly 1.0 when nothing was probed (the off gate)."""
        remainder = run_seconds - self.seconds
        if remainder <= 0:
            return float("inf")
        return run_seconds / remainder


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def phase_table_rows(
    phases: Mapping[str, PhaseCost],
) -> List[Tuple[str, PhaseCost]]:
    """Order phases for display: protocol order first, the rest by CPU."""
    rows: List[Tuple[str, PhaseCost]] = [
        (name, phases[name]) for name in PHASE_ORDER if name in phases
    ]
    known = set(PHASE_ORDER)
    rows.extend(sorted(
        ((name, cost) for name, cost in phases.items() if name not in known),
        key=lambda item: -item[1].cpu_ns,
    ))
    return rows


def render_cost_table(phases: Mapping[str, PhaseCost], *,
                      syscalls: Optional[Mapping[str, int]] = None,
                      wall_label: str = "wall") -> str:
    """Render the per-phase cost table (wall vs CPU vs allocs), plus the
    live transport's syscall accounting when ``syscalls`` is given."""
    header = (f"{'phase':22s} {'spans':>6s} {wall_label + '_ms':>10s} "
              f"{'cpu_ms':>10s} {'self_ms':>10s} {'allocs':>10s} "
              f"{'alloc_kB':>9s}")
    lines = [header, "-" * len(header)]
    for name, cost in phase_table_rows(phases):
        lines.append(
            f"{name:22s} {cost.spans:6d} {cost.wall_s * 1000:10.3f} "
            f"{cost.cpu_ns / 1e6:10.3f} {cost.self_cpu_ns / 1e6:10.3f} "
            f"{cost.alloc_blocks:10d} {cost.alloc_bytes / 1000:9.1f}"
        )
    if not phases:
        lines.append("(no spans completed)")
    if syscalls is not None:
        lines.append("")
        lines.append("live transport syscalls:")
        if syscalls:
            for key in sorted(syscalls):
                lines.append(f"  {key:28s} {syscalls[key]:>12d}")
            recvfrom = syscalls.get(SYSCALL_PREFIX + "recv_datagrams", 0)
            batches = syscalls.get(SYSCALL_PREFIX + "recv_batches", 0)
            if batches:
                lines.append(f"  {'(datagrams per wakeup)':28s} "
                             f"{recvfrom / batches:>12.2f}")
        else:
            lines.append("  (none recorded — simulated transport?)")
    return "\n".join(lines)


def syscall_counters(counters: Mapping[str, int]) -> Dict[str, int]:
    """Extract the live transport's syscall counters from a tracer's
    counter map (empty under the simulated transport)."""
    return {key: int(value) for key, value in counters.items()
            if key.startswith(SYSCALL_PREFIX)}


class ProfileSession:
    """One CLI profiling run: config + sampler + merged results.

    A sweep builds several systems; the session hands each the same
    :class:`ProfilingConfig`, tracks every system's profiler, and keeps
    one wall-clock :class:`StackSampler` whose phase tags follow the
    *most recently attached* system (sweeps run their deployments
    sequentially, so that is the one executing).

    Unlike the bare config default, a session probes allocations on
    *every* span (``alloc_spans=None``) — a ``profile`` run exists to
    attribute cost, so it accepts the O(heap) alloc-probe price that the
    always-on default avoids.
    """

    def __init__(self, *, sample_interval: float = 0.005,
                 alloc_spans: Optional[Tuple[str, ...]] = None,
                 alloc_trace: bool = False) -> None:
        self.config = ProfilingConfig(
            enabled=True, alloc_spans=alloc_spans, alloc_trace=alloc_trace,
            sample_interval=sample_interval,
        )
        self._profilers: List[SpanResourceProfiler] = []
        self.sampler = StackSampler(interval=sample_interval,
                                    phase_provider=self._current_phase)

    def _current_phase(self) -> Optional[str]:
        if not self._profilers:
            return None
        return self._profilers[-1].current_phase()

    def attach(self, system) -> None:
        """Adopt a freshly built system's profiler (its config must be
        this session's — pass ``profiling=session.config`` at build)."""
        self._profilers.append(system.profiler)

    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        """Stop sampling and release any profiler-started tracemalloc."""
        self.sampler.stop()
        for profiler in self._profilers:
            profiler.release()

    def merged_phases(self) -> Dict[str, PhaseCost]:
        return merge_phase_costs(p.phases for p in self._profilers)

    def write_folded(self, path: str) -> int:
        """Write the ``.folded`` artifact (guaranteeing at least one
        sample so short runs still produce a valid file)."""
        if self.sampler.samples_taken == 0:
            self.sampler.sample_once()
        return self.sampler.write_folded(path)

    def render_table(self, *, syscalls: Optional[Mapping[str, int]] = None,
                     wall_label: str = "wall") -> str:
        return render_cost_table(self.merged_phases(), syscalls=syscalls,
                                 wall_label=wall_label)
