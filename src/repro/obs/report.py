"""Per-phase recovery breakdowns from the span tree.

The §5.1 state-transfer protocol is instrumented as one root span per
transfer (``recovery.total``, span id = the transfer id) with a child span
per step i–vi:

==================  =====================================================
``recovery.announce``  (i) ReplicaJoin multicast → logged ``get_state()``
                       sync point at the new replica
``recovery.quiesce``   wait for quiescence at a responder (nested inside
                       ``recovery.capture``)
``recovery.capture``   (ii–iii) fabricated ``get_state()`` execution and
                       state capture at a responder
``recovery.xfer``      (iv) fabricated ``set_state()`` on the wire:
                       multicast → delivery at the new replica
``recovery.apply``     (v) ``set_state()`` application at the new replica
``recovery.assign``    (v) ORB/POA- and infrastructure-level assignment
``recovery.drain``     (vi) replay of the enqueued messages
==================  =====================================================

:func:`recovery_phase_report` extracts one
:class:`RecoveryPhaseBreakdown` per completed root span; when the tracer
retained ``totem.frame`` records, the transfer's multicast frame count is
attributed from the wire-span window.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import Span, SpanTracker
from repro.runtime.trace import TraceRecord, Tracer

#: Phase (child-span) names in protocol order.
RECOVERY_PHASES = ("announce", "quiesce", "capture", "xfer", "apply",
                   "assign", "drain")


@dataclass(frozen=True)
class RecoveryPhaseBreakdown:
    """One recovery (or failover), decomposed into protocol phases."""

    transfer_id: str
    group: Optional[str]
    node: Optional[str]
    started_at: float
    recovered_at: Optional[float]
    #: phase name -> duration in (simulated) seconds
    phases: Dict[str, float] = field(default_factory=dict)
    state_bytes: Optional[int] = None
    transfer_frames: Optional[int] = None
    drained_messages: Optional[int] = None

    @property
    def total(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.recovered_at is not None


def _phase_name(span: Span) -> str:
    return span.name.rsplit(".", 1)[-1]


def recovery_phase_report(tracer: Tracer) -> List[RecoveryPhaseBreakdown]:
    """Extract per-phase breakdowns for every recovery/failover root span
    in the tracer's retained records (in start order)."""
    tracker = SpanTracker.from_tracer(tracer)
    frames = [r.time for r in tracer.find("totem", "frame")]
    frames.sort()
    reports: List[RecoveryPhaseBreakdown] = []
    for root in tracker.spans:
        if root.name not in ("recovery.total", "failover.total"):
            continue
        phases: Dict[str, float] = {}
        state_bytes: Optional[int] = None
        transfer_frames: Optional[int] = None
        drained: Optional[int] = None
        children = tracker.children(root.span_id)
        for child in children:
            # quiesce spans nest inside capture spans
            children_of_child = tracker.children(child.span_id)
            for nested in children_of_child:
                if nested.complete:
                    name = _phase_name(nested)
                    phases[name] = max(phases.get(name, 0.0),
                                       nested.duration)
            if not child.complete:
                continue
            name = _phase_name(child)
            # several responders may capture concurrently; report the one
            # whose set_state won (max duration is the conservative bound)
            phases[name] = max(phases.get(name, 0.0), child.duration)
            if name == "xfer":
                if "app_bytes" in child.attrs:
                    state_bytes = child.attrs["app_bytes"]
                if frames:
                    transfer_frames = sum(
                        1 for t in frames if child.start <= t <= child.end
                    )
            elif name == "drain" and "drained" in child.attrs:
                drained = child.attrs["drained"]
        reports.append(RecoveryPhaseBreakdown(
            transfer_id=root.span_id,
            group=root.attrs.get("group"),
            node=root.attrs.get("node"),
            started_at=root.start,
            recovered_at=root.end,
            phases=phases,
            state_bytes=state_bytes,
            transfer_frames=transfer_frames,
            drained_messages=drained,
        ))
    return reports


def render_phase_table(tracer: Tracer, *, scale: float = 1000.0,
                       unit: str = "ms") -> str:
    """Render the per-phase breakdowns as a fixed-width text table
    (durations scaled by ``scale``; default milliseconds)."""
    reports = recovery_phase_report(tracer)
    if not reports:
        return "  (no recovery spans in the trace — were records kept?)"
    header = (f"{'recovery':32s} {'total':>9s} "
              + " ".join(f"{p:>9s}" for p in RECOVERY_PHASES)
              + f"  {'bytes':>8s} {'frames':>6s} {'drained':>7s}  [{unit}]")
    lines = [header, "-" * len(header)]
    for report in reports:
        who = f"{report.group}@{report.node}"
        total = (f"{report.total * scale:9.3f}" if report.complete
                 else "  (open)")
        cells = " ".join(
            f"{report.phases[p] * scale:9.3f}" if p in report.phases
            else f"{'-':>9s}"
            for p in RECOVERY_PHASES
        )
        extras = (f"  {report.state_bytes or 0:8d} "
                  f"{report.transfer_frames if report.transfer_frames is not None else 0:6d} "
                  f"{report.drained_messages if report.drained_messages is not None else 0:7d}")
        lines.append(f"{who:32s} {total} {cells}{extras}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cross-node invocation stitching
# ---------------------------------------------------------------------------
#
# Every hop of a replicated invocation emits a trace record carrying the
# invocation's trace id (``op:<client>-><server>#<request_id>``, minted by
# the Interceptor and propagated through the IIOP envelope and the Totem
# data frames).  Stitching groups those records — possibly merged from
# several per-node JSONL streams (live mode: each node dumps its own
# flight-recorder file) — into one causal timeline per invocation.

#: Stage names in causal order (ties in time sort by this rank).
INVOCATION_STAGES = ("client_send", "ring_deliver", "execute",
                     "reply_send", "reply_deliver", "client_done")
_STAGE_RANK = {name: i for i, name in enumerate(INVOCATION_STAGES)}


@dataclass(frozen=True)
class TimelineEvent:
    """One stage of one invocation, observed at one node."""

    stage: str
    time: float
    node: str


@dataclass(frozen=True)
class InvocationTimeline:
    """One invocation's causal end-to-end timeline."""

    trace_id: str
    operation: Optional[str]
    events: Tuple[TimelineEvent, ...]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Distinct nodes the invocation touched, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.node)
        return tuple(seen)

    @property
    def total(self) -> Optional[float]:
        """Client-observed round-trip time (None while incomplete)."""
        start = [e for e in self.events if e.stage == "client_send"]
        done = [e for e in self.events if e.stage == "client_done"]
        if not start or not done:
            return None
        return done[-1].time - start[0].time


def load_trace_jsonl(path: str) -> List[TraceRecord]:
    """Read one :func:`repro.obs.exporters.export_jsonl` stream (also the
    flight-recorder dump format) back into trace records."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            records.append(TraceRecord(obj["ts"], obj["category"],
                                       obj["event"], obj.get("fields", {})))
    return records


def stitch_jsonl_streams(paths: Iterable[str]) -> List[TraceRecord]:
    """Merge several per-node JSONL streams into one time-ordered record
    list, dropping duplicates (flight dumps overlap: each carries the
    global lane, and a node may have dumped more than once)."""
    seen = set()
    merged: List[TraceRecord] = []
    for path in paths:
        for record in load_trace_jsonl(path):
            key = (record.time, record.category, record.event,
                   json.dumps(record.fields, sort_keys=True, default=str))
            if key in seen:
                continue
            seen.add(key)
            merged.append(record)
    merged.sort(key=lambda r: r.time)
    return merged


def stitch_invocations(
        records: Iterable[TraceRecord]) -> List[InvocationTimeline]:
    """Group trace records by invocation trace id into causal timelines
    (client send → ring delivery per node → execute → reply → client done),
    ordered by each invocation's first event."""
    events: Dict[str, List[TimelineEvent]] = {}
    operations: Dict[str, str] = {}
    # span_id -> (trace, node) for open rpc.roundtrip spans: span_end
    # records carry no attrs, so the close is matched through the start.
    rpc_spans: Dict[str, Tuple[str, str]] = {}

    def note(trace: Optional[str], stage: str, time: float, node) -> None:
        if not trace:
            return
        events.setdefault(trace, []).append(
            TimelineEvent(stage, time, str(node)))

    for record in records:
        fields = record.fields
        category, event = record.category, record.event
        if category == "interceptor" and event == "request":
            note(fields.get("trace"), "client_send", record.time,
                 fields.get("node", "?"))
        elif category == "totem" and event == "deliver":
            note(fields.get("trace"), "ring_deliver", record.time,
                 fields.get("node", "?"))
        elif category == "replication" and event == "delivered":
            stage = ("execute" if fields.get("kind") == "REQUEST"
                     else "reply_deliver")
            note(fields.get("trace"), stage, record.time,
                 fields.get("node", "?"))
        elif category == "interceptor" and event == "reply":
            note(fields.get("trace"), "reply_send", record.time,
                 fields.get("node", "?"))
        elif category == "span" and event == "span_start":
            if fields.get("name") == "rpc.roundtrip":
                trace = fields.get("trace")
                span_id = fields.get("span")
                if trace and span_id:
                    rpc_spans[span_id] = (trace, fields.get("node", "?"))
                    if "operation" in fields:
                        operations[trace] = fields["operation"]
        elif category == "span" and event == "span_end":
            spot = rpc_spans.pop(fields.get("span"), None)
            if spot is not None:
                trace, node = spot
                note(trace, "client_done", record.time, node)

    timelines: List[InvocationTimeline] = []
    for trace, evts in events.items():
        evts.sort(key=lambda e: (e.time, _STAGE_RANK.get(e.stage, 99)))
        timelines.append(InvocationTimeline(
            trace_id=trace, operation=operations.get(trace),
            events=tuple(evts)))
    timelines.sort(key=lambda t: t.events[0].time)
    return timelines


def render_invocation_timeline(timeline: InvocationTimeline, *,
                               scale: float = 1000.0,
                               unit: str = "ms") -> str:
    """Render one stitched invocation as an indented causal timeline
    (offsets from the first event, scaled; default milliseconds)."""
    op = f" {timeline.operation}()" if timeline.operation else ""
    head = f"{timeline.trace_id}{op}"
    total = timeline.total
    if total is not None:
        head += f"  [{total * scale:.3f} {unit} end-to-end]"
    lines = [head]
    base = timeline.events[0].time if timeline.events else 0.0
    for event in timeline.events:
        offset = (event.time - base) * scale
        lines.append(f"  +{offset:9.3f} {unit:3s} {event.stage:14s} "
                     f"@ {event.node}")
    return "\n".join(lines)
