"""Per-phase recovery breakdowns from the span tree.

The §5.1 state-transfer protocol is instrumented as one root span per
transfer (``recovery.total``, span id = the transfer id) with a child span
per step i–vi:

==================  =====================================================
``recovery.announce``  (i) ReplicaJoin multicast → logged ``get_state()``
                       sync point at the new replica
``recovery.quiesce``   wait for quiescence at a responder (nested inside
                       ``recovery.capture``)
``recovery.capture``   (ii–iii) fabricated ``get_state()`` execution and
                       state capture at a responder
``recovery.xfer``      (iv) fabricated ``set_state()`` on the wire:
                       multicast → delivery at the new replica
``recovery.apply``     (v) ``set_state()`` application at the new replica
``recovery.assign``    (v) ORB/POA- and infrastructure-level assignment
``recovery.drain``     (vi) replay of the enqueued messages
==================  =====================================================

:func:`recovery_phase_report` extracts one
:class:`RecoveryPhaseBreakdown` per completed root span; when the tracer
retained ``totem.frame`` records, the transfer's multicast frame count is
attributed from the wire-span window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.spans import Span, SpanTracker
from repro.runtime.trace import Tracer

#: Phase (child-span) names in protocol order.
RECOVERY_PHASES = ("announce", "quiesce", "capture", "xfer", "apply",
                   "assign", "drain")


@dataclass(frozen=True)
class RecoveryPhaseBreakdown:
    """One recovery (or failover), decomposed into protocol phases."""

    transfer_id: str
    group: Optional[str]
    node: Optional[str]
    started_at: float
    recovered_at: Optional[float]
    #: phase name -> duration in (simulated) seconds
    phases: Dict[str, float] = field(default_factory=dict)
    state_bytes: Optional[int] = None
    transfer_frames: Optional[int] = None
    drained_messages: Optional[int] = None

    @property
    def total(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.recovered_at is not None


def _phase_name(span: Span) -> str:
    return span.name.rsplit(".", 1)[-1]


def recovery_phase_report(tracer: Tracer) -> List[RecoveryPhaseBreakdown]:
    """Extract per-phase breakdowns for every recovery/failover root span
    in the tracer's retained records (in start order)."""
    tracker = SpanTracker.from_tracer(tracer)
    frames = [r.time for r in tracer.find("totem", "frame")]
    frames.sort()
    reports: List[RecoveryPhaseBreakdown] = []
    for root in tracker.spans:
        if root.name not in ("recovery.total", "failover.total"):
            continue
        phases: Dict[str, float] = {}
        state_bytes: Optional[int] = None
        transfer_frames: Optional[int] = None
        drained: Optional[int] = None
        children = tracker.children(root.span_id)
        for child in children:
            # quiesce spans nest inside capture spans
            children_of_child = tracker.children(child.span_id)
            for nested in children_of_child:
                if nested.complete:
                    name = _phase_name(nested)
                    phases[name] = max(phases.get(name, 0.0),
                                       nested.duration)
            if not child.complete:
                continue
            name = _phase_name(child)
            # several responders may capture concurrently; report the one
            # whose set_state won (max duration is the conservative bound)
            phases[name] = max(phases.get(name, 0.0), child.duration)
            if name == "xfer":
                if "app_bytes" in child.attrs:
                    state_bytes = child.attrs["app_bytes"]
                if frames:
                    transfer_frames = sum(
                        1 for t in frames if child.start <= t <= child.end
                    )
            elif name == "drain" and "drained" in child.attrs:
                drained = child.attrs["drained"]
        reports.append(RecoveryPhaseBreakdown(
            transfer_id=root.span_id,
            group=root.attrs.get("group"),
            node=root.attrs.get("node"),
            started_at=root.start,
            recovered_at=root.end,
            phases=phases,
            state_bytes=state_bytes,
            transfer_frames=transfer_frames,
            drained_messages=drained,
        ))
    return reports


def render_phase_table(tracer: Tracer, *, scale: float = 1000.0,
                       unit: str = "ms") -> str:
    """Render the per-phase breakdowns as a fixed-width text table
    (durations scaled by ``scale``; default milliseconds)."""
    reports = recovery_phase_report(tracer)
    if not reports:
        return "  (no recovery spans in the trace — were records kept?)"
    header = (f"{'recovery':32s} {'total':>9s} "
              + " ".join(f"{p:>9s}" for p in RECOVERY_PHASES)
              + f"  {'bytes':>8s} {'frames':>6s} {'drained':>7s}  [{unit}]")
    lines = [header, "-" * len(header)]
    for report in reports:
        who = f"{report.group}@{report.node}"
        total = (f"{report.total * scale:9.3f}" if report.complete
                 else "  (open)")
        cells = " ".join(
            f"{report.phases[p] * scale:9.3f}" if p in report.phases
            else f"{'-':>9s}"
            for p in RECOVERY_PHASES
        )
        extras = (f"  {report.state_bytes or 0:8d} "
                  f"{report.transfer_frames if report.transfer_frames is not None else 0:6d} "
                  f"{report.drained_messages if report.drained_messages is not None else 0:7d}")
        lines.append(f"{who:32s} {total} {cells}{extras}")
    return "\n".join(lines)
