"""Causal span tracing over the trace stream.

A *span* is a named interval with an optional parent, carried as two
ordinary trace records in the ``span`` category::

    span.span_start   span=<id> name=<name> parent=<id or None> **attrs
    span.span_end     span=<id> **attrs

Spans may start on one component and end on another (the simulation shares
one tracer system-wide), which is exactly what the §5.1 state-transfer
protocol needs: the wire-transfer span starts where the fabricated
``set_state()`` is multicast and ends where it is delivered.

Naming convention (see README "Observability"): dotted
``<subsystem>.<phase>`` names — ``recovery.capture``, ``totem.rotation``,
``rpc.roundtrip`` — with deterministic span ids derived from protocol
identifiers (e.g. ``<transfer_id>/capture@<node>``) so that independent
emitters agree on the id without coordination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.runtime.trace import TraceRecord, Tracer

SPAN_CATEGORY = "span"
START_EVENT = "span_start"
END_EVENT = "span_end"


class SpanEmitter:
    """Emits span start/end records through a tracer.

    The tracer's ``open_spans`` set (shared by every emitter on the same
    tracer) makes the pair idempotent: a second ``start`` of a live id and
    an ``end`` of an unknown or already-closed id are silently dropped, so
    protocol duplicates (several responders answering one GET, retried
    announcements) cannot produce malformed span streams.
    """

    def __init__(self, tracer: Tracer, *, node_id: str = "") -> None:
        self._tracer = tracer
        self._node_id = node_id
        self._auto_ids = itertools.count(1)

    def start(self, name: str, *, span_id: Optional[str] = None,
              parent: Optional[str] = None, **attrs: Any) -> str:
        """Open a span; returns its id (auto-generated unless given)."""
        sid = span_id or f"{self._node_id}:{name}:{next(self._auto_ids)}"
        open_spans = self._tracer.open_spans
        if open_spans is not None:
            if sid in open_spans:
                return sid
            open_spans.add(sid)
        self._tracer.emit(SPAN_CATEGORY, START_EVENT, span=sid, name=name,
                          parent=parent, **attrs)
        return sid

    def end(self, span_id: str, **attrs: Any) -> None:
        """Close a span (no-op if it is not currently open)."""
        open_spans = self._tracer.open_spans
        if open_spans is not None:
            if span_id not in open_spans:
                return
            open_spans.discard(span_id)
        self._tracer.emit(SPAN_CATEGORY, END_EVENT, span=span_id, **attrs)


@dataclass
class Span:
    """One reconstructed span (complete once ``end`` is not None)."""

    span_id: str
    name: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start


class SpanTracker:
    """Rebuilds the span tree from span records (live or retained).

    Feed it records via :meth:`feed` (e.g. ``tracer.subscribe(t.feed)``) or
    build it after the fact with :meth:`from_tracer`.  Besides the spans
    themselves it tracks the two failure modes a span stream can have:

    * **unfinished** spans — started but never ended (e.g. a recovery
      superseded by a retry);
    * **orphan ends** — ``span_end`` records whose id was never started
      (a protocol bug, or a trace truncated at the front).
    """

    def __init__(self) -> None:
        self._spans: Dict[str, Span] = {}
        self._order: List[str] = []
        self.orphan_ends: List[TraceRecord] = []

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "SpanTracker":
        """Build from a tracer's retained records."""
        return cls.from_records(tracer.records)

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "SpanTracker":
        """Build from an iterable of trace records."""
        tracker = cls()
        for record in records:
            tracker.feed(record)
        return tracker

    def feed(self, record: TraceRecord) -> None:
        """Consume one trace record (non-span records are ignored)."""
        if record.category != SPAN_CATEGORY:
            return
        fields = dict(record.fields)
        span_id = fields.pop("span", None)
        if span_id is None:
            return
        if record.event == START_EVENT:
            if span_id in self._spans:
                return          # duplicate start: first one wins
            self._spans[span_id] = Span(
                span_id=span_id,
                name=fields.pop("name", span_id),
                parent_id=fields.pop("parent", None),
                start=record.time,
                attrs=fields,
            )
            self._order.append(span_id)
        elif record.event == END_EVENT:
            span = self._spans.get(span_id)
            if span is None:
                self.orphan_ends.append(record)
                return
            if span.end is not None:
                return          # duplicate end: first one wins
            span.end = record.time
            span.attrs.update(fields)

    # -- queries -----------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All spans in start order (complete and unfinished)."""
        return [self._spans[sid] for sid in self._order]

    def get(self, span_id: str) -> Optional[Span]:
        """Look a span up by id."""
        return self._spans.get(span_id)

    def named(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: str) -> List[Span]:
        """Direct children of a span, in start order."""
        return [s for s in self.spans if s.parent_id == span_id]

    @property
    def unfinished(self) -> List[Span]:
        """Spans that were started but never ended."""
        return [s for s in self.spans if not s.complete]

    def roots(self) -> List[Span]:
        """Spans without a parent (or whose parent is not in the trace)."""
        return [s for s in self.spans
                if s.parent_id is None or s.parent_id not in self._spans]

    def nesting_violations(self) -> List[Span]:
        """Complete spans that are not contained in their parent's interval.

        A child may legitimately *end* together with (or be closed by) its
        parent, so containment is checked with closed bounds.
        """
        bad: List[Span] = []
        for span in self.spans:
            if not span.complete or span.parent_id is None:
                continue
            parent = self._spans.get(span.parent_id)
            if parent is None or not parent.complete:
                continue
            if span.start < parent.start or span.end > parent.end:
                bad.append(span)
        return bad
