"""Live health exposition in the Prometheus text format.

:func:`render_health` snapshots a running :class:`EternalSystem` into the
plain-text exposition format (`name{label="value"} value`, one series per
line): node liveness, per-replica status/role/queues, outstanding two-way
invocations, fault-detector suspicion state, audit status, and the whole
metrics registry (histograms as quantile series plus ``_count``/``_sum``).

The renderer is read-only and works on any live system — tests, the
``python -m repro health`` CLI, and ``demo --health`` all use it.
:func:`parse_exposition` is the matching line-by-line parser (used by the
tests to pin the format, and handy for piping snapshots elsewhere).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _metric_name(name: str, prefix: str = "") -> str:
    return prefix + _NAME_OK.sub("_", name)


def _escape(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _series(name: str, labels: Dict[str, Any], value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape(v)}"'
                        for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {value:g}"
    return f"{name} {value:g}"


def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text back into ``(name, labels, value)`` tuples.

    Comment (``#``) and blank lines are skipped; any other line that does
    not match ``name{labels} value`` raises ``ValueError``.
    """
    out: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno} is not a metric line: {line!r}")
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            for key, value in _LABEL.findall(body):
                labels[key] = (value.replace("\\n", "\n")
                               .replace('\\"', '"').replace("\\\\", "\\"))
        out.append((match.group("name"), labels,
                    float(match.group("value"))))
    return out


def render_health(system, *, auditor=None) -> str:
    """Render one health snapshot of a live :class:`EternalSystem`.

    ``auditor`` defaults to ``system.auditor`` (attached via
    ``system.attach_auditor()``); pass one explicitly to report on a
    post-hoc replay instead.
    """
    if auditor is None:
        auditor = getattr(system, "auditor", None)
    lines: List[str] = [
        "# Eternal health snapshot "
        f"(simulated time {system.now:.6f}s)",
    ]

    # -- nodes and replicas ------------------------------------------------
    lines.append("# TYPE eternal_node_alive gauge")
    for node_id in sorted(system.stacks):
        stack = system.stacks[node_id]
        lines.append(_series("eternal_node_alive", {"node": node_id},
                             1 if stack.process.alive else 0))

    lines.append("# TYPE eternal_totem_partial_count gauge")
    for node_id in sorted(system.stacks):
        stack = system.stacks[node_id]
        totem = getattr(stack, "totem", None)
        if totem is None or not stack.process.alive:
            continue
        lines.append(_series("eternal_totem_partial_count",
                             {"node": node_id}, totem.reassembly_pending))

    replica_lines: List[str] = []
    detector_lines: List[str] = []
    bulk_lines: List[str] = []
    group_ids: Dict[str, Any] = {}
    for node_id in sorted(system.stacks):
        stack = system.stacks[node_id]
        if not stack.process.alive or stack.mechanisms is None:
            continue
        mechanisms = stack.mechanisms
        for group_id, info in sorted(mechanisms.groups.items()):
            group_ids.setdefault(group_id, info)
        for group_id in sorted(mechanisms.bindings):
            binding = mechanisms.bindings[group_id]
            info = mechanisms.groups.get(group_id)
            labels = {"node": node_id, "group": group_id}
            replica_lines.append(_series(
                "eternal_replica_operational", labels,
                1 if binding.operational else 0))
            role = (info.role_of(node_id) or "?") if info else "?"
            style = info.style.value if info else "?"
            replica_lines.append(_series(
                "eternal_replica_role",
                dict(labels, role=role, style=style), 1))
            replica_lines.append(_series(
                "eternal_replica_queue_depth", labels,
                binding.container.queue_depth))
            replica_lines.append(_series(
                "eternal_replica_outstanding_invocations", labels,
                binding.interceptor.outstanding_invocations))
            replica_lines.append(_series(
                "eternal_replica_enqueued_messages", labels,
                len(binding.enqueued)))
            replica_lines.append(_series(
                "eternal_replica_log_length", labels,
                binding.log.log_length))
        bulk = getattr(mechanisms.recovery, "bulk", None)
        if bulk is not None:
            state = bulk.snapshot()
            labels = {"node": node_id}
            bulk_lines.append(_series(
                "eternal_bulk_sessions_active", labels,
                state["sessions_active"]))
            bulk_lines.append(_series(
                "eternal_bulk_stripes_in_flight", labels,
                state["stripes_in_flight"]))
            bulk_lines.append(_series(
                "eternal_bulk_store_entries", labels,
                state["store_entries"]))
        detector = mechanisms.fault_detector
        if detector is not None:
            for group_id, state in detector.snapshot().items():
                labels = {"node": node_id, "group": group_id}
                detector_lines.append(_series(
                    "eternal_fault_detector_strikes", labels,
                    state["strikes"]))
                detector_lines.append(_series(
                    "eternal_fault_detector_reported", labels,
                    state["reported"]))

    lines.append("# TYPE eternal_replica_operational gauge")
    lines.extend(replica_lines)

    # -- groups ------------------------------------------------------------
    lines.append("# TYPE eternal_group_members gauge")
    for group_id in sorted(group_ids):
        info = group_ids[group_id]
        labels = {"group": group_id}
        lines.append(_series("eternal_group_members", labels,
                             len(info.member_nodes)))
        lines.append(_series("eternal_group_operational_members", labels,
                             len(info.operational_nodes())))
        lines.append(_series(
            "eternal_group_style",
            dict(labels, style=info.style.value), 1))
        if info.primary_node is not None:
            lines.append(_series(
                "eternal_group_primary",
                dict(labels, node=info.primary_node), 1))

    # -- rings (sharded deployments) ---------------------------------------
    # Each stack of a sharded facade belongs to a ring-scoped sub-system
    # (``stack.system.ring_name``); single-ring systems have no ring names
    # and skip this section entirely.
    ring_systems: Dict[str, Any] = {}
    for stack in system.stacks.values():
        ring = getattr(stack.system, "ring_name", "")
        if ring:
            ring_systems.setdefault(ring, stack.system)
    if ring_systems:
        lines.append("# TYPE eternal_ring_nodes gauge")
        for ring in sorted(ring_systems):
            sub = ring_systems[ring]
            labels = {"ring": ring}
            lines.append(_series("eternal_ring_nodes", labels,
                                 len(sub.stacks)))
            lines.append(_series(
                "eternal_ring_nodes_alive", labels,
                sum(1 for s in sub.stacks.values() if s.process.alive)))
            lines.append(_series("eternal_ring_formed", labels,
                                 1 if sub.ring_formed() else 0))
            ring_groups: set = set()
            operational = 0
            for s in sub.stacks.values():
                if not s.process.alive or s.mechanisms is None:
                    continue
                ring_groups.update(s.mechanisms.groups)
                operational += sum(
                    1 for b in s.mechanisms.bindings.values()
                    if b.operational)
            lines.append(_series("eternal_ring_groups", labels,
                                 len(ring_groups)))
            lines.append(_series("eternal_ring_operational_replicas",
                                 labels, operational))
        bridge = getattr(system, "bridge", None)
        if bridge is not None:
            lines.append(_series("eternal_gateway_forwarded_total", {},
                                 bridge.forwarded))
            lines.append(_series("eternal_gateway_duplicates_total", {},
                                 bridge.duplicates))

    if bulk_lines:
        lines.append("# TYPE eternal_bulk_sessions_active gauge")
        lines.extend(bulk_lines)

    # -- durable stores ----------------------------------------------------
    store_lines: List[str] = []
    for node_id in sorted(getattr(system, "stores", None) or {}):
        store = system.stores[node_id]
        for group_id, stats in store.snapshot().items():
            labels = {"node": node_id, "group": group_id}
            for stat in sorted(stats):
                store_lines.append(_series(
                    _metric_name(stat, "eternal_store_"), labels,
                    stats[stat]))
    if store_lines:
        lines.append("# TYPE eternal_store_bytes gauge")
        lines.extend(store_lines)

    if detector_lines:
        lines.append("# TYPE eternal_fault_detector_strikes gauge")
        lines.extend(detector_lines)

    # -- audit -------------------------------------------------------------
    if auditor is not None:
        lines.append("# TYPE eternal_audit_ok gauge")
        lines.append(_series("eternal_audit_ok", {},
                             1 if auditor.ok else 0))
        lines.append(_series("eternal_audit_records_scanned", {},
                             auditor.records_scanned))
        by_invariant = auditor.findings_by_invariant()
        for invariant in sorted(by_invariant):
            lines.append(_series(
                "eternal_audit_findings_total",
                {"invariant": invariant}, len(by_invariant[invariant])))
        if not by_invariant:
            lines.append(_series("eternal_audit_findings_total", {}, 0))

    # -- the metrics registry ---------------------------------------------
    metrics = getattr(system, "metrics", None)
    if metrics is not None:
        lines.append("# metrics registry (repro_* namespace)")
        for name, labels, metric in metrics.find():
            flat = _metric_name(name, "repro_")
            if metric.kind == "histogram":
                for q in (0.5, 0.95, 0.99):
                    lines.append(_series(
                        flat, dict(labels, quantile=f"{q:g}"),
                        metric.quantile(q)))
                lines.append(_series(f"{flat}_count", labels, metric.count))
                lines.append(_series(f"{flat}_sum", labels, metric.total))
            else:
                lines.append(_series(flat, labels, metric.value))

    return "\n".join(lines) + "\n"
