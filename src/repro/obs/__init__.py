"""Observability: metrics, causal span tracing, and trace export.

The subsystem is layered on :class:`repro.runtime.trace.Tracer` — spans are
ordinary trace records in the ``span`` category, so one stream feeds every
consumer:

* :mod:`repro.obs.spans` — emit ``span_start``/``span_end`` pairs with
  parent ids (:class:`SpanEmitter`) and reconstruct the span tree from a
  trace (:class:`SpanTracker`), including orphan/unfinished detection;
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and streaming
  log-bucketed histograms (p50/p95/p99) keyed by name + labels; bound to a
  tracer it turns every completed span into a latency observation;
* :mod:`repro.obs.exporters` — JSONL and Chrome ``trace_event`` export, so
  a recovery can be opened in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.report` — per-phase recovery breakdowns (§5.1 steps
  i–vi) extracted from the span tree;
* :mod:`repro.obs.audit` — the online consistency auditor: verifies
  state-digest agreement, delivery-order agreement, duplicate
  suppression, and recovery-window discipline while the simulation runs;
* :mod:`repro.obs.health` — Prometheus-style text exposition of live
  system health (membership, roles, queues, suspicion, audit status).
"""

from repro.obs.audit import (
    AuditFinding,
    AuditViolation,
    ConsistencyAuditor,
    state_digest,
)
from repro.obs.exporters import export_chrome_trace, export_jsonl
from repro.obs.health import parse_exposition, render_health
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.profiling import (
    InSituProbe,
    PhaseCost,
    ProfileSession,
    ProfilingConfig,
    SpanResourceProfiler,
    StackSampler,
    render_cost_table,
    render_folded,
)
from repro.obs.report import (
    RecoveryPhaseBreakdown,
    recovery_phase_report,
    render_phase_table,
)
from repro.obs.spans import Span, SpanEmitter, SpanTracker

__all__ = [
    "AuditFinding",
    "AuditViolation",
    "ConsistencyAuditor",
    "CounterMetric",
    "GaugeMetric",
    "InSituProbe",
    "MetricsRegistry",
    "PhaseCost",
    "ProfileSession",
    "ProfilingConfig",
    "RecoveryPhaseBreakdown",
    "Span",
    "SpanEmitter",
    "SpanResourceProfiler",
    "SpanTracker",
    "StackSampler",
    "StreamingHistogram",
    "export_chrome_trace",
    "export_jsonl",
    "parse_exposition",
    "recovery_phase_report",
    "render_cost_table",
    "render_folded",
    "render_phase_table",
    "state_digest",
    "render_health",
]
