"""Online consistency auditing over the trace stream.

The paper's guarantee is *strong replica consistency* — but the test suite
can only assert it after the fact, by comparing servant states once a
scenario has quiesced.  :class:`ConsistencyAuditor` instead subscribes to
the live trace stream (the same stream spans, metrics, and exporters ride)
and continuously verifies the invariants the §5.1 protocol is supposed to
maintain *while the simulation runs*:

* **state-digest** — every responder to one recovery ``get_state()``
  captures its application state independently; the digests emitted at the
  capture/``set_state``/checkpoint boundaries must agree for one transfer
  within one group.  A disagreement is a replica that diverged *before*
  the fault, which offline convergence checks can never see (the divergent
  state is simply transferred onward).
* **order-digest** — every Totem member maintains a rolling hash over the
  sequence of delivered message ids and publishes it at fixed delivery
  intervals; members of the same ring configuration must publish identical
  hashes at identical positions (total-order agreement, checked at
  runtime rather than assumed).
* **duplicate-delivery** — the same Eternal operation identifier must
  never be handed to a servant twice within one replica incarnation (§2.1
  at-most-once); the auditor shadows the duplicate filters with an
  independent one fed from ``replication.delivered`` records.
* **recovery-window** — between the ``get_state()`` synchronization point
  and reinstatement, a recovering replica must execute no normal
  invocation (§5.1 step (vi) enqueues them), and a fabricated
  ``set_state()`` may only be applied inside such a window (or as a warm
  backup's announced checkpoint application) — i.e. inside a quiesced
  window.
* **span-structure** — recovery spans must nest correctly: no completed
  child outside its parent's interval and no ``span_end`` without a start.

Violations surface as structured :class:`AuditFinding` records carrying
the offending group/node/span/message identifiers, bump
``audit.findings`` counters in the bound metrics registry, and can be
promoted to hard test failures with the ``strict_audit`` pytest fixture
(see ``tests/conftest.py``) or :meth:`ConsistencyAuditor.finish` with
``raise_on_findings=True``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.identifiers import ConnectionKey, DuplicateFilter, OpKind, OperationId
from repro.obs.spans import SPAN_CATEGORY, SpanTracker
from repro.runtime.trace import TraceRecord, Tracer

AUDIT_CATEGORY = "audit"

# Invariant identifiers (the ``invariant`` field of findings and the
# ``invariant`` label of the ``audit.findings`` counter).
STATE_DIGEST = "state-digest"
ORDER_DIGEST = "order-digest"
DUPLICATE_DELIVERY = "duplicate-delivery"
RECOVERY_WINDOW = "recovery-window"
SET_STATE_WINDOW = "set-state-window"
SPAN_STRUCTURE = "span-structure"
LEASE_WINDOW = "lease-window"

INVARIANTS = (STATE_DIGEST, ORDER_DIGEST, DUPLICATE_DELIVERY,
              RECOVERY_WINDOW, SET_STATE_WINDOW, SPAN_STRUCTURE,
              LEASE_WINDOW)


def state_digest(*blobs: bytes) -> str:
    """Short, stable content digest used for cross-replica comparison."""
    h = hashlib.blake2b(digest_size=8)
    for blob in blobs:
        h.update(len(blob).to_bytes(8, "big"))
        h.update(blob)
    return h.hexdigest()


class AuditViolation(AssertionError):
    """Raised by :meth:`ConsistencyAuditor.finish` in hard-fail mode."""


@dataclass(frozen=True)
class AuditFinding:
    """One detected invariant violation.

    ``ring`` names the shard whose stream produced the evidence (empty
    string for a single-ring deployment): every shadow structure the
    auditor keeps is keyed by it, so a violation in one ring can neither
    poison nor be masked by another ring's state.
    """

    invariant: str
    time: float
    detail: str
    group: Optional[str] = None
    node: Optional[str] = None
    span_id: Optional[str] = None
    message_id: Optional[str] = None
    ring: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - display helper
        where = " ".join(f"{k}={v}" for k, v in (
            ("ring", self.ring or None), ("group", self.group),
            ("node", self.node), ("span", self.span_id),
            ("message", self.message_id),
        ) if v is not None)
        return f"[{self.time:.6f}] {self.invariant}: {self.detail} ({where})"


@dataclass
class _RecoveryWindow:
    """An open quiesced window on one (node, group)."""

    transfer: str
    opened_at: float
    kind: str                     # "recovery" | "failover"
    set_state_applied: bool = False


class ConsistencyAuditor:
    """Streaming invariant checker over trace records.

    Feed it live (``auditor.bind(tracer)`` or
    ``EternalSystem.attach_auditor()``) or after the fact
    (:meth:`from_records`).  Call :meth:`finish` once the scenario is done
    to run the end-of-stream checks (span structure) and obtain the final
    findings list.
    """

    def __init__(self, *, metrics=None) -> None:
        self.metrics = metrics
        self.findings: List[AuditFinding] = []
        self.records_scanned = 0
        self._finished = False
        # Every shadow structure below is keyed by the ring (shard) label
        # first — "" in single-ring deployments — so invariant evidence
        # from one ring can never be compared against another's.
        # state-digest: (ring, group, transfer) -> node -> digest
        self._digests: Dict[Tuple[str, str, str], Dict[str, str]] = {}
        # order-digest: (ring, cfg, base, seq) -> (node, digest)
        self._order: Dict[Tuple[str, str, int, int], Tuple[str, str]] = {}
        self._order_checked = 0
        # duplicate-delivery: one shadow filter per replica incarnation
        self._delivered: Dict[Tuple[str, str, str], DuplicateFilter] = {}
        # recovery windows: (ring, node, group) -> open window
        self._windows: Dict[Tuple[str, str, str], _RecoveryWindow] = {}
        # warm backups: announced checkpoint applications pending on
        # (ring, node, group); capped — a stale grant must not mask real
        # violations forever.
        self._checkpoint_grants: Dict[Tuple[str, str, str], int] = {}
        # lease-window: per-node installed ring (None while in GATHER),
        # plus every ring membership ever installed by anyone in the same
        # shard — the evidence for judging lease.read_served events.
        self._node_ring: Dict[Tuple[str, str], Optional[int]] = {}
        self._ring_members: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        self._spans = SpanTracker()
        #: Called with each new AuditFinding the moment it is flagged
        #: (the telemetry plane hooks this to dump the flight recorder).
        self.on_finding: Optional[Callable[[AuditFinding], None]] = None
        # Span ids already open when we subscribed mid-stream: their ends
        # are legitimate, not orphans.
        self._preexisting_spans: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, tracer: Tracer) -> "ConsistencyAuditor":
        """Subscribe to a tracer's live record stream.

        Spans already open at this moment (the tracer tracks them) will
        close without us having seen their start — remember them so the
        structural check does not flag their ends as orphans.
        """
        if tracer.open_spans is not None:
            self._preexisting_spans = frozenset(tracer.open_spans)
        tracer.subscribe(self.observe)
        return self

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord],
                     *, metrics=None) -> "ConsistencyAuditor":
        """Replay a retained trace through a fresh auditor (not finished)."""
        auditor = cls(metrics=metrics)
        for record in records:
            auditor.observe(record)
        return auditor

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.findings

    def findings_by_invariant(self) -> Dict[str, List[AuditFinding]]:
        out: Dict[str, List[AuditFinding]] = {}
        for finding in self.findings:
            out.setdefault(finding.invariant, []).append(finding)
        return out

    def _flag(self, invariant: str, time: float, detail: str,
              **ids: Optional[str]) -> None:
        finding = AuditFinding(invariant=invariant, time=time,
                               detail=detail, **ids)
        self.findings.append(finding)
        if self.metrics is not None:
            self.metrics.counter("audit.findings",
                                 invariant=invariant).inc()
        if self.on_finding is not None:
            self.on_finding(finding)

    def summary(self) -> str:
        """One-paragraph human summary (examples, demo, CLI)."""
        status = "OK" if self.ok else "VIOLATED"
        lines = [f"audit: {status} — {self.records_scanned} records, "
                 f"{len(self._digests)} state transfers, "
                 f"{self._order_checked} order checkpoints, "
                 f"{len(self.findings)} finding(s)"]
        for finding in self.findings:
            lines.append(f"  {finding}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Streaming checks
    # ------------------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Consume one trace record (subscriber entry point)."""
        self.records_scanned += 1
        category = record.category
        if category == SPAN_CATEGORY:
            self._spans.feed(record)
        elif category == AUDIT_CATEGORY:
            if record.event == "state_digest":
                self._on_state_digest(record)
            elif record.event == "order_digest":
                self._on_order_digest(record)
        elif category == "replication":
            if record.event == "delivered":
                self._on_delivered(record)
            elif record.event in ("binding_created", "binding_destroyed"):
                self._on_binding_reset(record)
        elif category == "recovery":
            self._on_recovery_event(record)
        elif category == "replica":
            if record.event == "executed":
                self._on_executed(record)
            elif record.event == "set_state":
                self._on_set_state(record)
        elif category == "totem":
            if record.event == "install":
                ring = self._ring_of(record)
                node = record.fields.get("node", "")
                ring_id = int(record.fields.get("ring_id", 0))
                self._node_ring[(ring, node)] = ring_id
                self._ring_members[(ring, ring_id)] = tuple(
                    record.fields.get("members", ()))
            elif record.event == "gather":
                self._node_ring[
                    (self._ring_of(record), record.fields.get("node", ""))
                ] = None
        elif category == "lease":
            if record.event == "read_served":
                self._on_read_served(record)

    @staticmethod
    def _ring_of(record: TraceRecord) -> str:
        """The shard label stamped on the record ("" when single-ring)."""
        return str(record.fields.get("ring", ""))

    # -- state digests -----------------------------------------------------

    def _on_state_digest(self, record: TraceRecord) -> None:
        fields = record.fields
        ring = self._ring_of(record)
        group = fields.get("group", "")
        transfer = fields.get("transfer", "")
        node = fields.get("node", "")
        digest = fields.get("digest", "")
        per_node = self._digests.setdefault((ring, group, transfer), {})
        disagreeing = sorted(
            f"{other}={other_digest}"
            for other, other_digest in per_node.items()
            if other_digest != digest
        )
        per_node[node] = digest
        if disagreeing:
            self._flag(
                STATE_DIGEST, record.time,
                f"state digest {digest} from {node} "
                f"({fields.get('role', '?')}) disagrees with "
                f"{', '.join(disagreeing)}",
                group=group, node=node, span_id=transfer, ring=ring,
            )

    # -- delivery-order digests --------------------------------------------

    def _on_order_digest(self, record: TraceRecord) -> None:
        fields = record.fields
        ring = self._ring_of(record)
        key = (ring, str(fields.get("cfg", "")), int(fields.get("base", 0)),
               int(fields.get("seq", 0)))
        node = fields.get("node", "")
        digest = str(fields.get("digest", ""))
        self._order_checked += 1
        reference = self._order.get(key)
        if reference is None:
            self._order[key] = (node, digest)
            return
        ref_node, ref_digest = reference
        if digest != ref_digest:
            self._flag(
                ORDER_DIGEST, record.time,
                f"delivery-order hash diverged at config {key[1]} "
                f"seq {key[3]}: {node}={digest} vs {ref_node}={ref_digest}",
                node=node, message_id=f"seq:{key[3]}", ring=ring,
            )

    # -- duplicate suppression ---------------------------------------------

    def _on_delivered(self, record: TraceRecord) -> None:
        fields = record.fields
        ring = self._ring_of(record)
        node = fields.get("node", "")
        group = fields.get("group", "")
        op = OperationId(
            ConnectionKey.from_str(fields.get("conn", "->")),
            int(fields.get("request_id", -1)),
            OpKind[fields.get("kind", "REQUEST")],
        )
        shadow = self._delivered.setdefault((ring, node, group),
                                            DuplicateFilter())
        if shadow.seen_before(op):
            self._flag(
                DUPLICATE_DELIVERY, record.time,
                f"operation {op.kind.name} {fields.get('conn')}#"
                f"{op.request_id} delivered twice to the servant",
                group=group, node=node, ring=ring,
                message_id=f"{fields.get('conn')}#{op.request_id}"
                           f"/{op.kind.name}",
            )

    def _on_binding_reset(self, record: TraceRecord) -> None:
        """A replica incarnation began or ended: restart its shadows."""
        key = (self._ring_of(record), record.fields.get("node", ""),
               record.fields.get("group", ""))
        self._delivered.pop(key, None)
        self._windows.pop(key, None)
        self._checkpoint_grants.pop(key, None)

    # -- quiesced windows ---------------------------------------------------

    def _on_recovery_event(self, record: TraceRecord) -> None:
        fields = record.fields
        key = (self._ring_of(record), fields.get("node", ""),
               fields.get("group", ""))
        if record.event == "sync_point":
            self._windows[key] = _RecoveryWindow(
                transfer=fields.get("transfer", ""),
                opened_at=record.time, kind="recovery",
            )
        elif record.event == "failover_begin":
            self._windows[key] = _RecoveryWindow(
                transfer="failover", opened_at=record.time, kind="failover",
            )
        elif record.event == "cold_seed_restore":
            # A cold-boot seed restores itself from its durable journal:
            # set_state and the log replay's executions are the recovery
            # mechanism itself, inside a window nobody else is alive to
            # quiesce (new deliveries are enqueued until it closes).
            self._windows[key] = _RecoveryWindow(
                transfer=fields.get("transfer", ""),
                opened_at=record.time, kind="coldboot",
            )
        elif record.event == "recovered":
            self._windows.pop(key, None)
        elif record.event == "checkpoint_logged":
            grants = self._checkpoint_grants.get(key, 0)
            self._checkpoint_grants[key] = min(grants + 1, 2)

    def _on_executed(self, record: TraceRecord) -> None:
        fields = record.fields
        key = (self._ring_of(record), fields.get("node", ""),
               fields.get("group", ""))
        window = self._windows.get(key)
        if window is not None and window.kind != "coldboot":
            self._flag(
                RECOVERY_WINDOW, record.time,
                f"operation {fields.get('operation', '?')!r} executed "
                f"inside the {window.kind} window opened at "
                f"{window.opened_at:.6f} (messages must be enqueued "
                f"until state assignment completes)",
                group=key[2], node=key[1], span_id=window.transfer,
                ring=key[0],
            )

    def _on_set_state(self, record: TraceRecord) -> None:
        fields = record.fields
        key = (self._ring_of(record), fields.get("node", ""),
               fields.get("group", ""))
        window = self._windows.get(key)
        if window is not None:
            window.set_state_applied = True
            return
        grants = self._checkpoint_grants.get(key, 0)
        if grants > 0:
            self._checkpoint_grants[key] = grants - 1
            return
        self._flag(
            SET_STATE_WINDOW, record.time,
            "set_state applied outside a quiesced window (no recovery "
            "sync point, no failover, no announced checkpoint)",
            group=key[2], node=key[1], ring=key[0],
        )

    # -- lease windows -----------------------------------------------------

    def _on_read_served(self, record: TraceRecord) -> None:
        """A fast read may only be served *inside* the serving node's
        installed ring: the node must hold an installed membership, it
        must match the ring the lease claims, and no node may have
        installed a newer ring that excludes the server (Totem's timeout
        ordering guarantees the stale leaseholder notices its revocation
        first — a serve after such an install means that ordering was
        violated)."""
        fields = record.fields
        ring = self._ring_of(record)
        node = fields.get("node", "")
        served_ring = int(fields.get("ring_id", 0))
        group = fields.get("group")
        if (ring, node) in self._node_ring:
            installed = self._node_ring[(ring, node)]
            if installed is None:
                self._flag(
                    LEASE_WINDOW, record.time,
                    "fast read served while the node was in GATHER "
                    "(no installed ring — lease revoked)",
                    group=group, node=node, ring=ring,
                )
                return
            if installed != served_ring:
                self._flag(
                    LEASE_WINDOW, record.time,
                    f"fast read served under ring {served_ring} but the "
                    f"node's installed ring is {installed}",
                    group=group, node=node, ring=ring,
                )
                return
            members = self._ring_members.get((ring, installed), ())
            if members and node not in members:
                self._flag(
                    LEASE_WINDOW, record.time,
                    f"fast read served by a node outside its own ring "
                    f"{installed} membership {members}",
                    group=group, node=node, ring=ring,
                )
                return
        # Cross-node ordering: a newer installed ring that excludes the
        # server means its lease was already revoked when the new ring
        # became operational.  (Judged even when the server's own install
        # predates our subscription.)  Strictly scoped to the same shard:
        # ring ids of independent shards share a number space but nothing
        # else, so only installs from this shard's stream are evidence.
        for (shard, ring_id), members in self._ring_members.items():
            if shard != ring:
                continue
            if ring_id > served_ring and members and node not in members:
                self._flag(
                    LEASE_WINDOW, record.time,
                    f"fast read served under ring {served_ring} after "
                    f"ring {ring_id} (which excludes the server) was "
                    f"installed",
                    group=group, node=node, ring=ring,
                )
                return

    # ------------------------------------------------------------------
    # End-of-stream checks
    # ------------------------------------------------------------------

    def finish(self, *, raise_on_findings: bool = False
               ) -> List[AuditFinding]:
        """Run the structural end-of-stream checks and return all findings.

        Idempotent.  Unfinished spans are *not* violations (a node killed
        mid-recovery legitimately abandons its spans); malformed structure
        — ends without starts, children outside their parent's interval —
        is.
        """
        if not self._finished:
            self._finished = True
            for record in self._spans.orphan_ends:
                span_id = str(record.fields.get("span"))
                if span_id in self._preexisting_spans:
                    continue
                self._flag(
                    SPAN_STRUCTURE, record.time,
                    "span_end without a matching span_start",
                    span_id=span_id,
                )
            for span in self._spans.nesting_violations():
                self._flag(
                    SPAN_STRUCTURE, span.end if span.end is not None
                    else span.start,
                    f"span {span.name} [{span.start:.6f}, {span.end:.6f}] "
                    f"escapes its parent {span.parent_id}",
                    group=span.attrs.get("group"),
                    node=span.attrs.get("node"),
                    span_id=span.span_id,
                )
            if self.metrics is not None:
                self.metrics.gauge("audit.ok").set(1.0 if self.ok else 0.0)
        if raise_on_findings and self.findings:
            raise AuditViolation(self.summary())
        return self.findings
