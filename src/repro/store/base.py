"""Pluggable durable checkpoint & message-log store.

:class:`DurableStore` is the per-node persistence backend the
Replication/Recovery Mechanisms write through.  It hands out one
:class:`GroupStore` per hosted object group, which journals

* every **checkpoint** the node commits (paper §3.3's "checkpoint
  overwrites its predecessor" semantics, but with the superseded records
  kept until compaction so the on-disk log stays append-only), and
* every **totally-ordered message** delivered to the group past the last
  durable checkpoint,

so a restarting node can rebuild its :class:`~repro.core.msglog.MessageLog`
from local disk first and fetch only the digest-negotiated tail from live
peers (the Oswald-style recovery ladder: manifest → snapshot → catch-up).

All journal *semantics* — delta-vs-full checkpoint selection, the
delta-chain bound, position-keyed dedup on load, compaction on every full
checkpoint — live here in :class:`GroupStore`, shared by every backend.
Backends implement only the raw record transport
(:class:`GroupBackend`): the segmented on-disk journal
(:mod:`repro.store.journal`) and the in-memory equivalent for simnet
determinism (:mod:`repro.store.memory`).

Positions are the node-local delivery indices of the group's message
stream.  They stay monotonic across process restarts because the
recovery layer restores ``delivery_position`` from the store before the
binding delivers anything new — the invariant that lets a single
position-keyed prune rule cover both live operation and post-crash
replay.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.msglog import CheckpointRecord
from repro.core.statedelta import (
    apply_delta,
    compute_delta,
    decode_delta,
    encode_delta,
)
from repro.errors import StateTransferError, StoreCorruptError
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.store.records import (
    CheckpointPayload,
    MessagePayload,
    encode_checkpoint,
    encode_message,
)

#: Default bound on the delta-checkpoint chain: every Nth checkpoint is
#: written in full (and triggers compaction), so replay cost and journal
#: growth stay proportional to recent work, not uptime.
DEFAULT_MAX_DELTA_CHAIN = 8

FSYNC_ALWAYS = "always"
FSYNC_CHECKPOINT = "checkpoint"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_CHECKPOINT, FSYNC_NEVER)


@dataclass(frozen=True)
class StoredState:
    """What a group's journal reconstructs to on open."""

    checkpoint: Optional[CheckpointRecord]
    messages: Tuple[Tuple[int, bytes], ...]   # (position, envelope bytes)

    @property
    def last_position(self) -> int:
        """Highest local log position the durable state covers (0 when the
        journal is empty)."""
        last = self.checkpoint.position if self.checkpoint else 0
        if self.messages:
            last = max(last, self.messages[-1][0])
        return max(0, last)

    @property
    def empty(self) -> bool:
        return self.checkpoint is None and not self.messages


class GroupBackend(ABC):
    """Raw record transport for one group's journal."""

    def __init__(self, group_id: str) -> None:
        self.group_id = group_id
        self.tracer: Tracer = NULL_TRACER
        self.node_id = ""

    @abstractmethod
    def load_payloads(self) -> List:
        """All decoded record payloads, in append order.  Truncates a torn
        tail silently; raises :class:`StoreCorruptError` on anything else."""

    @abstractmethod
    def append(self, payload: bytes, *, sync: bool) -> None:
        """Append one framed record; ``sync`` forces it to stable storage."""

    @abstractmethod
    def rewrite(self, payloads: List[bytes]) -> None:
        """Atomically replace the whole journal with ``payloads``
        (compaction).  Must be crash-safe: a crash at any point leaves
        either the old or the new journal loadable."""

    @abstractmethod
    def wipe(self) -> None:
        """Discard the journal entirely (fresh deployment / quarantine)."""

    @abstractmethod
    def close(self) -> None:
        """Release file handles (crash simulation / teardown)."""

    @abstractmethod
    def stats(self) -> Dict[str, float]:
        """Backend gauges: at least ``bytes`` and ``segments``."""


class GroupStore:
    """One group's durable journal: semantics over a :class:`GroupBackend`."""

    def __init__(self, group_id: str, backend: GroupBackend, *,
                 fsync: str = FSYNC_CHECKPOINT,
                 max_delta_chain: int = DEFAULT_MAX_DELTA_CHAIN,
                 page_size: int = 1024,
                 tracer: Tracer = NULL_TRACER,
                 node_id: str = "") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}")
        if max_delta_chain < 1:
            raise ValueError("max_delta_chain must be positive")
        self.group_id = group_id
        self.backend = backend
        self.fsync = fsync
        self.max_delta_chain = max_delta_chain
        self.page_size = page_size
        self.tracer = tracer
        self.node_id = node_id
        backend.tracer = tracer
        backend.node_id = node_id
        self._loaded: Optional[StoredState] = None
        self._base_app_state: Optional[bytes] = None   # last durable ckpt app
        self._chain_length = 0
        self._pending: Dict[int, bytes] = {}           # messages past ckpt
        self._last_position = 0
        self.checkpoints_written = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Open / replay
    # ------------------------------------------------------------------

    def load(self) -> StoredState:
        """Reconstruct the durable state (idempotent; cached after the
        first call until :meth:`reset`).

        Replays the journal in append order: the newest checkpoint — with
        any delta chain applied — wins, superseding all messages at or
        before its position; later messages are deduplicated by position
        (duplicates are the benign residue of an interrupted compaction).
        """
        if self._loaded is not None:
            return self._loaded
        payloads = self.backend.load_payloads()
        checkpoint: Optional[CheckpointRecord] = None
        chain = 0
        messages: Dict[int, bytes] = {}
        for payload in payloads:
            if isinstance(payload, CheckpointPayload):
                checkpoint = self._rebuild_checkpoint(checkpoint, payload)
                chain = 0 if not payload.delta else chain + 1
                messages = {p: raw for p, raw in messages.items()
                            if p > payload.position}
            elif isinstance(payload, MessagePayload):
                messages[payload.position] = payload.envelope_bytes
        ordered = tuple(sorted(messages.items()))
        self._loaded = StoredState(checkpoint=checkpoint, messages=ordered)
        self._base_app_state = checkpoint.app_state if checkpoint else None
        self._chain_length = chain
        self._pending = dict(messages)
        self._last_position = self._loaded.last_position
        self.tracer.emit("store", "loaded", node=self.node_id,
                         group=self.group_id,
                         has_checkpoint=checkpoint is not None,
                         messages=len(ordered),
                         last_position=self._last_position)
        return self._loaded

    def _rebuild_checkpoint(self, previous: Optional[CheckpointRecord],
                            payload: CheckpointPayload) -> CheckpointRecord:
        if not payload.delta:
            app_state = payload.app_state
        else:
            if previous is None:
                raise StoreCorruptError(
                    f"delta checkpoint {payload.transfer_id!r} has no base "
                    f"in journal order"
                )
            try:
                delta = decode_delta(payload.app_state)
                app_state = apply_delta(previous.app_state, delta)
            except StateTransferError as exc:
                raise StoreCorruptError(
                    f"delta checkpoint {payload.transfer_id!r} failed to "
                    f"apply: {exc}"
                ) from exc
        return CheckpointRecord(payload.transfer_id, payload.position,
                                app_state, payload.orb_state,
                                payload.infra_state)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append_message(self, position: int, envelope_bytes: bytes) -> None:
        """Journal one delivered message (write-ahead of execution)."""
        self._ensure_loaded()
        if position in self._pending:
            return                      # replayed drain — already durable
        payload = encode_message(position, envelope_bytes)
        self.backend.append(payload, sync=self.fsync == FSYNC_ALWAYS)
        self._pending[position] = envelope_bytes
        self._last_position = max(self._last_position, position)
        self.tracer.add("store.bytes.appended", len(payload))

    def commit_checkpoint(self, record: CheckpointRecord) -> None:
        """Journal a committed checkpoint.

        Stored as a page-level delta against the previous durable
        checkpoint when the chain bound allows and the delta actually
        saves bytes; every chain reset writes the full snapshot and
        compacts the journal down to it plus the still-live messages.
        """
        self._ensure_loaded()
        delta_body = None
        if (self._base_app_state is not None
                and self._chain_length < self.max_delta_chain - 1):
            delta = compute_delta(self._base_app_state, record.app_state,
                                  self.page_size)
            encoded = encode_delta(delta)
            if len(encoded) < len(record.app_state):
                delta_body = encoded
        sync = self.fsync in (FSYNC_ALWAYS, FSYNC_CHECKPOINT)
        if delta_body is not None:
            payload = encode_checkpoint(
                record.transfer_id, record.position, delta_body,
                record.orb_state, record.infra_state, delta=True,
            )
            self.backend.append(payload, sync=sync)
            self._chain_length += 1
            self.tracer.emit("store", "checkpoint_delta", node=self.node_id,
                             group=self.group_id,
                             wire_bytes=len(delta_body),
                             full_bytes=len(record.app_state))
        else:
            self.tracer.emit("store", "checkpoint_full", node=self.node_id,
                             group=self.group_id,
                             full_bytes=len(record.app_state))
        self._base_app_state = record.app_state
        self._pending = {p: raw for p, raw in self._pending.items()
                         if p > record.position}
        self._last_position = max(self._last_position, record.position)
        self.checkpoints_written += 1
        self._loaded = StoredState(
            checkpoint=record,
            messages=tuple(sorted(self._pending.items())),
        )
        if delta_body is None:
            # Chain reset: the full snapshot supersedes everything before
            # it, so rewrite the journal down to the live set.
            self._chain_length = 0
            self._compact(record)

    def _compact(self, record: CheckpointRecord) -> None:
        payloads = [encode_checkpoint(
            record.transfer_id, record.position, record.app_state,
            record.orb_state, record.infra_state, delta=False,
        )]
        for position, raw in sorted(self._pending.items()):
            payloads.append(encode_message(position, raw))
        self.backend.rewrite(payloads)
        self.compactions += 1
        self.tracer.emit("store", "compacted", node=self.node_id,
                         group=self.group_id, records=len(payloads))

    def compact(self) -> bool:
        """Force a full rewrite now (CLI maintenance); returns False when
        there is no durable checkpoint to compact down to."""
        state = self.load()
        if state.checkpoint is None:
            return False
        self._chain_length = 0
        self._base_app_state = state.checkpoint.app_state
        self._compact(state.checkpoint)
        return True

    def reset(self) -> None:
        """Discard the journal (fresh deployment, or quarantine after
        corruption) and start empty."""
        self.backend.wipe()
        self._loaded = StoredState(checkpoint=None, messages=())
        self._base_app_state = None
        self._chain_length = 0
        self._pending = {}
        self._last_position = 0

    def _ensure_loaded(self) -> None:
        if self._loaded is None:
            try:
                self.load()
            except StoreCorruptError:
                # A writer that never consulted the journal starts fresh;
                # the recovery layer surfaces corruption on its own load.
                self.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_messages(self) -> int:
        """Messages journaled past the last durable checkpoint (the
        replay cost of a crash right now)."""
        return len(self._pending)

    @property
    def last_position(self) -> int:
        return self._last_position

    def close(self) -> None:
        self.backend.close()
        self._loaded = None              # reopen re-reads the backend

    def stats(self) -> Dict[str, float]:
        stats = dict(self.backend.stats())
        stats["pending_messages"] = self.pending_messages
        stats["checkpoints_written"] = self.checkpoints_written
        stats["compactions"] = self.compactions
        return stats


class DurableStore(ABC):
    """Per-node store: one journal per hosted object group."""

    def __init__(self) -> None:
        self.tracer: Tracer = NULL_TRACER
        self.node_id = ""
        self._groups: Dict[str, GroupStore] = {}

    def bind_tracer(self, tracer: Tracer, node_id: str) -> None:
        """Attach the system's tracer (called once by the system core when
        the store is adopted)."""
        self.tracer = tracer
        self.node_id = node_id
        for group in self._groups.values():
            group.tracer = tracer
            group.node_id = node_id
            group.backend.tracer = tracer
            group.backend.node_id = node_id

    @abstractmethod
    def _make_backend(self, group_id: str) -> GroupBackend:
        """Create the backend for one group's journal."""

    def group(self, group_id: str, *, page_size: int = 1024) -> GroupStore:
        """The journal handle for ``group_id`` (created on first use)."""
        store = self._groups.get(group_id)
        if store is None:
            store = GroupStore(
                group_id, self._make_backend(group_id),
                fsync=self.fsync_policy(),
                max_delta_chain=self.max_delta_chain(),
                page_size=page_size,
                tracer=self.tracer, node_id=self.node_id,
            )
            self._groups[group_id] = store
        return store

    def fsync_policy(self) -> str:
        return FSYNC_CHECKPOINT

    def max_delta_chain(self) -> int:
        return DEFAULT_MAX_DELTA_CHAIN

    def reset_group(self, group_id: str) -> None:
        """Wipe a group's journal (a ``create`` supersedes any history a
        previous deployment of the same group id left behind)."""
        self.group(group_id).reset()

    def handle_crash(self) -> None:
        """The hosting process crashed: drop handles without flushing, as
        SIGKILL would.  Whatever the backend already made durable is what
        a restart will find."""
        for group in self._groups.values():
            group.close()

    def close(self) -> None:
        for group in self._groups.values():
            group.close()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-group gauges for the health exposition."""
        return {gid: store.stats()
                for gid, store in sorted(self._groups.items())}
