"""Append-only segmented journal backend (the on-disk store).

Layout, per node root directory::

    <root>/<group>/MANIFEST          # text: "journal-manifest v1" + names
    <root>/<group>/seg-00000001.jrnl # CRC32-framed records (records.py)
    <root>/<group>/seg-00000002.jrnl # rolled at segment_max_bytes

The MANIFEST is the commit point of every multi-file operation: it is
always replaced atomically (tmp + ``os.replace``), and any ``seg-*.jrnl``
file it does not list is debris from an interrupted compaction or roll,
deleted on the next open.  Compaction therefore needs no log of its own:

1. write the survivor records into a *new* segment, fsync it;
2. atomically point the MANIFEST at the new segment alone;
3. unlink the old segments.

A crash before step 2 leaves the old journal authoritative (the new
segment is unlisted debris); after step 2 the new one is (the old
segments are debris).  There is no window in which neither loads.

The ``fsync`` policy trades durability for write latency:

* ``always`` — fsync after every record; a kill loses at most the torn
  tail of the record being written.
* ``checkpoint`` (default) — fsync only on checkpoints and compactions;
  messages past the last checkpoint ride the OS page cache and an OS
  crash may drop them (a mere process kill does not — appends are always
  flushed to the kernel).
* ``never`` — flush only; benchmarking and scratch runs.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional

from repro.errors import StoreCorruptError
from repro.store.base import (
    DEFAULT_MAX_DELTA_CHAIN,
    DurableStore,
    FSYNC_CHECKPOINT,
    FSYNC_POLICIES,
    GroupBackend,
)
from repro.store.records import FRAME_HEADER_SIZE, frame, scan_segment

MANIFEST_NAME = "MANIFEST"
MANIFEST_HEADER = "journal-manifest v1"
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".jrnl"
DEFAULT_SEGMENT_MAX_BYTES = 1 << 20


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int:
    return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


def _safe_dirname(group_id: str) -> str:
    """Map a group id onto a filesystem-safe directory name."""
    return "".join(c if c.isalnum() or c in "-_." else f"%{ord(c):02x}"
                   for c in group_id) or "%empty"


class JournalBackend(GroupBackend):
    """One group's on-disk journal."""

    def __init__(self, group_id: str, directory: str, *,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 crash_hook: Optional[Callable[[str], None]] = None) -> None:
        super().__init__(group_id)
        self.directory = directory
        self.segment_max_bytes = segment_max_bytes
        #: Test hook: called at named points inside multi-step operations;
        #: raising from it simulates a crash at that point.
        self.crash_hook = crash_hook
        self._segments: Optional[List[str]] = None   # None until opened
        self._handle = None                          # append handle, tail seg
        self._tail_bytes = 0
        self.fsync_count = 0

    # -- crash hook ----------------------------------------------------

    def _maybe_crash(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(label)

    # -- manifest ------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _read_manifest(self) -> List[str]:
        try:
            with open(self._manifest_path(), "r", encoding="ascii") as fh:
                lines = [line.strip() for line in fh if line.strip()]
        except FileNotFoundError:
            return []
        if not lines or lines[0] != MANIFEST_HEADER:
            raise StoreCorruptError(
                f"bad journal manifest header in {self.directory}"
            )
        return lines[1:]

    def _write_manifest(self, names: List[str]) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write("\n".join([MANIFEST_HEADER, *names]) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._maybe_crash("manifest.tmp")
        os.replace(tmp, self._manifest_path())
        self._maybe_crash("manifest.replaced")

    def _cleanup_debris(self, live: List[str]) -> None:
        keep = set(live)
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return
        for name in entries:
            is_segment = (name.startswith(SEGMENT_PREFIX)
                          and name.endswith(SEGMENT_SUFFIX))
            if (is_segment and name not in keep) or name.endswith(".tmp"):
                os.unlink(os.path.join(self.directory, name))

    # -- open / load ---------------------------------------------------

    def _open(self) -> List[str]:
        """Adopt the on-disk state: read the manifest, drop debris, and
        position the append handle at the tail segment."""
        if self._segments is not None:
            return self._segments
        os.makedirs(self.directory, exist_ok=True)
        names = self._read_manifest()
        for name in names:
            if not os.path.exists(os.path.join(self.directory, name)):
                raise StoreCorruptError(
                    f"manifest lists missing segment {name} "
                    f"in {self.directory}"
                )
        self._cleanup_debris(names)
        self._segments = names
        self._tail_bytes = 0
        if names:
            self._tail_bytes = os.path.getsize(
                os.path.join(self.directory, names[-1]))
        return names

    def load_payloads(self) -> List:
        self.close()                      # force a genuine re-read
        names = self._open()
        payloads: List = []
        for i, name in enumerate(names):
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                blob = fh.read()
            last = i == len(names) - 1
            decoded, truncate_to = scan_segment(blob, last_segment=last)
            payloads.extend(decoded)
            if truncate_to is not None:
                # Torn tail from a crashed write: cut the file back to the
                # last clean frame boundary before appending anything new.
                with open(path, "r+b") as fh:
                    fh.truncate(truncate_to)
                self._tail_bytes = truncate_to
                self.tracer.emit("store", "tail_truncated",
                                 node=self.node_id, group=self.group_id,
                                 dropped=len(blob) - truncate_to)
        return payloads

    # -- append path ---------------------------------------------------

    def _ensure_handle(self):
        names = self._open()
        if not names:
            names = [_segment_name(1)]
            # The segment must exist before the manifest names it.
            open(os.path.join(self.directory, names[0]), "ab").close()
            self._write_manifest(names)
            self._segments = names
            self._tail_bytes = 0
        if self._handle is None:
            self._handle = open(
                os.path.join(self.directory, names[-1]), "ab")
        return self._handle

    def _roll_segment(self) -> None:
        names = self._segments or []
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        next_name = _segment_name(_segment_index(names[-1]) + 1)
        open(os.path.join(self.directory, next_name), "ab").close()
        self._maybe_crash("roll.segment")
        self._write_manifest(names + [next_name])
        self._segments = names + [next_name]
        self._tail_bytes = 0
        self.tracer.emit("store", "segment_rolled", node=self.node_id,
                         group=self.group_id, segments=len(self._segments))

    def _fsync(self, handle) -> None:
        started = time.perf_counter()
        os.fsync(handle.fileno())
        self.fsync_count += 1
        self.tracer.emit("store", "fsync", node=self.node_id,
                         group=self.group_id,
                         seconds=time.perf_counter() - started)

    def append(self, payload: bytes, *, sync: bool) -> None:
        framed = frame(payload)
        if (self._tail_bytes > 0
                and self._tail_bytes + len(framed) > self.segment_max_bytes):
            self._roll_segment()
        handle = self._ensure_handle()
        handle.write(framed)
        handle.flush()
        self._maybe_crash("append.flushed")
        if sync:
            self._fsync(handle)
        self._tail_bytes += len(framed)

    # -- compaction / teardown -----------------------------------------

    def rewrite(self, payloads: List[bytes]) -> None:
        names = self._open()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        next_index = (_segment_index(names[-1]) + 1) if names else 1
        new_name = _segment_name(next_index)
        path = os.path.join(self.directory, new_name)
        with open(path, "wb") as fh:
            for payload in payloads:
                fh.write(frame(payload))
            fh.flush()
            os.fsync(fh.fileno())
        self._maybe_crash("rewrite.segment")
        self._write_manifest([new_name])
        for name in names:
            os.unlink(os.path.join(self.directory, name))
        self._maybe_crash("rewrite.cleanup")
        self._segments = [new_name]
        self._tail_bytes = os.path.getsize(path)

    def wipe(self) -> None:
        self.close()
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            entries = []
        for name in entries:
            os.unlink(os.path.join(self.directory, name))
        self._segments = None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segments = None             # next use re-reads the disk

    def stats(self) -> Dict[str, float]:
        total = 0.0
        count = 0
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            entries = []
        for name in sorted(entries):
            if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
                total += os.path.getsize(os.path.join(self.directory, name))
                count += 1
        return {"bytes": total, "segments": float(count),
                "fsyncs": float(self.fsync_count)}


class JournalStore(DurableStore):
    """Per-node durable store backed by :class:`JournalBackend` journals
    under ``root`` (one subdirectory per group)."""

    def __init__(self, root: str, *, fsync: str = FSYNC_CHECKPOINT,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 max_delta_chain: int = DEFAULT_MAX_DELTA_CHAIN) -> None:
        super().__init__()
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.root = root
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self._max_delta_chain = max_delta_chain
        os.makedirs(root, exist_ok=True)

    def _make_backend(self, group_id: str) -> GroupBackend:
        directory = os.path.join(self.root, _safe_dirname(group_id))
        return JournalBackend(group_id, directory,
                              segment_max_bytes=self.segment_max_bytes)

    def fsync_policy(self) -> str:
        return self.fsync

    def max_delta_chain(self) -> int:
        return self._max_delta_chain

    def group_ids(self) -> List[str]:
        """Group journals present under the root (opened or not) — used by
        the ``store`` CLI to inspect a directory cold."""
        known = set(self._groups)
        try:
            entries = os.listdir(self.root)
        except FileNotFoundError:
            entries = []
        for name in entries:
            path = os.path.join(self.root, name)
            if os.path.isdir(path):
                if name == "%empty":
                    known.add("")
                    continue
                # Reverse the %xx escaping of _safe_dirname.
                out = []
                i = 0
                while i < len(name):
                    if name[i] == "%" and i + 3 <= len(name):
                        try:
                            out.append(chr(int(name[i + 1:i + 3], 16)))
                            i += 3
                            continue
                        except ValueError:
                            pass
                    out.append(name[i])
                    i += 1
                known.add("".join(out))
        return sorted(known)
