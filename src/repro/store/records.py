"""Wire format of the durable journal (:mod:`repro.store`).

A journal is a sequence of CRC32-framed records::

    frame  := [u32 payload_length][u32 crc32(payload)][payload]
    payload:= [octet record_type][type-specific CDR body]

Three record types cover everything the recovery ladder needs:

* ``CKPT_FULL`` — a complete :class:`~repro.core.msglog.CheckpointRecord`
  (all three kinds of state);
* ``CKPT_DELTA`` — the app-state blob replaced by an encoded
  :class:`~repro.core.statedelta.StateDelta` against the *previous durable
  checkpoint* — the PR-4 page format, so delta checkpoints go to disk as
  cheaply as they go over the wire.  The ORB/POA and infrastructure blobs
  are small and always stored in full;
* ``MSG`` — one totally-ordered message (the encoded
  :class:`~repro.core.envelope.IiopEnvelope`) at its local log position.

Framing failures are classified by the reader:  an *incomplete* frame at
the physical end of the newest segment is the torn tail of a crashed
write and is truncated silently; a CRC mismatch on a complete frame, or
any short frame that is not the journal's last bytes, raises
:class:`~repro.errors.StoreCorruptError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union
from zlib import crc32

from repro.errors import StoreCorruptError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream

#: Bump on any layout change; readers reject unknown record types.
REC_CKPT_FULL = 1
REC_CKPT_DELTA = 2
REC_MSG = 3

_FRAME = struct.Struct("<II")
FRAME_HEADER_SIZE = _FRAME.size


@dataclass(frozen=True)
class CheckpointPayload:
    """A decoded checkpoint record (full or delta-encoded app state)."""

    transfer_id: str
    position: int
    app_state: bytes          # full snapshot, or encoded StateDelta
    orb_state: bytes
    infra_state: bytes
    delta: bool


@dataclass(frozen=True)
class MessagePayload:
    """A decoded message record."""

    position: int
    envelope_bytes: bytes


RecordPayload = Union[CheckpointPayload, MessagePayload]


def encode_checkpoint(transfer_id: str, position: int, app_state: bytes,
                      orb_state: bytes, infra_state: bytes,
                      *, delta: bool) -> bytes:
    """Encode a checkpoint record payload (``delta`` selects whether
    ``app_state`` is an encoded :class:`StateDelta` or a full snapshot)."""
    out = CdrOutputStream()
    out.write_octet(REC_CKPT_DELTA if delta else REC_CKPT_FULL)
    out.write_string(transfer_id)
    out.write_longlong(position)
    out.write_octets(app_state)
    out.write_octets(orb_state)
    out.write_octets(infra_state)
    return out.getvalue()


def encode_message(position: int, envelope_bytes: bytes) -> bytes:
    """Encode one ordered-message record payload."""
    out = CdrOutputStream()
    out.write_octet(REC_MSG)
    out.write_longlong(position)
    out.write_octets(envelope_bytes)
    return out.getvalue()


def decode_record(payload: bytes) -> RecordPayload:
    """Decode one framed payload; raises :class:`StoreCorruptError` on any
    malformed body (the frame CRC already passed, so this is real damage
    or a foreign/newer format, never a torn write)."""
    try:
        inp = CdrInputStream(payload)
        rec_type = inp.read_octet()
        if rec_type in (REC_CKPT_FULL, REC_CKPT_DELTA):
            return CheckpointPayload(
                transfer_id=inp.read_string(),
                position=inp.read_longlong(),
                app_state=inp.read_octets(),
                orb_state=inp.read_octets(),
                infra_state=inp.read_octets(),
                delta=rec_type == REC_CKPT_DELTA,
            )
        if rec_type == REC_MSG:
            return MessagePayload(
                position=inp.read_longlong(),
                envelope_bytes=inp.read_octets(),
            )
    except UnmarshalError as exc:
        raise StoreCorruptError(f"undecodable journal record: {exc}") from exc
    raise StoreCorruptError(f"unknown journal record type {rec_type}")


def frame(payload: bytes) -> bytes:
    """Wrap a record payload in its length+CRC frame."""
    return _FRAME.pack(len(payload), crc32(payload)) + payload


def iter_frames(blob: bytes, *,
                last_segment: bool) -> Iterator[Tuple[bytes, int]]:
    """Yield ``(payload, end_offset)`` for every complete, CRC-clean frame
    in one segment's bytes.

    ``last_segment`` selects the torn-tail rule: an incomplete frame at
    the end of the *newest* segment is silently dropped (the caller may
    truncate the file to the last yielded ``end_offset``); the same
    condition in an older segment — which was only ever appended to while
    it was the newest — is corruption.  A CRC mismatch on a complete
    frame is corruption anywhere.
    """
    offset = 0
    total = len(blob)
    while offset < total:
        header = blob[offset:offset + FRAME_HEADER_SIZE]
        if len(header) < FRAME_HEADER_SIZE:
            if last_segment:
                return        # torn header at the physical tail
            raise StoreCorruptError(
                f"short frame header at offset {offset} of a sealed segment"
            )
        length, tag = _FRAME.unpack(header)
        start = offset + FRAME_HEADER_SIZE
        payload = blob[start:start + length]
        if len(payload) < length:
            if last_segment:
                return        # torn payload at the physical tail
            raise StoreCorruptError(
                f"short frame payload at offset {offset} of a sealed segment"
            )
        if crc32(payload) != tag:
            raise StoreCorruptError(
                f"frame CRC mismatch at offset {offset}"
            )
        offset = start + length
        yield payload, offset


def scan_segment(blob: bytes, *,
                 last_segment: bool) -> Tuple[list, Optional[int]]:
    """Decode a whole segment.

    Returns ``(payloads, truncate_to)`` where ``truncate_to`` is the byte
    length the caller should truncate the file to (``None`` when the
    segment ends on a clean frame boundary)."""
    payloads = []
    end = 0
    for payload, offset in iter_frames(blob, last_segment=last_segment):
        payloads.append(decode_record(payload))
        end = offset
    return payloads, (end if end != len(blob) else None)
