"""Durable checkpoint & message-log store for cold restart.

See :mod:`repro.store.base` for the model.  Public surface:

* :class:`DurableStore` / :class:`GroupStore` — the pluggable API the
  replication mechanisms write through;
* :class:`JournalStore` — the on-disk segmented journal (live runtime);
* :class:`MemoryStore` — deterministic in-memory equivalent (simnet);
* :class:`~repro.errors.StoreCorruptError` — integrity failure beyond
  the torn tail; the recovery layer catches it and falls back to a full
  network state transfer.
"""

from repro.errors import StoreCorruptError, StoreError
from repro.store.base import (
    DEFAULT_MAX_DELTA_CHAIN,
    DurableStore,
    FSYNC_ALWAYS,
    FSYNC_CHECKPOINT,
    FSYNC_NEVER,
    FSYNC_POLICIES,
    GroupBackend,
    GroupStore,
    StoredState,
)
from repro.store.journal import JournalBackend, JournalStore
from repro.store.memory import MemoryBackend, MemoryStore

__all__ = [
    "DEFAULT_MAX_DELTA_CHAIN",
    "DurableStore",
    "FSYNC_ALWAYS",
    "FSYNC_CHECKPOINT",
    "FSYNC_NEVER",
    "FSYNC_POLICIES",
    "GroupBackend",
    "GroupStore",
    "JournalBackend",
    "JournalStore",
    "MemoryBackend",
    "MemoryStore",
    "StoreCorruptError",
    "StoreError",
    "StoredState",
]
