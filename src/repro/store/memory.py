"""In-memory store backend for simnet determinism.

The simulator must stay bit-for-bit deterministic, so its durable store
cannot touch the host filesystem.  :class:`MemoryBackend` keeps each
group's journal as a single framed byte blob — the *same* frames
:mod:`repro.store.journal` writes to disk, decoded through the same
:func:`~repro.store.records.scan_segment` — so every codec path, the
torn-tail rule included, is exercised under simulation, and tests can
corrupt or shear the blob exactly as they would a file.

Durability semantics: the :class:`MemoryStore` object is owned by the
*system*, not by any simulated process, so it survives
:meth:`fault-injected <repro.simnet.faults.FaultInjector.crash>` kills
and restarts the way a disk survives a power cycle.  ``sync`` is a
no-op — memory is always "stable" here — which models a journal running
with an ideal fsync.
"""

from __future__ import annotations

from typing import Dict, List

from repro.store.base import (
    DEFAULT_MAX_DELTA_CHAIN,
    DurableStore,
    FSYNC_CHECKPOINT,
    FSYNC_POLICIES,
    GroupBackend,
)
from repro.store.records import frame, scan_segment


class MemoryBackend(GroupBackend):
    """One group's journal as a framed blob in memory."""

    def __init__(self, group_id: str) -> None:
        super().__init__(group_id)
        self.blob = bytearray()
        self.sync_count = 0

    def load_payloads(self) -> List:
        payloads, truncate_to = scan_segment(bytes(self.blob),
                                             last_segment=True)
        if truncate_to is not None:
            dropped = len(self.blob) - truncate_to
            del self.blob[truncate_to:]
            self.tracer.emit("store", "tail_truncated", node=self.node_id,
                             group=self.group_id, dropped=dropped)
        return payloads

    def append(self, payload: bytes, *, sync: bool) -> None:
        self.blob += frame(payload)
        if sync:
            self.sync_count += 1

    def rewrite(self, payloads: List[bytes]) -> None:
        rebuilt = bytearray()
        for payload in payloads:
            rebuilt += frame(payload)
        self.blob = rebuilt

    def wipe(self) -> None:
        self.blob = bytearray()

    def close(self) -> None:
        pass

    def stats(self) -> Dict[str, float]:
        return {"bytes": float(len(self.blob)), "segments": 1.0,
                "fsyncs": float(self.sync_count)}


class MemoryStore(DurableStore):
    """Per-node in-memory store (simnet's stand-in for a disk)."""

    def __init__(self, *, fsync: str = FSYNC_CHECKPOINT,
                 max_delta_chain: int = DEFAULT_MAX_DELTA_CHAIN) -> None:
        super().__init__()
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.fsync = fsync
        self._max_delta_chain = max_delta_chain

    def _make_backend(self, group_id: str) -> GroupBackend:
        return MemoryBackend(group_id)

    def fsync_policy(self) -> str:
        return self.fsync

    def max_delta_chain(self) -> int:
        return self._max_delta_chain
