"""Client-side object proxies.

An :class:`ObjectProxy` is what ``orb.connect(ior)`` returns: a handle that
marshals invocations into GIOP requests on the underlying connection and
hands the bytes to the ORB's transport.  Replies are delivered through the
per-call callback or the ORB's default reply handler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus
from repro.orb.connection import ClientConnection, ReplyCallback
from repro.orb.servant import CorbaUserException

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.orb import Orb


class ObjectProxy:
    """An invocable reference to a (possibly replicated) remote object."""

    def __init__(self, orb: "Orb", conn: ClientConnection, ior: IOR) -> None:
        self._orb = orb
        self._conn = conn
        self.ior = ior

    @property
    def connection(self) -> ClientConnection:
        return self._conn

    def invoke(self, operation: str, *args,
               on_reply: Optional[ReplyCallback] = None,
               response_expected: bool = True) -> int:
        """Issue ``operation(*args)``; returns the assigned request_id.

        ``on_reply`` (if given) receives the :class:`ReplyMessage`; without
        it, replies route to the ORB's default reply handler.
        """
        data = self._conn.build_request(
            self.ior.object_key, operation, args,
            response_expected=response_expected, callback=on_reply,
        )
        request_id = self._conn.next_request_id - 1
        self._orb.send_request_bytes(self._conn, data)
        return request_id

    def oneway(self, operation: str, *args) -> None:
        """Issue a oneway (no-response) invocation."""
        self.invoke(operation, *args, response_expected=False)


def unwrap_reply(reply: ReplyMessage):
    """Convert a reply into a return value, re-raising user exceptions."""
    if reply.reply_status is ReplyStatus.NO_EXCEPTION:
        return reply.result
    raise CorbaUserException(reply.result, exception_id=reply.exception_id)
