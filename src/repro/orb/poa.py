"""The Portable Object Adapter.

The POA owns the active object map (object id → servant) and dispatches
decoded GIOP requests to servant operations, converting results and user
exceptions into GIOP replies.  Together with the per-connection state kept
by the ORB, the active object map is part of the "ORB/POA-level state" the
paper identifies (§4.2): it is rebuilt on recovery by re-activating the
replica's servants, while the connection-level pieces must be transferred.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional

from repro.errors import ObjectNotFound, OrbError
from repro.giop.messages import ReplyMessage, ReplyStatus, RequestMessage
from repro.orb.objectkey import make_key, parse_key
from repro.orb.servant import CorbaUserException, Servant


class ThreadingPolicy(enum.Enum):
    """POA threading policy.

    Only SINGLE_THREAD preserves determinism; the paper's companion work
    (Narasimhan et al., SRDS 1999) enforces deterministic scheduling for
    multithreaded ORBs — here we model the already-deterministic case.
    """

    SINGLE_THREAD = "single_thread"


class POA:
    """One object adapter, named, holding an active object map."""

    def __init__(self, name: str,
                 threading_policy: ThreadingPolicy = ThreadingPolicy.SINGLE_THREAD
                 ) -> None:
        self.name = name
        self.threading_policy = threading_policy
        self._active: Dict[bytes, Servant] = {}
        self._next_id = itertools.count(1)

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------

    def activate_object(self, servant: Servant,
                        object_id: Optional[bytes] = None) -> bytes:
        """Register ``servant``; returns the full object key."""
        if object_id is None:
            object_id = f"oid-{next(self._next_id)}".encode("ascii")
        if object_id in self._active:
            raise OrbError(f"object id {object_id!r} already active in "
                           f"POA {self.name!r}")
        self._active[object_id] = servant
        return make_key(self.name, object_id)

    def deactivate_object(self, object_id: bytes) -> None:
        if object_id not in self._active:
            raise ObjectNotFound(f"{object_id!r} not active in {self.name!r}")
        del self._active[object_id]

    def servant_for_id(self, object_id: bytes) -> Servant:
        try:
            return self._active[object_id]
        except KeyError:
            raise ObjectNotFound(
                f"no servant for object id {object_id!r} in POA {self.name!r}"
            ) from None

    def servant_for_key(self, key: bytes) -> Servant:
        poa_name, object_id = parse_key(key)
        if poa_name != self.name:
            raise ObjectNotFound(
                f"object key names POA {poa_name!r}, this is {self.name!r}"
            )
        return self.servant_for_id(object_id)

    @property
    def active_count(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request: RequestMessage, servant: Servant,
                 service_contexts: tuple = ()) -> Optional[ReplyMessage]:
        """Execute the request on ``servant``; returns the reply (or None
        for oneway requests)."""
        try:
            result = servant._dispatch(request.operation, request.args)
        except CorbaUserException as exc:
            if request.oneway:
                return None
            return ReplyMessage(
                request_id=request.request_id,
                reply_status=ReplyStatus.USER_EXCEPTION,
                exception_id=exc.exception_id,
                result=str(exc),
                service_contexts=service_contexts,
            )
        except ObjectNotFound:
            raise
        except OrbError:
            raise
        except Exception as exc:  # servant bug → SYSTEM_EXCEPTION
            if request.oneway:
                return None
            return ReplyMessage(
                request_id=request.request_id,
                reply_status=ReplyStatus.SYSTEM_EXCEPTION,
                exception_id="IDL:omg.org/CORBA/UNKNOWN:1.0",
                result=f"{type(exc).__name__}: {exc}",
                service_contexts=service_contexts,
            )
        if request.oneway:
            return None
        return ReplyMessage(
            request_id=request.request_id,
            reply_status=ReplyStatus.NO_EXCEPTION,
            result=result,
            service_contexts=service_contexts,
        )
