"""Per-connection ORB state — the crux of the paper's §4.2.

**Client side** (:class:`ClientConnection`): the ORB assigns each outgoing
request a per-connection ``request_id`` (0, 1, 2, …) and matches replies
against outstanding requests; "replies whose request_ids do not match are
discarded by the client-side ORB" (§4.2.1).  The counter is buried inside
the ORB — there is deliberately **no API to set it** — so a recovered
replica's ORB restarts it at 0, recreating Figure 4's inconsistency unless
Eternal's interceptor rewrites ids from outside (see
:mod:`repro.core.orb_state`).

**Server side** (:class:`ServerConnectionState`): the results of the initial
client-server handshake — negotiated code sets and the vendor short-key
table — are stored per connection.  A request bearing a short key the
connection never negotiated is **discarded** (§4.2.2's failure mode for a
new server replica that missed the handshake).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConnectionClosed
from repro.giop.messages import ReplyMessage, RequestMessage, encode_message
from repro.giop.service_context import (
    CODE_SETS_ID,
    VENDOR_HANDSHAKE_ID,
    CodeSetContext,
    ServiceContext,
    VendorHandshakeContext,
    find_context,
)
from repro.orb.objectkey import is_short_key, make_short_key, parse_short_key

ReplyCallback = Callable[[ReplyMessage], None]


def negotiate_token(object_key: bytes) -> int:
    """The server's deterministic short-key token for ``object_key``.

    Determinism matters: every replica of a server must negotiate the same
    token so that replicas stay consistent, and so that a client replica
    re-proposing after recovery converges on the value its siblings use.
    """
    return zlib.crc32(b"short-key:" + object_key) & 0xFFFFFFFF


class ClientConnection:
    """The client-side ORB's state for one connection to one server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._next_request_id = 0
        self._outstanding: Dict[int, Tuple[str, Optional[ReplyCallback]]] = {}
        self._handshake_done = False
        self._short_keys: Dict[bytes, int] = {}   # full key -> token
        self._codeset: Optional[CodeSetContext] = None
        self._closed = False
        self.requests_sent = 0
        self.replies_matched = 0
        self.replies_discarded = 0

    # -- introspection (tests and benches only; Eternal never calls these)

    @property
    def next_request_id(self) -> int:
        return self._next_request_id

    @property
    def handshake_done(self) -> bool:
        return self._handshake_done

    @property
    def outstanding_request_ids(self) -> List[int]:
        return sorted(self._outstanding)

    def outstanding_operation(self, request_id: int) -> Optional[str]:
        entry = self._outstanding.get(request_id)
        return entry[0] if entry else None

    # -- request path ----------------------------------------------------

    def build_request(
        self,
        object_key: bytes,
        operation: str,
        args: tuple,
        *,
        response_expected: bool = True,
        callback: Optional[ReplyCallback] = None,
    ) -> bytes:
        """Construct the next GIOP Request on this connection.

        The first request carries the handshake ServiceContexts (code sets
        plus a vendor short-key proposal); once the handshake reply arrives,
        subsequent requests use the negotiated short key.
        """
        if self._closed:
            raise ConnectionClosed(f"connection to {self.host}:{self.port}")
        request_id = self._next_request_id
        self._next_request_id += 1
        self.requests_sent += 1

        contexts: List[ServiceContext] = []
        wire_key = object_key
        if not self._handshake_done:
            contexts.append(CodeSetContext().to_service_context())
            contexts.append(
                VendorHandshakeContext(
                    propose=True, object_key=object_key
                ).to_service_context()
            )
        else:
            token = self._short_keys.get(object_key)
            if token is not None:
                wire_key = make_short_key(token)

        if response_expected:
            self._outstanding[request_id] = (operation, callback)
        request = RequestMessage(
            request_id=request_id,
            object_key=wire_key,
            operation=operation,
            args=args,
            response_expected=response_expected,
            service_contexts=tuple(contexts),
        )
        return encode_message(request)

    def expect_reply(self, request_id: int, operation: str,
                     callback: Optional[ReplyCallback] = None) -> None:
        """Re-register interest in a reply (used by a recovered replica's
        application when it re-issues suppressed invocations)."""
        self._outstanding[request_id] = (operation, callback)

    # -- reply path --------------------------------------------------------

    def match_reply(
        self, reply: ReplyMessage
    ) -> Optional[Tuple[str, Optional[ReplyCallback]]]:
        """Match an incoming reply to an outstanding request.

        Returns ``(operation, callback)`` on a match; on a request_id
        mismatch the reply is discarded and ``None`` returned — the Figure 4
        behaviour this reproduction must preserve.
        """
        entry = self._outstanding.pop(reply.request_id, None)
        if entry is None:
            self.replies_discarded += 1
            return None
        self.replies_matched += 1
        handshake = find_context(list(reply.service_contexts),
                                 VENDOR_HANDSHAKE_ID)
        if handshake is not None:
            negotiated = VendorHandshakeContext.from_service_context(handshake)
            if negotiated.object_key:
                self._short_keys[negotiated.object_key] = \
                    negotiated.short_key_token
            self._handshake_done = True
        return entry

    def stats(self) -> Dict[str, int]:
        """Connection-level round-trip accounting for the observability
        layer (sampled into gauges by ``python -m repro metrics``)."""
        return {
            "requests_sent": self.requests_sent,
            "replies_matched": self.replies_matched,
            "replies_discarded": self.replies_discarded,
            "outstanding": len(self._outstanding),
        }

    def close(self) -> None:
        self._closed = True
        self._outstanding.clear()


class ServerConnectionState:
    """The server-side ORB's per-connection state.

    Populated by the handshake request; consulted for every later request.
    A new server replica's ORB starts with an **empty** instance of this —
    which is exactly why Eternal must replay the stored handshake message
    into it (paper §4.2.2).
    """

    def __init__(self, connection_id: str) -> None:
        self.connection_id = connection_id
        self.codeset: Optional[CodeSetContext] = None
        self.short_keys: Dict[int, bytes] = {}     # token -> full key
        self.handshake_seen = False
        self.last_seen_request_id: Optional[int] = None
        self.requests_discarded = 0

    def process_request_contexts(
        self, request: RequestMessage
    ) -> List[ServiceContext]:
        """Absorb the request's ServiceContexts; returns the contexts the
        reply should carry (the handshake acknowledgement)."""
        reply_contexts: List[ServiceContext] = []
        contexts = list(request.service_contexts)
        codeset_ctx = find_context(contexts, CODE_SETS_ID)
        if codeset_ctx is not None:
            self.codeset = CodeSetContext.from_service_context(codeset_ctx)
        handshake_ctx = find_context(contexts, VENDOR_HANDSHAKE_ID)
        if handshake_ctx is not None:
            proposal = VendorHandshakeContext.from_service_context(handshake_ctx)
            if proposal.propose and proposal.object_key:
                token = negotiate_token(proposal.object_key)
                self.short_keys[token] = proposal.object_key
                self.handshake_seen = True
                reply_contexts.append(
                    VendorHandshakeContext(
                        propose=False,
                        object_key=proposal.object_key,
                        short_key_token=token,
                    ).to_service_context()
                )
        return reply_contexts

    def resolve_key(self, wire_key: bytes) -> Optional[bytes]:
        """Map the wire object key to a full key.

        Short keys resolve through the negotiated table; an unknown token
        means this ORB missed the handshake, and the request is
        uninterpretable — the caller must discard it.
        """
        if not is_short_key(wire_key):
            return wire_key
        token = parse_short_key(wire_key)
        full_key = self.short_keys.get(token)
        if full_key is None:
            self.requests_discarded += 1
            return None
        return full_key
