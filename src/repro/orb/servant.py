"""Servant base class and operation dispatch.

A :class:`Servant` is the implementation object a POA dispatches requests
to.  Operations are ordinary methods marked with the :func:`operation`
decorator; the decorator can also declare a simulated execution duration so
that quiescence (an object busy mid-operation) is observable in simulated
time, as the paper's state-transfer synchronization requires.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import OrbError

DEFAULT_OP_DURATION = 50e-6
"""Default simulated execution time of one operation (50 µs)."""


class CorbaUserException(Exception):
    """A user exception raised by a servant operation; its ``exception_id``
    travels in the GIOP reply and is re-raised client-side."""

    exception_id = "IDL:repro/UserException:1.0"

    def __init__(self, *args: Any, exception_id: Optional[str] = None) -> None:
        super().__init__(*args)
        if exception_id is not None:
            self.exception_id = exception_id


def operation(fn: Callable = None, *, duration: float = DEFAULT_OP_DURATION,
              oneway: bool = False, read_only: bool = False):
    """Mark a servant method as a CORBA operation.

    ``duration`` is the simulated execution time; ``oneway`` marks
    operations that return no response.  ``read_only`` declares that the
    operation does not mutate replica state — application-level metadata
    (in the spirit of LLFT's application-aware ordering relaxations) that
    lets the replication layer serve the call through the leader-lease
    read fast path instead of the total order.  Marking a mutating
    operation ``read_only`` voids the consistency guarantee; the
    declaration is the application's promise.
    """
    def mark(func: Callable) -> Callable:
        func._corba_operation = True
        func._corba_duration = duration
        func._corba_oneway = oneway
        func._corba_read_only = read_only
        return func
    if fn is not None:
        return mark(fn)
    return mark


#: ``type_id`` -> frozenset of operation names declared ``read_only``.
#: Populated by :class:`Servant.__init_subclass__`, so the registry is
#: complete as soon as the servant classes are imported — the client-side
#: fast-path gate needs the metadata *before* any servant instance of the
#: target group exists locally.
_READ_ONLY_OPS: Dict[str, frozenset] = {}


def read_only_operations(type_id: str) -> frozenset:
    """Operation names declared ``read_only`` for ``type_id`` (empty set
    for unknown or fully-ordered types)."""
    return _READ_ONLY_OPS.get(type_id, frozenset())


class Servant:
    """Base class for CORBA object implementations.

    Subclasses define operations with the :func:`operation` decorator::

        class Counter(Servant):
            @operation
            def increment(self, amount):
                self.value += amount
                return self.value
    """

    type_id = "IDL:repro/Object:1.0"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        type_id = cls.__dict__.get("type_id")
        if type_id is None:
            return
        names = set(_READ_ONLY_OPS.get(type_id, frozenset()))
        for klass in cls.__mro__:
            for name, member in vars(klass).items():
                if getattr(member, "_corba_read_only", False):
                    names.add(name)
        if names:
            _READ_ONLY_OPS[type_id] = frozenset(names)

    def _find_operation(self, name: str) -> Callable:
        fn = getattr(self, name, None)
        if fn is None or not callable(fn):
            raise OrbError(
                f"{type(self).__name__} has no operation {name!r}"
            )
        if not getattr(fn, "_corba_operation", False) \
                and self._marked_in_mro(name) is None:
            raise OrbError(
                f"{type(self).__name__}.{name} is not a CORBA operation"
            )
        return fn

    def _marked_in_mro(self, name: str) -> Optional[Callable]:
        """An override inherits the @operation marking of the method it
        overrides (e.g. get_state/set_state implementations need not
        re-decorate)."""
        for klass in type(self).__mro__:
            candidate = klass.__dict__.get(name)
            if candidate is not None and getattr(candidate,
                                                 "_corba_operation", False):
                return candidate
        return None

    def _operation_duration(self, name: str) -> float:
        fn = self._find_operation(name)
        if getattr(fn, "_corba_operation", False):
            return getattr(fn, "_corba_duration", DEFAULT_OP_DURATION)
        marked = self._marked_in_mro(name)
        return getattr(marked, "_corba_duration", DEFAULT_OP_DURATION)

    def _dispatch(self, name: str, args: tuple) -> Any:
        """Execute operation ``name``; exceptions propagate to the POA."""
        return self._find_operation(name)(*args)

    def operations(self) -> Dict[str, Callable]:
        """All operations this servant exposes (for introspection)."""
        result: Dict[str, Callable] = {}
        for attr in dir(self):
            if attr.startswith("_"):
                continue
            fn = getattr(self, attr)
            if callable(fn) and getattr(fn, "_corba_operation", False):
                result[attr] = fn
        return result
