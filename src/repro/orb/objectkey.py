"""Object keys: the opaque bytes a POA embeds in IORs to find servants.

Full keys encode (POA name, object id).  *Short keys* are the
vendor-negotiated compact form (paper §4.2.2, VisiBroker 4.0's shortcut):
after the handshake, the client sends a 4-byte token instead of the full
key, and only a server ORB that witnessed (or was replayed) the negotiation
can map the token back.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import ProtocolError

FULL_KEY_TAG = 0x00
SHORT_KEY_TAG = 0x01


def make_key(poa_name: str, object_id: bytes) -> bytes:
    """Build a full object key for (POA, object id)."""
    poa_bytes = poa_name.encode("utf-8")
    return bytes([FULL_KEY_TAG]) + struct.pack(">H", len(poa_bytes)) \
        + poa_bytes + object_id


def parse_key(key: bytes) -> Tuple[str, bytes]:
    """Split a full object key back into (POA name, object id)."""
    if not key or key[0] != FULL_KEY_TAG:
        raise ProtocolError(f"not a full object key: {key[:8]!r}")
    if len(key) < 3:
        raise ProtocolError("truncated object key")
    (length,) = struct.unpack(">H", key[1:3])
    if len(key) < 3 + length:
        raise ProtocolError("truncated object key POA name")
    poa_name = str(key[3:3 + length], "utf-8")
    return poa_name, key[3 + length:]


def make_short_key(token: int) -> bytes:
    """Build the negotiated compact key for ``token``."""
    return bytes([SHORT_KEY_TAG]) + struct.pack(">I", token)


def parse_short_key(key: bytes) -> int:
    """Extract the token from a short key."""
    if len(key) != 5 or key[0] != SHORT_KEY_TAG:
        raise ProtocolError(f"not a short object key: {key[:8]!r}")
    return struct.unpack(">I", key[1:])[0]


def is_short_key(key: bytes) -> bool:
    """True if ``key`` is a negotiated vendor short key."""
    return bool(key) and key[0] == SHORT_KEY_TAG


def is_full_key(key: bytes) -> bool:
    """True if ``key`` is a full (POA name + object id) key."""
    return bool(key) and key[0] == FULL_KEY_TAG
