"""The ORB core: connection management and request/reply routing.

One :class:`Orb` instance serves one replica ("each replica has its own ORB
on a distinct processor", paper §4.2).  It is deliberately ignorant of
replication: it believes it talks IIOP over point-to-point connections.
Eternal's Interceptor supplies the transport underneath and is free to
divert, duplicate-filter, and rewrite the byte streams — the transparency
the paper is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ObjectNotFound, OrbError, ProtocolError
from repro.giop.ior import IOR
from repro.giop.messages import (
    MsgType,
    ReplyMessage,
    RequestMessage,
    decode_header,
    decode_message,
    encode_message,
)
from repro.orb.connection import ClientConnection, ServerConnectionState
from repro.orb.poa import POA
from repro.orb.proxy import ObjectProxy
from repro.orb.servant import Servant

# transport hook: send(host, port, giop_bytes)
ClientTransport = Callable[[str, int, bytes], None]
# default handler for replies whose request had no per-call callback:
# handler(connection_id, operation, reply)
DefaultReplyHandler = Callable[[str, str, ReplyMessage], None]

DEFAULT_PORT = 2809


@dataclass
class DecodedRequest:
    """A server-side request after connection-state processing, ready for
    dispatch (the hosting container schedules execution time)."""

    connection_id: str
    request: RequestMessage
    servant: Servant
    full_key: bytes
    duration: float
    reply_contexts: tuple


class Orb:
    """A miniature ORB hosting POAs and client connections."""

    def __init__(self, name: str, *, host: str = "localhost",
                 port: int = DEFAULT_PORT) -> None:
        self.name = name
        self.host = host
        self.port = port
        self._poas: Dict[str, POA] = {}
        self._client_conns: Dict[Tuple[str, int], ClientConnection] = {}
        self._server_conns: Dict[str, ServerConnectionState] = {}
        self._transport: Optional[ClientTransport] = None
        self._default_reply_handler: Optional[DefaultReplyHandler] = None
        self.requests_discarded = 0

    # ------------------------------------------------------------------
    # POA / servant side
    # ------------------------------------------------------------------

    def create_poa(self, name: str) -> POA:
        if name in self._poas:
            raise OrbError(f"POA {name!r} already exists")
        poa = POA(name)
        self._poas[name] = poa
        return poa

    def poa(self, name: str) -> POA:
        try:
            return self._poas[name]
        except KeyError:
            raise OrbError(f"no POA named {name!r}") from None

    def activate(self, servant: Servant, *, poa_name: str = "RootPOA",
                 object_id: Optional[bytes] = None) -> IOR:
        """Activate a servant (creating the POA on demand); returns its IOR."""
        poa = self._poas.get(poa_name)
        if poa is None:
            poa = self.create_poa(poa_name)
        key = poa.activate_object(servant, object_id)
        return IOR(type_id=servant.type_id, host=self.host, port=self.port,
                   object_key=key)

    def _servant_for_key(self, key: bytes) -> Servant:
        from repro.orb.objectkey import parse_key
        poa_name, _ = parse_key(key)
        poa = self._poas.get(poa_name)
        if poa is None:
            raise ObjectNotFound(f"no POA {poa_name!r} in ORB {self.name!r}")
        return poa.servant_for_key(key)

    # ------------------------------------------------------------------
    # Server-side request handling (two-phase: decode, then execute)
    # ------------------------------------------------------------------

    def server_connection(self, connection_id: str) -> ServerConnectionState:
        state = self._server_conns.get(connection_id)
        if state is None:
            state = ServerConnectionState(connection_id)
            self._server_conns[connection_id] = state
        return state

    def decode_request(self, connection_id: str,
                       data: bytes) -> Optional[DecodedRequest]:
        """Parse an incoming request and apply connection-state processing.

        Returns ``None`` when the ORB discards the request — notably when it
        carries a short object key this connection never negotiated (§4.2.2).
        """
        message = decode_message(data)
        if not isinstance(message, RequestMessage):
            raise ProtocolError(
                f"expected Request on server path, got {type(message).__name__}"
            )
        conn = self.server_connection(connection_id)
        reply_contexts = conn.process_request_contexts(message)
        full_key = conn.resolve_key(message.object_key)
        if full_key is None:
            self.requests_discarded += 1
            return None
        conn.last_seen_request_id = message.request_id
        servant = self._servant_for_key(full_key)
        duration = servant._operation_duration(message.operation)
        return DecodedRequest(
            connection_id=connection_id,
            request=message,
            servant=servant,
            full_key=full_key,
            duration=duration,
            reply_contexts=tuple(reply_contexts),
        )

    def execute_request(self, decoded: DecodedRequest) -> Optional[bytes]:
        """Dispatch a decoded request; returns encoded reply bytes (None for
        oneways)."""
        from repro.orb.objectkey import parse_key
        poa_name, _ = parse_key(decoded.full_key)
        poa = self._poas[poa_name]
        reply = poa.dispatch(decoded.request, decoded.servant,
                             decoded.reply_contexts)
        if reply is None:
            return None
        return encode_message(reply)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def set_client_transport(self, transport: ClientTransport) -> None:
        """Install the hook that carries outgoing request bytes (in Eternal,
        the Interceptor)."""
        self._transport = transport

    def set_default_reply_handler(self, handler: DefaultReplyHandler) -> None:
        """Replies without a per-call callback are routed here."""
        self._default_reply_handler = handler

    def connect(self, ior: IOR) -> ObjectProxy:
        """Resolve an IOR into an invocable proxy (opening — or reusing —
        the connection to the IOR's endpoint)."""
        endpoint = (ior.host, ior.port)
        conn = self._client_conns.get(endpoint)
        if conn is None:
            conn = ClientConnection(ior.host, ior.port)
            self._client_conns[endpoint] = conn
        return ObjectProxy(self, conn, ior)

    def client_connection(self, host: str,
                          port: int = DEFAULT_PORT) -> Optional[ClientConnection]:
        return self._client_conns.get((host, port))

    def send_request_bytes(self, conn: ClientConnection, data: bytes) -> None:
        if self._transport is None:
            raise OrbError(f"ORB {self.name!r} has no client transport")
        self._transport(conn.host, conn.port, data)

    def handle_reply(self, host: str, port: int, data: bytes) -> bool:
        """Process an incoming reply from (host, port).

        Returns True if it was delivered to the application, False if the
        ORB discarded it (unknown connection or request_id mismatch — the
        Figure 4 failure mode)."""
        header = decode_header(data)
        if header.msg_type is not MsgType.REPLY:
            raise ProtocolError(
                f"expected Reply on client path, got {header.msg_type!r}"
            )
        conn = self._client_conns.get((host, port))
        if conn is None:
            return False
        reply = decode_message(data)
        entry = conn.match_reply(reply)
        if entry is None:
            return False
        operation, callback = entry
        if callback is not None:
            callback(reply)
        elif self._default_reply_handler is not None:
            self._default_reply_handler(f"{host}:{port}", operation, reply)
        return True
