"""A miniature, deterministic ORB and POA.

The paper's recovery problems live in state the ORB keeps *per connection*
on behalf of objects: the GIOP ``request_id`` counter on the client side
(§4.2.1) and the results of the initial client-server handshake on the
server side (§4.2.2).  This ORB maintains exactly that state, speaks the
real GIOP bytes of :mod:`repro.giop`, and exhibits the paper's failure
modes faithfully:

* a client connection **discards** replies whose ``request_id`` matches no
  outstanding request (Figure 4's "will now wait forever");
* a server connection **discards** requests that rely on negotiated state
  (vendor short object keys) it never learned (§4.2.2's lost handshake).

The ORB is transport-agnostic: it emits and accepts raw GIOP byte strings
through a pluggable transport hook, which is where Eternal's Interceptor
attaches (below the ORB, at its "socket-level interface").
"""

from repro.orb.connection import ClientConnection, ServerConnectionState
from repro.orb.orb import Orb
from repro.orb.poa import POA, ThreadingPolicy
from repro.orb.proxy import ObjectProxy
from repro.orb.servant import CorbaUserException, Servant, operation

__all__ = [
    "Orb",
    "POA",
    "ThreadingPolicy",
    "Servant",
    "operation",
    "CorbaUserException",
    "ClientConnection",
    "ServerConnectionState",
    "ObjectProxy",
]
