"""The discrete-event scheduler that drives every simulation.

A single :class:`Scheduler` owns simulated time.  Components schedule
callbacks with :meth:`Scheduler.call_at` / :meth:`Scheduler.call_after` and
the simulation advances by executing callbacks in timestamp order.  Ties are
broken by insertion order, which makes every run deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import ClockError, SimulationError
from repro.runtime.interfaces import Scheduler as SchedulerInterface
from repro.runtime.interfaces import TimerHandle


class Event:
    """A scheduled callback.  Returned by ``call_at``/``call_after``.

    Holding on to the event allows cancellation via :meth:`cancel` or
    :meth:`Scheduler.cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{flag}>"


# Virtual registration: Event keeps its __slots__ (an ABC base would give it
# a __dict__) yet satisfies isinstance checks against the interface.
TimerHandle.register(Event)


class Scheduler(SchedulerInterface):
    """Event loop with simulated time — the discrete-event implementation
    of :class:`repro.runtime.Scheduler`.

    ``now`` is the current simulated time in seconds.  The loop never runs
    wall-clock time; a full benchmark sweep completes in milliseconds of real
    time while reporting seconds of simulated time.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._executed = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time:.9f}, now is t={self._now:.9f}"
            )
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ClockError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (or ``max_events``, a runaway guard)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"scheduler exceeded {max_events} events")

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run events with timestamp <= ``time``; leave ``now`` at ``time``."""
        if time < self._now:
            raise ClockError(f"run_until({time}) is in the past (now={self._now})")
        for _ in range(max_events):
            if not self._heap:
                break
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
        else:
            raise SimulationError(f"scheduler exceeded {max_events} events")
        self._now = max(self._now, time)

    def run_while(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run while ``predicate()`` is true, up to ``timeout`` simulated seconds.

        Returns True if the predicate became false (success), False if the
        timeout elapsed first.  This is the standard way tests wait for a
        condition such as "replica recovered".
        """
        deadline = self._now + timeout
        for _ in range(max_events):
            if not predicate():
                return True
            if not self._heap or self._heap[0].time > deadline:
                self._now = max(self._now, deadline)
                return not predicate()
            self.step()
        raise SimulationError(f"scheduler exceeded {max_events} events")

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)
