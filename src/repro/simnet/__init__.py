"""Discrete-event simulation substrate for the Eternal reproduction.

The paper measured a real testbed (UltraSPARC workstations on 100 Mbps
Ethernet).  We substitute a deterministic discrete-event simulation: simulated
processes host the ORB/Eternal stacks, and an Ethernet-like shared medium
carries the multicast frames, including the MTU-driven fragmentation that
shapes Figure 6 of the paper.

Public surface:

* :class:`~repro.simnet.scheduler.Scheduler` — the event loop and clock.
* :class:`~repro.simnet.process.Process` — a crashable simulated process.
* :class:`~repro.simnet.network.Network` / :class:`~repro.simnet.network.NetworkConfig`
  — the shared-medium network model.
* :class:`~repro.simnet.faults.FaultInjector` — crashes, partitions, loss.
* :class:`~repro.simnet.trace.Tracer` — structured event trace and counters.
"""

from repro.simnet.clock import PeriodicTimer
from repro.simnet.faults import FaultInjector
from repro.simnet.network import Network, NetworkConfig, ETHERNET_100MBPS
from repro.simnet.process import Process
from repro.simnet.scheduler import Event, Scheduler
from repro.simnet.trace import Tracer

__all__ = [
    "Event",
    "Scheduler",
    "PeriodicTimer",
    "Process",
    "Network",
    "NetworkConfig",
    "ETHERNET_100MBPS",
    "FaultInjector",
    "Tracer",
]
