"""Simulated processes.

A :class:`Process` models one operating-system process on one processor: it
can be crashed (losing all volatile state of the components it hosts) and
re-launched.  Components hosted on a process register crash/restart listeners
so the whole stack (ORB, Eternal mechanisms, Totem member) tears down and
rebuilds coherently — this is how the benches "kill and re-launch" a replica
exactly as the paper's experiments did.

All of the lifecycle machinery lives in :class:`repro.runtime.BaseHost`
(the live runtime's ``LiveHost`` shares it); this subclass only pins the
simulated-substrate types.
"""

from __future__ import annotations

from repro.runtime.host import BaseHost
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.simnet.scheduler import Scheduler


class Process(BaseHost):
    """One crashable simulated process identified by ``node_id``."""

    def __init__(
        self,
        scheduler: Scheduler,
        node_id: str,
        *,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(scheduler, node_id, tracer=tracer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Process {self.node_id} {state} inc={self.incarnation}>"
