"""Compatibility shim — timers moved to :mod:`repro.runtime.timers`.

:class:`PeriodicTimer` works over any :class:`repro.runtime.Scheduler`
(simulated or wall-clock); this module keeps historical
``repro.simnet.clock`` imports working.
"""

from repro.runtime.timers import PeriodicTimer  # noqa: F401

__all__ = ["PeriodicTimer"]
