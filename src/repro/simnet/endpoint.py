"""Per-node network endpoint with payload-type dispatch.

A node hosts several protocol layers at once (the Totem ring member, and —
for the unreplicated baseline used in the overhead benchmark — a raw
point-to-point channel).  :class:`Endpoint` owns the node's single network
attachment and routes incoming frames to the handler registered for the
frame's payload type.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from repro.simnet.network import Network
from repro.simnet.process import Process

Handler = Callable[[str, Any], None]


class Endpoint:
    """Routes a node's incoming frames by payload class.

    Handlers survive nothing: a process restart rebuilds the protocol stack,
    and each new layer re-registers its types, displacing the dead one.
    """

    def __init__(self, process: Process, network: Network) -> None:
        self.process = process
        self.network = network
        self._handlers: Dict[Type, Handler] = {}
        network.attach(process, self._dispatch)

    @property
    def node_id(self) -> str:
        return self.process.node_id

    def register(self, payload_type: Type, handler: Handler) -> None:
        """Route frames whose payload is an instance of ``payload_type``
        (exact class match first, then MRO walk) to ``handler``."""
        self._handlers[payload_type] = handler

    def unregister(self, payload_type: Type) -> None:
        self._handlers.pop(payload_type, None)

    def _dispatch(self, src: str, payload: Any) -> None:
        handler = self._handlers.get(type(payload))
        if handler is None:
            for base in type(payload).__mro__[1:]:
                handler = self._handlers.get(base)
                if handler is not None:
                    break
        if handler is not None:
            handler(src, payload)

    # Convenience passthroughs -----------------------------------------

    def unicast(self, dst: str, payload: Any, size_bytes: int) -> None:
        self.network.unicast(self.node_id, dst, payload, size_bytes)

    def broadcast(self, payload: Any, size_bytes: int) -> None:
        self.network.broadcast(self.node_id, payload, size_bytes)
