"""Per-node network endpoint with payload-type dispatch.

A node hosts several protocol layers at once (the Totem ring member, and —
for the unreplicated baseline used in the overhead benchmark — a raw
point-to-point channel).  :class:`Endpoint` is the simulator's
implementation of :class:`repro.runtime.Transport`: it owns the node's
single attachment to the modelled Ethernet segment and routes incoming
frames to the handler registered for the frame's payload type.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.interfaces import Transport
from repro.simnet.network import Network
from repro.simnet.process import Process


class Endpoint(Transport):
    """Routes a node's incoming frames by payload class.

    Handlers survive nothing: a process restart rebuilds the protocol stack,
    and each new layer re-registers its types, displacing the dead one.
    """

    def __init__(self, process: Process, network: Network) -> None:
        super().__init__(process)
        self.network = network
        network.attach(process, self.deliver)

    @property
    def mtu_payload(self) -> int:
        return self.network.config.mtu_payload

    # Convenience passthroughs -----------------------------------------

    def unicast(
        self, dst: str, payload: Any, size_bytes: int, *, oob: bool = False,
    ) -> None:
        self.network.unicast(self.node_id, dst, payload, size_bytes, oob=oob)

    def broadcast(self, payload: Any, size_bytes: int) -> None:
        self.network.broadcast(self.node_id, payload, size_bytes)
