"""Fault injection: crashes, restarts, network partitions and message loss.

The paper's experiments "killed and then re-launched" server replicas; its
design discussion also covers partitioned operation.  :class:`FaultInjector`
provides those events as first-class operations on a simulation, implemented
as process control plus drop filters on the :class:`~repro.simnet.network.Network`.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simnet.network import Network
from repro.simnet.trace import NULL_TRACER, Tracer


class FaultInjector:
    """Injects crash, partition, and loss faults into a simulation."""

    def __init__(
        self,
        network: Network,
        *,
        seed: int = 0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self._network = network
        self._tracer = tracer
        self._rng = random.Random(seed)
        self._partition_groups: Optional[List[frozenset]] = None
        self._loss_rate = 0.0
        self._partition_filter_installed = False
        self._loss_filter_installed = False

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Kill the process on ``node_id`` (volatile state is lost)."""
        self._tracer.emit("fault", "crash", node=node_id)
        self._network.process(node_id).crash()

    def restart(self, node_id: str) -> None:
        """Re-launch a previously crashed process."""
        self._tracer.emit("fault", "restart", node=node_id)
        self._network.process(node_id).restart()

    def crash_after(self, delay: float, node_id: str) -> None:
        """Schedule a crash ``delay`` simulated seconds from now."""
        self._network.scheduler.call_after(delay, self.crash, node_id)

    def restart_after(self, delay: float, node_id: str) -> None:
        """Schedule a restart ``delay`` simulated seconds from now."""
        self._network.scheduler.call_after(delay, self.restart, node_id)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the network into isolated groups of node ids.

        Frames between nodes in different groups are dropped; frames within a
        group flow normally.  Nodes not mentioned in any group are isolated.
        """
        frozen = [frozenset(g) for g in groups]
        seen: set = set()
        for group in frozen:
            if seen & group:
                raise SimulationError("partition groups must be disjoint")
            seen |= group
        self._partition_groups = frozen
        self._tracer.emit("fault", "partition",
                          groups=[sorted(g) for g in frozen])
        if not self._partition_filter_installed:
            self._network.add_filter(self._partition_drop)
            self._partition_filter_installed = True

    def heal(self) -> None:
        """Remove any partition; full connectivity is restored."""
        self._partition_groups = None
        self._tracer.emit("fault", "heal")

    def _partition_drop(self, src: str, dst: str, payload: Any, size: int) -> bool:
        if self._partition_groups is None:
            return False
        if src == dst:
            return False  # loopback never traverses the wire
        for group in self._partition_groups:
            if src in group:
                return dst not in group
        return True  # src not in any group: isolated

    # ------------------------------------------------------------------
    # Message loss
    # ------------------------------------------------------------------

    def set_loss_rate(self, rate: float) -> None:
        """Drop each (src, dst) frame copy independently with probability
        ``rate``.  Totem's retransmission machinery must recover the gaps."""
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"loss rate {rate!r} outside [0, 1]")
        self._loss_rate = rate
        self._tracer.emit("fault", "loss_rate", rate=rate)
        if rate > 0.0 and not self._loss_filter_installed:
            self._network.add_filter(self._loss_drop)
            self._loss_filter_installed = True

    def _loss_drop(self, src: str, dst: str, payload: Any, size: int) -> bool:
        if self._loss_rate <= 0.0:
            return False
        if src == dst:
            return False  # local loopback never traverses the wire
        return self._rng.random() < self._loss_rate
