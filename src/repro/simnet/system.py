"""The :class:`EternalSystem` facade: a whole *simulated* Eternal deployment.

The substrate-neutral assembly (node stacks, managers, group handles,
introspection) lives in :class:`repro.core.system.SystemCore`; this
subclass supplies the discrete-event world: the simulated scheduler, the
modelled Ethernet segment, and scripted fault injection.  The wall-clock
counterpart is :class:`repro.live.system.LiveSystem`.

Typical use::

    system = EternalSystem(["n1", "n2", "n3"])
    system.register_factory("IDL:Counter:1.0", CounterServant)
    group = system.create_group("counter", "IDL:Counter:1.0",
                                FTProperties(initial_replicas=2))
    system.run_for(0.05)              # let the ring form and deploy
    ...
    system.kill_node("n2")            # fault injection
    system.restart_node("n2")         # re-launch; recovery synchronizes it
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import EternalConfig
from repro.core.system import SystemCore
from repro.errors import UnknownNode
from repro.runtime.interfaces import Host, Transport
from repro.simnet.endpoint import Endpoint
from repro.simnet.faults import FaultInjector
from repro.simnet.network import ETHERNET_100MBPS, Network, NetworkConfig
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.totem.config import TotemConfig


class EternalSystem(SystemCore):
    """A complete simulated deployment of the Eternal system."""

    def __init__(
        self,
        node_ids: List[str],
        *,
        seed: int = 0,
        network_config: NetworkConfig = ETHERNET_100MBPS,
        totem_config: Optional[TotemConfig] = None,
        eternal_config: Optional[EternalConfig] = None,
        manager_node: Optional[str] = None,
        keep_trace_records: bool = False,
        telemetry=None,
        profiling=None,
        store_factory=None,
        scheduler: Optional[Scheduler] = None,
        shared_observability=None,
        ring_name: str = "",
    ) -> None:
        # A sharded facade passes one shared scheduler so every ring's
        # events interleave on one simulated clock (rotations still
        # proceed in parallel: each ring has its own network medium).
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._init_core(
            node_ids,
            totem_config=totem_config,
            eternal_config=eternal_config,
            manager_node=manager_node,
            keep_trace_records=keep_trace_records,
            telemetry=telemetry,
            profiling=profiling,
            store_factory=store_factory,
            shared_observability=shared_observability,
            ring_name=ring_name,
        )
        self.network = Network(self.scheduler, network_config,
                               tracer=self.tracer)
        self.faults = FaultInjector(self.network, seed=seed,
                                    tracer=self.tracer)
        for node_id in node_ids:
            self._add_stack(Process(self.scheduler, node_id,
                                    tracer=self.tracer))
        # All nodes are up at t=0; view events keep this current afterwards.
        self.resource_manager.set_alive(set(node_ids))

    def _make_transport(self, process: Host) -> Transport:
        return Endpoint(process, self.network)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_until(self, time: float) -> None:
        self.scheduler.run_until(time)

    def run_for(self, duration: float) -> None:
        self.scheduler.run_until(self.scheduler.now + duration)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 10.0) -> bool:
        """Run until ``predicate()`` is true; False on timeout."""
        return self.scheduler.run_while(lambda: not predicate(), timeout)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        if node_id not in self.stacks:
            raise UnknownNode(node_id)
        self.faults.crash(node_id)

    def restart_node(self, node_id: str) -> None:
        if node_id not in self.stacks:
            raise UnknownNode(node_id)
        self.faults.restart(node_id)
