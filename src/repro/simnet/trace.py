"""Compatibility shim — the tracer moved to :mod:`repro.runtime.trace`.

It is substrate-independent (the live runtime uses it too); this module
keeps historical ``repro.simnet.trace`` imports working.
"""

from repro.runtime.trace import (  # noqa: F401
    NULL_TRACER,
    NullTracer,
    TraceRecord,
    Tracer,
)

__all__ = ["NULL_TRACER", "NullTracer", "TraceRecord", "Tracer"]
