"""Structured event tracing and counters.

Benches and tests observe the system through a :class:`Tracer`: every layer
emits ``(time, category, event, fields)`` records and bumps named counters.
The Figure-6 bench, for instance, counts ``totem.frame`` events to verify that
recovery time grows with the number of multicast frames carrying the state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.6f}] {self.category}.{self.event} {kv}"


class Tracer:
    """Collects trace records and counters.

    ``enabled_categories`` restricts record retention (counters always
    update); record retention can be disabled entirely for long benches with
    ``keep_records=False``.
    """

    def __init__(
        self,
        *,
        keep_records: bool = True,
        enabled_categories: Optional[set] = None,
    ) -> None:
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._keep_records = keep_records
        self._enabled = enabled_categories
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._now: Callable[[], float] = lambda: 0.0

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Attach the simulation clock so records carry simulated time."""
        self._now = now

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Register a live callback invoked for every emitted record."""
        self._subscribers.append(fn)

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record an event and bump its counter (``category.event``)."""
        self.counters[f"{category}.{event}"] += 1
        if not self._keep_records and not self._subscribers:
            return
        if self._enabled is not None and category not in self._enabled:
            return
        record = TraceRecord(self._now(), category, event, fields)
        if self._keep_records:
            self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def count(self, key: str) -> int:
        """Counter value for ``category.event`` (0 if never emitted)."""
        return self.counters.get(key, 0)

    def add(self, key: str, amount: int) -> None:
        """Bump an arbitrary named counter by ``amount`` (e.g. bytes sent)."""
        self.counters[key] += amount

    def find(self, category: str, event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records matching category (and optionally event)."""
        for record in self.records:
            if record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def clear(self) -> None:
        """Drop retained records and reset all counters."""
        self.records.clear()
        self.counters.clear()


NULL_TRACER = Tracer(keep_records=False)
"""A shared do-almost-nothing tracer for components created without one."""
