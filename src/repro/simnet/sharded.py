"""Sharded simulated deployments: many Totem rings, one facade.

One Totem ring serialises all of its traffic through one token
rotation, so aggregate throughput is bounded no matter how many nodes
join.  :class:`ShardedEternalSystem` breaks that bound by running N
independent :class:`~repro.simnet.system.EternalSystem` sub-systems —
each with its own simulated Ethernet segment, its own token rotation,
its own managers — on one shared scheduler, behind:

* a consistent-hashing placement layer
  (:class:`repro.core.placement.HashRing`) mapping object groups to
  rings, with explicit pins taking precedence, so clients resolve
  placement *before* dispatch and the common case never crosses rings;
* a cross-ring :class:`~repro.core.gateway.GatewayBridge` for the
  uncommon case, with per-target-ring duplicate suppression keyed on
  the interceptor's operation ids;
* one shared observability plane (tracer, metrics, telemetry,
  profiler) whose records carry ``ring=<name>`` labels, so per-ring
  health and audit scoping fall out of the trace stream.

Typical use::

    system = ShardedEternalSystem(rings=4)
    system.register_factory("IDL:Counter:1.0", CounterServant)
    group = system.create_group("counter", "IDL:Counter:1.0")
    system.run_for(0.1)               # all rings form in parallel
    system.kill_node(group.operational_nodes()[0])   # one ring degrades;
    ...                                              # the others don't notice
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import EternalConfig
from repro.core.gateway import GatewayBridge
from repro.core.placement import HashRing
from repro.core.system import GroupHandle, SharedObservability
from repro.errors import SimulationError, UnknownNode
from repro.ftcorba.properties import FTProperties
from repro.obs.exporters import export_chrome_trace, export_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import ProfilingConfig, SpanResourceProfiler
from repro.obs.telemetry import TelemetryConfig, TelemetryPlane
from repro.runtime.trace import Tracer
from repro.simnet.network import ETHERNET_100MBPS, NetworkConfig
from repro.simnet.scheduler import Scheduler
from repro.simnet.system import EternalSystem
from repro.totem.config import TotemConfig

#: Default node layout inside each ring: one manager + two servers.
DEFAULT_NODE_TEMPLATE: Sequence[str] = ("m", "s1", "s2")


def ring_label(index: int) -> str:
    """The canonical shard name for ring ``index`` (``r0``, ``r1``, ...)."""
    return f"r{index}"


class ShardedEternalSystem:
    """N independent simulated rings behind one placement + routing layer.

    Every ring gets the node ids ``<ring>.<suffix>`` for each suffix in
    ``node_template`` (the first suffix hosts that ring's managers), a
    per-ring seed (``seed + index``), and a :class:`TotemConfig` whose
    ``ring_name`` namespaces its order digests and rotation spans in the
    shared trace stream.
    """

    def __init__(
        self,
        rings: int = 2,
        *,
        node_template: Sequence[str] = DEFAULT_NODE_TEMPLATE,
        seed: int = 0,
        network_config: NetworkConfig = ETHERNET_100MBPS,
        totem_config: Optional[TotemConfig] = None,
        eternal_config: Optional[EternalConfig] = None,
        keep_trace_records: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
        profiling: Optional[ProfilingConfig] = None,
        store_factory=None,
        virtual_nodes: int = 64,
    ) -> None:
        if rings < 1:
            raise SimulationError("need at least one ring")
        if not node_template:
            raise SimulationError("need at least one node per ring")
        # One scheduler: every ring's events interleave on one simulated
        # clock, so rotations genuinely proceed in parallel wall-clock-wise
        # while staying deterministic.
        self.scheduler = Scheduler()
        # One observability plane for the whole cluster.  Each ring adopts
        # it through a scoped tracer view stamping ``ring=<name>``.
        self.tracer = Tracer(keep_records=keep_trace_records)
        self.tracer.bind_clock(lambda: self.scheduler.now)
        self.metrics = MetricsRegistry()
        self.metrics.bind(self.tracer)
        self.telemetry = TelemetryPlane(
            telemetry or TelemetryConfig(),
            tracer=self.tracer, metrics=self.metrics,
            clock=lambda: self.scheduler.now,
        )
        self.telemetry.bind_system(self)
        if self.telemetry.enabled:
            self.telemetry.start_sampler(self.scheduler)
        self.profiler = SpanResourceProfiler(
            profiling or ProfilingConfig(), metrics=self.metrics,
        ).attach(self.tracer)
        shared = SharedObservability(
            tracer=self.tracer, metrics=self.metrics,
            telemetry=self.telemetry, profiler=self.profiler,
        )
        self.auditor = None
        # Placement: hash by default, explicit pins win.  Both sides of the
        # resolver are deterministic, so every client routes identically.
        self.placement = HashRing(virtual_nodes=virtual_nodes)
        self._pinned: Dict[str, str] = {}
        self.bridge = GatewayBridge(self.resolve_ring, tracer=self.tracer)
        self.rings: Dict[str, EternalSystem] = {}
        base_totem = totem_config or TotemConfig()
        for index in range(rings):
            name = ring_label(index)
            sub = EternalSystem(
                [f"{name}.{suffix}" for suffix in node_template],
                seed=seed + index,
                network_config=network_config,
                totem_config=replace(base_totem, ring_name=name),
                eternal_config=eternal_config,
                store_factory=store_factory,
                scheduler=self.scheduler,
                shared_observability=shared,
                ring_name=name,
            )
            port = self.bridge.register_ring(name, sub)
            # The initial stacks were built before the port existed;
            # install it directly.  ``gateway_port`` covers every rebuild
            # after a restart (see NodeStack.build).
            sub.gateway_port = port
            for stack in sub.stacks.values():
                stack.mechanisms.gateway = port
            self.placement.add_shard(name)
            self.rings[name] = sub

    # ------------------------------------------------------------------
    # Placement and routing
    # ------------------------------------------------------------------

    def resolve_ring(self, group_id: str) -> Optional[str]:
        """The ring owning ``group_id``: its pin if deployed explicitly,
        else the consistent-hash owner."""
        pinned = self._pinned.get(group_id)
        if pinned is not None:
            return pinned
        return self.placement.owner_of(group_id)

    def ring(self, name: str) -> EternalSystem:
        try:
            return self.rings[name]
        except KeyError:
            raise SimulationError(f"no ring named {name!r}") from None

    def ring_of_node(self, node_id: str) -> EternalSystem:
        for sub in self.rings.values():
            if node_id in sub.stacks:
                return sub
        raise UnknownNode(node_id)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def register_factory(self, type_id: str, factory: Callable,
                         *, version: int = 0,
                         ring: Optional[str] = None) -> None:
        """Register a servant factory on every ring (or just one)."""
        targets = [self.ring(ring)] if ring else self.rings.values()
        for sub in targets:
            sub.register_factory(type_id, factory, version=version)

    def create_group(self, group_id: str, type_id: str,
                     properties: Optional[FTProperties] = None,
                     nodes: Optional[List[str]] = None,
                     ring: Optional[str] = None) -> GroupHandle:
        """Deploy a group onto its placement-resolved ring (or pin it to
        ``ring`` / the ring hosting ``nodes``).  The returned handle is
        bound to the owning sub-system, so all introspection stays
        ring-scoped."""
        if ring is None and nodes:
            ring = self.ring_of_node(nodes[0]).ring_name
        if ring is None:
            ring = self.placement.owner_of(group_id)
        sub = self.ring(ring)
        if nodes is not None:
            for node_id in nodes:
                if node_id not in sub.stacks:
                    raise SimulationError(
                        f"node {node_id!r} is not in ring {ring!r}; groups "
                        f"cannot span rings"
                    )
        self._pinned[group_id] = ring
        return sub.create_group(group_id, type_id, properties, nodes)

    # ------------------------------------------------------------------
    # Running (one shared clock)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_until(self, time: float) -> None:
        self.scheduler.run_until(time)

    def run_for(self, duration: float) -> None:
        self.scheduler.run_until(self.scheduler.now + duration)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float = 10.0) -> bool:
        """Run until ``predicate()`` is true; False on timeout."""
        return self.scheduler.run_while(lambda: not predicate(), timeout)

    def ring_formed(self) -> bool:
        """True when every ring has formed (all live members operational
        in one view, per ring)."""
        return all(sub.ring_formed() for sub in self.rings.values())

    # ------------------------------------------------------------------
    # Faults (routed to the owning ring)
    # ------------------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        self.ring_of_node(node_id).kill_node(node_id)

    def restart_node(self, node_id: str) -> None:
        self.ring_of_node(node_id).restart_node(node_id)

    # ------------------------------------------------------------------
    # Introspection (node ids are globally unique: ``<ring>.<suffix>``)
    # ------------------------------------------------------------------

    @property
    def stacks(self) -> Dict[str, "object"]:
        """All rings' stacks in one mapping (telemetry polls this)."""
        merged = {}
        for sub in self.rings.values():
            merged.update(sub.stacks)
        return merged

    def stack(self, node_id: str):
        return self.ring_of_node(node_id).stack(node_id)

    def mechanisms(self, node_id: str):
        return self.ring_of_node(node_id).mechanisms(node_id)

    def attach_auditor(self, auditor=None):
        """One auditor for the whole cluster: records carry ``ring=``
        labels, so its shadow state (and findings) are ring-scoped."""
        if auditor is None:
            from repro.obs.audit import ConsistencyAuditor
            auditor = ConsistencyAuditor(metrics=self.metrics)
        self.auditor = auditor.bind(self.tracer)
        if self.telemetry.enabled:
            self.auditor.on_finding = self.telemetry.flight.record_finding
        return self.auditor

    def close_stores(self) -> None:
        for sub in self.rings.values():
            sub.close_stores()

    def export_trace(self, path: str, *, fmt: str = "chrome") -> int:
        """Export the shared trace (all rings, ``ring=``-labelled)."""
        if fmt == "chrome":
            return export_chrome_trace(self.tracer.records, path)
        if fmt == "jsonl":
            return export_jsonl(self.tracer.records, path)
        raise ValueError(f"unknown trace format {fmt!r}")
