"""An Ethernet-like shared-medium network model.

The paper's testbed was a 100 Mbps Ethernet whose 1518-byte maximum frame
size forces Eternal/Totem to fragment any larger IIOP message into multiple
multicast packets — the effect that shapes Figure 6.  This model reproduces
the mechanism:

* the medium is **shared and serialized**: one frame occupies it at a time,
  so concurrent senders queue behind each other;
* each frame pays fixed per-frame overhead (header, FCS, preamble, inter-frame
  gap) in addition to its payload bytes;
* a payload larger than the MTU payload capacity is **rejected** — callers
  (the Totem fragmentation layer) must fragment, exactly as the paper states.

Payloads are opaque Python objects with an explicit ``size_bytes``; the model
charges time for the declared size, so layers must declare honest sizes (the
GIOP layer produces real byte strings, so sizes are exact there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.errors import NetworkError, UnknownNode
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.simnet.trace import NULL_TRACER, Tracer

# A filter sees (src, dst, payload, size_bytes) and returns True to DROP.
DropFilter = Callable[[str, str, Any, int], bool]
DeliverFn = Callable[[str, Any], None]

ETHERNET_FRAME_MAX = 1518      # bytes, incl. MAC header + FCS (paper's figure)
ETHERNET_HEADER = 18           # MAC header (14) + FCS (4)
ETHERNET_SILENCE = 20          # preamble (8) + inter-frame gap (12), in byte-times


@dataclass(frozen=True)
class NetworkConfig:
    """Physical parameters of the medium.

    ``mtu_payload`` is the largest payload a single frame can carry
    (1518 - 18 = 1500 for classic Ethernet).  ``propagation_delay`` covers
    signal propagation plus NIC/driver latency per frame.
    """

    bandwidth_bps: float = 100e6
    propagation_delay: float = 50e-6
    frame_max: int = ETHERNET_FRAME_MAX
    frame_header: int = ETHERNET_HEADER
    frame_silence: int = ETHERNET_SILENCE
    per_frame_cpu: float = 30e-6   # send+receive protocol processing per frame
    #: Bandwidth of the out-of-band data lane: a dedicated point-to-point
    #: interconnect (think a second NIC on a switched full-duplex fabric,
    #: the classic "separate replication network") that bulk unicast may
    #: use instead of the shared broadcast segment.  Each ordered
    #: ``(src, dst)`` pair is an independent serialized link, so bulk
    #: transfers neither contend with the ordered multicast stream nor
    #: with each other across different links.
    oob_bandwidth_bps: float = 1e9

    @property
    def mtu_payload(self) -> int:
        return self.frame_max - self.frame_header

    def frame_time(self, payload_bytes: int) -> float:
        """Seconds the medium is occupied by one frame with this payload."""
        wire_bytes = payload_bytes + self.frame_header + self.frame_silence
        return wire_bytes * 8.0 / self.bandwidth_bps

    def oob_frame_time(self, payload_bytes: int) -> float:
        """Seconds one out-of-band link is occupied by one frame."""
        wire_bytes = payload_bytes + self.frame_header + self.frame_silence
        return wire_bytes * 8.0 / self.oob_bandwidth_bps


ETHERNET_100MBPS = NetworkConfig()
"""The paper's medium: 100 Mbps Ethernet, 1518-byte frames."""


class Network:
    """The shared medium connecting all simulated processes.

    Nodes attach with a delivery callback; :meth:`unicast` and
    :meth:`broadcast` move single frames.  Loss and partitions are imposed by
    registered drop filters (see :mod:`repro.simnet.faults`).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        config: NetworkConfig = ETHERNET_100MBPS,
        *,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.tracer = tracer
        self._nodes: Dict[str, Process] = {}
        self._handlers: Dict[str, DeliverFn] = {}
        self._filters: List[DropFilter] = []
        self._medium_free_at = 0.0
        self._link_free_at: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, process: Process, deliver: DeliverFn) -> None:
        """Attach a process; ``deliver(src_node_id, payload)`` is called for
        each frame that reaches it while it is alive."""
        self._nodes[process.node_id] = process
        self._handlers[process.node_id] = deliver

    def set_handler(self, node_id: str, deliver: DeliverFn) -> None:
        """Replace the delivery callback (used when a stack is rebuilt
        after a process restart)."""
        if node_id not in self._nodes:
            raise UnknownNode(node_id)
        self._handlers[node_id] = deliver

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def process(self, node_id: str) -> Process:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNode(node_id) from None

    # ------------------------------------------------------------------
    # Fault filters
    # ------------------------------------------------------------------

    def add_filter(self, fn: DropFilter) -> None:
        self._filters.append(fn)

    def remove_filter(self, fn: DropFilter) -> None:
        self._filters.remove(fn)

    def _dropped(self, src: str, dst: str, payload: Any, size: int) -> bool:
        return any(f(src, dst, payload, size) for f in self._filters)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _occupy_medium(self, size_bytes: int) -> float:
        """Serialize one frame onto the shared medium; returns arrival time."""
        now = self.scheduler.now
        start = max(now, self._medium_free_at)
        tx_time = self.config.frame_time(size_bytes)
        self._medium_free_at = start + tx_time
        return self._medium_free_at + self.config.propagation_delay \
            + self.config.per_frame_cpu

    def _check_size(self, size_bytes: int) -> None:
        if size_bytes < 0:
            raise NetworkError(f"negative frame size {size_bytes}")
        if size_bytes > self.config.mtu_payload:
            raise NetworkError(
                f"frame payload {size_bytes} exceeds MTU payload "
                f"{self.config.mtu_payload}; fragment before sending"
            )

    def _occupy_link(self, src: str, dst: str, size_bytes: int) -> float:
        """Serialize one frame onto the dedicated out-of-band link from
        ``src`` to ``dst``; returns arrival time.  Each ordered pair is an
        independent full-duplex link, so out-of-band frames contend neither
        with the shared broadcast medium nor with other links."""
        key = (src, dst)
        now = self.scheduler.now
        start = max(now, self._link_free_at.get(key, 0.0))
        tx_time = self.config.oob_frame_time(size_bytes)
        self._link_free_at[key] = start + tx_time
        return self._link_free_at[key] + self.config.propagation_delay \
            + self.config.per_frame_cpu

    def unicast(
        self, src: str, dst: str, payload: Any, size_bytes: int,
        *, oob: bool = False,
    ) -> None:
        """Send one frame from ``src`` to ``dst``.

        With ``oob=True`` the frame travels the out-of-band point-to-point
        lane (see :attr:`NetworkConfig.oob_bandwidth_bps`) instead of the
        shared broadcast segment.  Drop filters and MTU limits apply on
        both lanes.
        """
        if dst not in self._nodes:
            raise UnknownNode(dst)
        self._check_size(size_bytes)
        kind = "oob_unicast" if oob else "unicast"
        self.tracer.emit("net", kind, src=src, dst=dst, size=size_bytes)
        self.tracer.add("net.bytes", size_bytes)
        if oob:
            arrival = self._occupy_link(src, dst, size_bytes)
        else:
            arrival = self._occupy_medium(size_bytes)
        if self._dropped(src, dst, payload, size_bytes):
            self.tracer.emit("net", "drop", src=src, dst=dst)
            return
        self.scheduler.call_at(arrival, self._deliver, src, dst, payload)

    def broadcast(self, src: str, payload: Any, size_bytes: int) -> None:
        """Send one frame from ``src`` to every attached node, including the
        sender (multicast loopback, as Totem relies on seeing its own
        messages in the total order)."""
        self._check_size(size_bytes)
        self.tracer.emit("net", "broadcast", src=src, size=size_bytes)
        self.tracer.add("net.bytes", size_bytes)
        arrival = self._occupy_medium(size_bytes)
        for dst in self._nodes:
            if self._dropped(src, dst, payload, size_bytes):
                self.tracer.emit("net", "drop", src=src, dst=dst)
                continue
            self.scheduler.call_at(arrival, self._deliver, src, dst, payload)

    def _deliver(self, src: str, dst: str, payload: Any) -> None:
        process = self._nodes.get(dst)
        if process is None or not process.alive:
            self.tracer.emit("net", "dead_dst", src=src, dst=dst)
            return
        handler = self._handlers.get(dst)
        if handler is not None:
            handler(src, payload)
