"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — deploy a replicated counter, kill/recover a replica, and
                  narrate the §5.1 protocol from the trace.
* ``fig6``      — quick reproduction of the paper's Figure 6 sweep.
* ``styles``    — compare active / warm passive / cold passive at a fault.
* ``version``   — print the library version.
"""

from __future__ import annotations

import argparse
import sys

import repro


def _cmd_version(_args) -> int:
    print(f"repro {repro.__version__} — Eternal (DSN 2001) reproduction")
    return 0


def _cmd_demo(args) -> int:
    from repro.bench.deployments import build_client_server
    from repro.ftcorba.properties import ReplicationStyle
    from repro.tools import recovery_summary, render_timeline

    print(f"deploying: 2-way active kv-store ({args.state_size} B state) "
          f"+ packet driver …")
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=args.state_size,
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    kill_time = system.now
    print("killing replica s2, re-launching after 100 ms (simulated) …")
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    system.run_for(0.2)
    print("\ntimeline:")
    print(render_timeline(system.tracer,
                          categories={"fault", "process", "recovery"},
                          since=kill_time, group="store"))
    for summary in recovery_summary(system.tracer):
        print(f"\nrecovered {summary.group}@{summary.node} in "
              f"{(summary.duration or 0) * 1000:.2f} ms "
              f"({summary.state_bytes} B of state)")
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    print(f"consistency: s1={s1.echo_count} s2={s2.echo_count} "
          f"equal={s1.echo_count == s2.echo_count}")
    return 0 if s1.echo_count == s2.echo_count else 1


def _cmd_fig6(args) -> int:
    from repro.bench.deployments import build_client_server, measure_recovery
    from repro.bench.reporting import print_table
    from repro.ftcorba.properties import ReplicationStyle

    sizes = [10, 1_000, 10_000, 50_000, 100_000, 200_000, 350_000]
    if args.quick:
        sizes = [10, 10_000, 100_000, 350_000]
    rows = []
    for size in sizes:
        deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                         server_replicas=2,
                                         state_size=size, warmup=0.2)
        recovery_time = measure_recovery(deployment, "s2")
        rows.append([size, round(recovery_time * 1000, 3)])
    print_table("Figure 6 — recovery time vs application-level state size",
                ["state_bytes", "recovery_ms"], rows,
                paper_note="flat below one Ethernet frame, then linear in "
                           "the fragment count")
    return 0


def _cmd_styles(_args) -> int:
    from repro.bench.deployments import build_client_server
    from repro.bench.reporting import print_table
    from repro.ftcorba.properties import ReplicationStyle

    rows = []
    for style in (ReplicationStyle.ACTIVE, ReplicationStyle.WARM_PASSIVE,
                  ReplicationStyle.COLD_PASSIVE):
        deployment = build_client_server(style=style, server_replicas=2,
                                         state_size=20_000,
                                         checkpoint_interval=0.2,
                                         warmup=0.2)
        system = deployment.system
        driver = deployment.driver
        system.run_for(0.5)
        victim = (deployment.server_group.primary_node()
                  if style.is_passive else "s1")
        acked = driver.acked
        kill_time = system.now
        system.kill_node(victim)
        system.wait_for(lambda: driver.acked > acked + 20, timeout=5.0)
        rows.append([style.value,
                     round((system.now - kill_time) * 1000, 2)])
    print_table("Replication styles — client-visible disruption at a fault",
                ["style", "disruption_ms"], rows,
                paper_note="active: faster recovery; passive: fewer "
                           "resources (§6)")
    return 0


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Eternal (DSN 2001) reproduction — demos and sweeps",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("version", help="print the version")
    demo = sub.add_parser("demo", help="kill/recover demo with timeline")
    demo.add_argument("--state-size", type=int, default=50_000,
                      help="application-level state size in bytes")
    fig6 = sub.add_parser("fig6", help="Figure 6 sweep")
    fig6.add_argument("--quick", action="store_true",
                      help="fewer sweep points")
    sub.add_parser("styles", help="replication-style disruption comparison")
    args = parser.parse_args(argv)
    handlers = {
        "version": _cmd_version,
        "demo": _cmd_demo,
        "fig6": _cmd_fig6,
        "styles": _cmd_styles,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
