"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — deploy a replicated counter, kill/recover a replica, and
                  narrate the §5.1 protocol from the trace (``--trace-out``
                  additionally exports the run as a Chrome trace).
* ``fig6``      — quick reproduction of the paper's Figure 6 sweep, with
                  per-phase latency percentiles from the metrics registry
                  (``--no-bulk-lane`` restores the paper's purely in-order
                  state transfer).
* ``recovery-scale`` — recovery time and concurrent request throughput
                  vs large state sizes, exercising the out-of-band bulk
                  lane (``--no-bulk-lane`` for the in-order ablation).
* ``checkpoint`` — warm-passive checkpoint transfer cost vs state size
                  under a ~10%-dirty workload (delta state transfer;
                  ``--no-delta`` restores the paper's full snapshots).
* ``throughput`` — open-loop wire-bound throughput sweep exercising
                  token-rotation frame packing (``--no-packing`` to
                  disable).
* ``cold-restart`` — durable-journal restart economics: warm-journal vs
                  no-store state bytes over the wire, and a full-cluster
                  kill recovered by cold-boot election from the journals
                  (gated at a ≥10x wire saving).
* ``store``     — inspect (and optionally compact) the durable journals
                  under a ``live --store-dir``.
* ``styles``    — compare active / warm passive / cold passive at a fault.
* ``trace``     — run the kill/recover scenario and export the trace (Chrome
                  ``trace_event`` JSON and/or JSONL) for Perfetto.
* ``metrics``   — run a short workload and print the metrics registry
                  (``--watch <sec>`` re-renders in place as the scenario
                  unfolds instead of one final dump).
* ``health``    — run kill/recover, audit the trace for consistency
                  violations, and print the Prometheus-style health
                  exposition (exit 1 on audit findings; ``--watch``
                  re-renders live like ``metrics``).
* ``top``       — live-refreshing per-node table of the telemetry plane's
                  sampled series (rotation latency, queue depths, token
                  RTT); drives a simulated kill/recover by default, or
                  polls a live node's ``/metrics/history`` with ``--url``.
* ``obs-overhead`` — wall-clock cost of the telemetry plane on the
                  fault-free throughput workload, gated at ≤3%.
* ``profile``   — run the kill/recover scenario with span-scoped resource
                  attribution and a sampling stack profiler: per-phase
                  cost table (wall vs CPU vs allocs, plus syscalls with
                  ``--live``) and a ``.folded`` flame-graph artifact.
* ``prof-overhead`` — wall-clock cost of the profiler itself, gated:
                  disabled must cost exactly nothing, enabled ≤5%.
* ``live``      — run the stack over real loopback-UDP sockets and
                  wall-clock time (see :mod:`repro.live`): form a ring,
                  kill and recover a replica under closed-loop load, and
                  report the wall-clock recovery latency.
* ``version``   — print the library version.

Every command exits non-zero on its failure paths (regressions, audit
findings, timeouts, unreadable baselines), so they can gate CI directly.
"""

from __future__ import annotations

import argparse
import sys

import repro


def _cmd_version(_args) -> int:
    print(f"repro {repro.__version__} — Eternal (DSN 2001) reproduction")
    return 0


def _run_kill_recover(state_size: int):
    """Deploy the kv-store, kill and recover replica s2, return the
    deployment with a fully retained trace (shared by demo/trace/metrics)."""
    from repro.bench.deployments import build_client_server
    from repro.ftcorba.properties import ReplicationStyle

    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=state_size,
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    deployment.kill_time = system.now
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    system.run_for(0.2)
    return deployment


def _audit_retained_trace(system):
    """Replay the system's retained trace through a fresh auditor."""
    from repro.obs.audit import ConsistencyAuditor

    auditor = ConsistencyAuditor.from_records(system.tracer.records,
                                              metrics=system.metrics)
    auditor.finish()
    return auditor


def _watch_kill_recover(args, render) -> int:
    """--watch mode shared by ``metrics`` and ``health``: advance the
    kill/recover scenario in ``--watch``-second steps of simulated time,
    clearing the terminal and re-rendering after each step.  The kill and
    re-launch are pre-scheduled inside the watch window so the rendered
    series visibly react to the fault."""
    from repro.bench.deployments import build_client_server
    from repro.ftcorba.properties import ReplicationStyle

    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=args.state_size,
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    system.attach_auditor()
    horizon = args.watch * args.watch_count
    system.faults.crash_after(horizon * 0.3, "s2")
    system.faults.restart_after(horizon * 0.5, "s2")
    for tick in range(1, args.watch_count + 1):
        system.run_for(args.watch)
        sys.stdout.write("\x1b[2J\x1b[H")     # clear + home: render in place
        print(f"t={system.now:.3f}s simulated — tick {tick}/"
              f"{args.watch_count} (interval {args.watch}s; s2 killed at "
              f"{horizon * 0.3:.2f}s, re-launched at {horizon * 0.5:.2f}s)")
        print(render(system))
        sys.stdout.flush()
    return 0


def _cmd_health(args) -> int:
    from repro.obs.health import parse_exposition, render_health

    if args.watch:
        return _watch_kill_recover(
            args,
            lambda system: render_health(system, auditor=system.auditor))

    print(f"running kill/recover scenario ({args.state_size} B state) …",
          file=sys.stderr)
    deployment = _run_kill_recover(args.state_size)
    system = deployment.system
    auditor = _audit_retained_trace(system)
    exposition = render_health(system, auditor=auditor)
    try:
        parse_exposition(exposition)
    except ValueError as exc:
        print(f"error: health exposition failed its self-check: {exc}",
              file=sys.stderr)
        return 2
    print(exposition, end="")
    print(auditor.summary(), file=sys.stderr)
    return 0 if auditor.ok else 1


def _cmd_demo(args) -> int:
    from repro.tools import recovery_summary, render_phase_table, \
        render_timeline

    print(f"deploying: 2-way active kv-store ({args.state_size} B state) "
          f"+ packet driver …")
    print("killing replica s2, re-launching after 100 ms (simulated) …")
    deployment = _run_kill_recover(args.state_size)
    system = deployment.system
    print("\ntimeline:")
    print(render_timeline(system.tracer,
                          categories={"fault", "process", "recovery"},
                          since=deployment.kill_time, group="store"))
    for summary in recovery_summary(system.tracer):
        print(f"\nrecovered {summary.group}@{summary.node} in "
              f"{(summary.duration or 0) * 1000:.2f} ms "
              f"({summary.state_bytes} B of state)")
    print("\nper-phase breakdown (§5.1 steps i–vi):")
    print(render_phase_table(system.tracer))
    if args.trace_out:
        written = system.export_trace(args.trace_out, fmt=args.trace_format)
        print(f"\nwrote {written} trace events to {args.trace_out} "
              f"({args.trace_format})")
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    print(f"consistency: s1={s1.echo_count} s2={s2.echo_count} "
          f"equal={s1.echo_count == s2.echo_count}")
    audit_ok = True
    if args.health:
        from repro.obs.health import render_health
        auditor = _audit_retained_trace(system)
        audit_ok = auditor.ok
        print("\nhealth snapshot:")
        print(render_health(system, auditor=auditor), end="")
        print(auditor.summary())
    return 0 if s1.echo_count == s2.echo_count and audit_ok else 1


def _cmd_trace(args) -> int:
    from repro.obs.spans import SpanTracker

    print(f"running kill/recover scenario ({args.state_size} B state) …")
    deployment = _run_kill_recover(args.state_size)
    system = deployment.system
    tracker = SpanTracker.from_tracer(system.tracer)
    complete = sum(1 for s in tracker.spans if s.complete)
    print(f"captured {len(system.tracer.records)} trace records, "
          f"{complete} complete spans "
          f"({len(tracker.unfinished)} unfinished)")
    if not args.out and not args.jsonl_out:
        print("nothing to write — pass --out and/or --jsonl-out")
        return 2
    if args.out:
        written = system.export_trace(args.out, fmt="chrome")
        print(f"wrote {written} Chrome trace events to {args.out} "
              f"(open in Perfetto or chrome://tracing)")
    if args.jsonl_out:
        written = system.export_trace(args.jsonl_out, fmt="jsonl")
        print(f"wrote {written} JSONL records to {args.jsonl_out}")
    return 0


def _cmd_metrics(args) -> int:
    if args.watch:
        return _watch_kill_recover(
            args,
            lambda system: system.metrics.format_table(
                prefix=args.prefix, scale=1000.0, unit="ms"))

    print(f"running kill/recover scenario ({args.state_size} B state) …")
    deployment = _run_kill_recover(args.state_size)
    system = deployment.system
    print("\nmetrics registry (durations in ms):")
    print(system.metrics.format_table(prefix=args.prefix, scale=1000.0,
                                      unit="ms"))
    return 0


def _cmd_top(args) -> int:
    import json
    import time as wallclock

    from repro.obs.telemetry import render_top

    if args.url:
        # Poll a live node's /metrics/history endpoint.
        import urllib.error
        import urllib.request
        endpoint = args.url.rstrip("/") + "/metrics/history"
        saw_profile_series = False
        for tick in range(args.count):
            try:
                with urllib.request.urlopen(endpoint, timeout=5.0) as resp:
                    snapshot = json.loads(resp.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"error: cannot fetch {endpoint}: {exc}",
                      file=sys.stderr)
                return 2
            if not isinstance(snapshot, dict) or "series" not in snapshot:
                print(f"error: {endpoint} returned no metrics-history "
                      f"series — the node predates the telemetry plane or "
                      f"serves a different payload; upgrade it or point "
                      f"--url at a /metrics/history-capable health port",
                      file=sys.stderr)
                return 1
            if any(key.startswith("profile.")
                   for key in snapshot["series"]):
                saw_profile_series = True
            sys.stdout.write("\x1b[2J\x1b[H")
            print(f"{endpoint}  (refresh {args.interval}s, "
                  f"tick {tick + 1}/{args.count})")
            print(render_top(snapshot))
            sys.stdout.flush()
            if tick + 1 < args.count:
                wallclock.sleep(args.interval)
        if not saw_profile_series:
            print("note: the endpoint never served profile.* series, so "
                  "the cpu%/allocs columns stayed empty — run the node "
                  "with profiling enabled (e.g. `python -m repro live "
                  "--profile`) to feed them",
                  file=sys.stderr)
            return 1
        return 0

    # Simulated mode: drive the kill/recover scenario, advancing
    # --interval seconds of simulated time per rendered frame.  Profiling
    # is on so the cpu%/allocs columns are fed; note the cpu%% reading is
    # host CPU over *simulated* seconds, so >100% is expected.
    from repro.bench.deployments import build_client_server
    from repro.ftcorba.properties import ReplicationStyle
    from repro.obs.profiling import ProfilingConfig

    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=args.state_size,
        warmup=0.2,
        profiling=ProfilingConfig(enabled=True),
    )
    system = deployment.system
    horizon = args.interval * args.count
    system.faults.crash_after(horizon * 0.3, "s2")
    system.faults.restart_after(horizon * 0.5, "s2")
    for tick in range(1, args.count + 1):
        system.run_for(args.interval)
        system.telemetry.sample_now()
        sys.stdout.write("\x1b[2J\x1b[H")
        print(f"t={system.now:.3f}s simulated — tick {tick}/{args.count} "
              f"(s2 killed at {horizon * 0.3:.2f}s, re-launched at "
              f"{horizon * 0.5:.2f}s)")
        print(render_top(system.telemetry.history.snapshot()))
        sys.stdout.flush()
    return 0


def _cmd_obs_overhead(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (OBS_OVERHEAD_LOADS,
                                    OBS_OVERHEAD_LOADS_QUICK,
                                    run_obs_overhead_point)

    rates = OBS_OVERHEAD_LOADS_QUICK if args.quick else OBS_OVERHEAD_LOADS
    rows = []
    points = {}
    for rate in rates:
        result = run_obs_overhead_point(rate,
                                        repeats=2 if args.quick else 3)
        ratio = result["overhead_ratio"]
        rows.append([rate, round(result["off_s"] * 1000, 1),
                     round(result["on_s"] * 1000, 1), round(ratio, 4)])
        points[str(rate)] = round(ratio, 4)
    footer, code = _record_and_compare(args, "obs_overhead",
                                       "overhead_ratio", "ratio", points)
    if code == 2:
        return 2
    worst = max(points.values())
    budget_line = (f"worst overhead {100 * (worst - 1):+.2f}% "
                   f"(budget ≤{100 * args.max_overhead:.0f}%)")
    if worst - 1.0 > args.max_overhead:
        budget_line += "  — OVER BUDGET"
        code = max(code, 1)
    footer = budget_line if footer is None else f"{footer}\n{budget_line}"
    print_table(
        "Telemetry-plane overhead — fault-free throughput",
        ["offered_per_s", "telemetry_off_ms", "telemetry_on_ms",
         "plane_overhead"],
        rows,
        paper_note="plane_overhead = run / (run - in-situ plane time): "
                   "perf_counter accumulated inside ring admission and "
                   "sampler ticks during a telemetry-on run.  Wall-clock "
                   "on/off A-B deltas on shared hardware swing +/-10% — "
                   "far above a 3% budget — so the gate measures the "
                   "plane's own share, which is stable to ~0.1%.",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _start_profile_session(args):
    """Build and start a :class:`~repro.obs.profiling.ProfileSession` when
    ``--profile`` was passed (None otherwise) — shared by the sweep
    commands."""
    if not getattr(args, "profile", False):
        return None
    from repro.obs.profiling import ProfileSession
    session = ProfileSession(
        sample_interval=getattr(args, "profile_sample_interval", 0.005))
    session.start()
    return session


def _finish_profile_session(session, args, *, syscalls=None) -> None:
    """Stop the session, print the per-phase cost table, and write the
    ``.folded`` artifact to ``--profile-out``."""
    if session is None:
        return
    session.stop()
    print("\nper-phase resource attribution (profiler):")
    print(session.render_table(syscalls=syscalls))
    out = getattr(args, "profile_out", None) or "profile.folded"
    lines = session.write_folded(out)
    print(f"\nwrote {lines} folded stacks to {out} "
          f"({session.sampler.samples_taken} samples; render with "
          f"flamegraph.pl or speedscope)")


def _cmd_profile(args) -> int:
    from repro.obs.profiling import ProfileSession, syscall_counters

    if args.live:
        # Delegate to the live runner with profiling switched on: real
        # sockets, so the table includes the transport's syscall counters.
        from repro.live.cli import run_live
        live_args = argparse.Namespace(
            nodes=3, app="kvstore", state_size=args.state_size,
            duration=3.0 if args.quick else 8.0,
            kill_after=1.0 if args.quick else 2.0,
            downtime=0.5, health_port=None, health_out=None,
            trace_out=None, trace_format="chrome", flight_dir=None,
            profile=True, profile_out=args.out,
            profile_sample_interval=args.sample_interval,
        )
        return run_live(live_args)

    from repro.bench.deployments import build_client_server, measure_recovery
    from repro.ftcorba.properties import ReplicationStyle

    session = ProfileSession(sample_interval=args.sample_interval,
                             alloc_trace=args.alloc_trace)
    session.start()
    print(f"profiling the kill/recover scenario ({args.state_size} B "
          f"state) …", file=sys.stderr)
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=args.state_size,
        warmup=0.2,
        profiling=session.config,
    )
    session.attach(deployment.system)
    system = deployment.system
    system.run_for(0.1 if args.quick else 0.5)     # fault-free load phase
    try:
        recovery_time = measure_recovery(deployment, "s2")
    except TimeoutError as exc:
        session.stop()
        print(f"error: {exc}", file=sys.stderr)
        return 1
    system.run_for(0.1)
    session.stop()
    phases = session.merged_phases()
    print(f"recovered s2 in {recovery_time * 1000:.2f} ms (simulated); "
          f"host costs per phase:")
    print(session.render_table(
        syscalls=syscall_counters(system.tracer.counters),
        wall_label="sim"))
    lines = session.write_folded(args.out)
    print(f"\nwrote {lines} folded stacks to {args.out} "
          f"({session.sampler.samples_taken} samples; render with "
          f"flamegraph.pl or speedscope)")
    missing = [name for name in ("recovery.announce", "recovery.capture",
                                 "recovery.apply", "recovery.assign",
                                 "recovery.drain", "totem.rotation")
               if name not in phases]
    if missing:
        print(f"error: no resource attribution for {', '.join(missing)}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_prof_overhead(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (PROF_OVERHEAD_LOADS,
                                    PROF_OVERHEAD_LOADS_QUICK,
                                    run_prof_overhead_point)

    rates = PROF_OVERHEAD_LOADS_QUICK if args.quick else PROF_OVERHEAD_LOADS
    rows = []
    points = {}
    worst_off = 1.0
    for rate in rates:
        result = run_prof_overhead_point(rate,
                                         repeats=2 if args.quick else 3)
        ratio = result["overhead_ratio"]
        rows.append([rate, round(result["off_s"] * 1000, 1),
                     round(result["on_s"] * 1000, 1),
                     round(result["off_ratio"], 4), round(ratio, 4)])
        points[f"off:{rate}"] = round(result["off_ratio"], 4)
        points[f"on:{rate}"] = round(ratio, 4)
        worst_off = max(worst_off, result["off_ratio"])
    footer, code = _record_and_compare(args, "prof_overhead",
                                       "overhead_ratio", "ratio", points)
    if code == 2:
        return 2
    worst_on = max(v for k, v in points.items() if k.startswith("on:"))
    budget_line = (f"off overhead {100 * (worst_off - 1):+.4f}% "
                   f"(must be 0), on {100 * (worst_on - 1):+.2f}% "
                   f"(budget ≤{100 * args.max_overhead:.0f}%)")
    if worst_off > 1.0 + 1e-9 or worst_on - 1.0 > args.max_overhead:
        budget_line += "  — OVER BUDGET"
        code = max(code, 1)
    footer = budget_line if footer is None else f"{footer}\n{budget_line}"
    print_table(
        "Profiler overhead — fault-free throughput",
        ["offered_per_s", "profiler_off_ms", "profiler_on_ms",
         "off_ratio", "on_ratio"],
        rows,
        paper_note="in-situ shares (InSituProbe inside span bookkeeping "
                   "and sampler walks), like obs-overhead.  off_ratio is "
                   "structural: a disabled profiler never subscribes to "
                   "the tracer, so its probed share is exactly zero.",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _record_and_compare(args, name: str, metric: str, unit: str,
                        points) -> "tuple":
    """Shared --record/--compare handling for the sweep commands.

    Returns ``(footer, exit_code)``: a verdict line for the table footer
    (or None) and the exit code (0 ok, 1 regression, 2 unusable baseline);
    writes the record to ``args.record`` when requested.
    """
    if not (args.record or args.compare):
        return None, 0
    from repro.bench.regression import BenchRecord, compare_bench_records
    record = BenchRecord.from_points(name, metric, unit, points)
    footer = None
    code = 0
    if args.compare:
        try:
            baseline = BenchRecord.load(args.compare)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return None, 2
        comparison = compare_bench_records(baseline, record,
                                           tolerance=args.tolerance)
        footer = comparison.verdict
        code = 0 if comparison.ok else 1
    if args.record:
        record.write(args.record)
    return footer, code


def _cmd_checkpoint(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (CHECKPOINT_SIZES,
                                    CHECKPOINT_SIZES_QUICK,
                                    run_checkpoint_point)

    sizes = CHECKPOINT_SIZES_QUICK if args.quick else CHECKPOINT_SIZES
    rows = []
    points = {}
    for size in sizes:
        result = run_checkpoint_point(size, delta=not args.no_delta)
        rows.append([size, result["checkpoints"],
                     round(result["median_ms"], 3),
                     round(result["p95_ms"], 3),
                     int(result["wire_bytes"]), int(result["full_bytes"])])
        points[str(size)] = round(result["median_ms"], 3)
    footer, code = _record_and_compare(args, "checkpoint",
                                       "checkpoint_xfer_ms", "ms", points)
    if code == 2:
        return 2
    mode = "full snapshots" if args.no_delta else "page deltas"
    print_table(
        f"Checkpoint transfer cost vs state size ({mode}, ~10% dirty)",
        ["state_bytes", "ckpts", "median_ms", "p95_ms",
         "delta_wire_B", "full_equiv_B"],
        rows,
        paper_note="§3.3 ships the whole state every interval; deltas "
                   "make the cost linear in changed pages",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _cmd_throughput(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (THROUGHPUT_LOADS,
                                    THROUGHPUT_LOADS_QUICK,
                                    WIRE_BOUND_ECHO, run_throughput_point)

    rates = THROUGHPUT_LOADS_QUICK if args.quick else THROUGHPUT_LOADS
    session = _start_profile_session(args)
    rows = []
    points = {}
    for rate in rates:
        result = run_throughput_point(
            rate,
            frame_packing=not args.no_packing,
            echo_duration=WIRE_BOUND_ECHO,
            profile=session,
        )
        rows.append([rate, int(result["achieved"]),
                     round(result["mean_ms"], 3),
                     round(result["p99_ms"], 3)])
        points[str(rate)] = round(result["mean_ms"], 3)
    footer, code = _record_and_compare(args, "throughput",
                                       "mean_latency_ms", "ms", points)
    if code == 2:
        return 2
    mode = "frame packing off" if args.no_packing else "frame packing on"
    print_table(
        f"Open-loop wire-bound throughput sweep ({mode})",
        ["offered_per_s", "achieved_per_s", "mean_latency_ms",
         "p99_latency_ms"],
        rows,
        paper_note="multi-payload DATA frames amortize per-frame header, "
                   "inter-frame gap, and per-frame CPU",
        footer=footer,
    )
    _finish_profile_session(session, args)
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _cmd_fig6(args) -> int:
    from repro.bench.deployments import build_client_server, measure_recovery
    from repro.bench.reporting import print_table
    from repro.core.config import EternalConfig
    from repro.ftcorba.properties import ReplicationStyle

    from repro.obs.metrics import merge_registries

    eternal_config = EternalConfig(bulk_lane=not args.no_bulk_lane)

    sizes = [10, 1_000, 10_000, 50_000, 100_000, 200_000, 350_000]
    if args.quick:
        sizes = [10, 10_000, 100_000, 350_000]
    session = _start_profile_session(args)
    rows = []
    registries = []
    points = {}
    for size in sizes:
        deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                         server_replicas=2,
                                         state_size=size,
                                         eternal_config=eternal_config,
                                         profiling=(session.config
                                                    if session else None),
                                         warmup=0.2)
        if session is not None:
            session.attach(deployment.system)
        try:
            recovery_time = measure_recovery(deployment, "s2")
        except TimeoutError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        recovery_ms = round(recovery_time * 1000, 3)
        rows.append([size, recovery_ms])
        points[str(size)] = recovery_ms
        registries.append(deployment.system.metrics)

    footer = None
    comparison = None
    record = None
    if args.record or args.compare:
        from repro.bench.regression import (BenchRecord,
                                            compare_bench_records)
        record = BenchRecord.from_points("fig6", "recovery_ms", "ms",
                                         points)
    if args.compare:
        try:
            baseline = BenchRecord.load(args.compare)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_bench_records(baseline, record,
                                           tolerance=args.tolerance)
        footer = comparison.verdict

    print_table("Figure 6 — recovery time vs application-level state size",
                ["state_bytes", "recovery_ms"], rows,
                paper_note="flat below one Ethernet frame, then linear in "
                           "the fragment count",
                footer=footer)
    merged = merge_registries(registries)
    print("\nper-phase latency across the sweep (ms):")
    print(merged.format_table(prefix="span.recovery", scale=1000.0,
                              unit="ms"))
    _finish_profile_session(session, args)
    if args.record:
        record.write(args.record)
        print(f"\nwrote bench record to {args.record}")
    return 0 if comparison is None or comparison.ok else 1


def _cmd_recovery_scale(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (RECOVERY_SCALE_SIZES,
                                    RECOVERY_SCALE_SIZES_QUICK,
                                    run_recovery_scale_sweep)

    sizes = (RECOVERY_SCALE_SIZES_QUICK if args.quick
             else RECOVERY_SCALE_SIZES)
    bulk = not args.no_bulk_lane
    session = _start_profile_session(args)
    try:
        sweep = run_recovery_scale_sweep(sizes, bulk=bulk, profile=session)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = []
    points = {}
    for point in sweep:
        size = int(point["state_size"])
        recovery_ms = round(point["recovery_ms"], 3)
        rows.append([
            size, recovery_ms,
            round(point["oob_bytes"] / 1000.0, 1),
            round(point["inorder_bytes"] / 1000.0, 1),
            int(point["baseline_per_s"]),
            int(point["during_per_s"]),
            round(point["during_ratio"], 3),
        ])
        points[str(size)] = recovery_ms

    footer = None
    comparison = None
    record = None
    if args.record or args.compare:
        from repro.bench.regression import (BenchRecord,
                                            compare_bench_records)
        record = BenchRecord.from_points("recovery_scale", "recovery_ms",
                                         "ms", points)
    if args.compare:
        try:
            baseline = BenchRecord.load(args.compare)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_bench_records(baseline, record,
                                           tolerance=args.tolerance)
        footer = comparison.verdict

    mode = ("in-order ablation (--no-bulk-lane)" if args.no_bulk_lane
            else "out-of-band bulk lane")
    print_table(
        f"Recovery at scale — {mode}",
        ["state_bytes", "recovery_ms", "oob_kB", "inorder_kB",
         "driver_base_per_s", "driver_during_per_s", "during_ratio"],
        rows,
        paper_note="the bulk lane moves checkpoint pages off the totally "
                   "ordered ring; the set_state multicast carries only a "
                   "page manifest, so concurrent request traffic keeps "
                   "flowing",
        footer=footer,
    )
    _finish_profile_session(session, args)
    if args.record:
        record.write(args.record)
        print(f"\nwrote bench record to {args.record}")
    return 0 if comparison is None or comparison.ok else 1


def _cmd_cold_restart(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.sweeps import (COLD_RESTART_SIZES,
                                    COLD_RESTART_SIZES_QUICK,
                                    run_cold_restart_point)

    sizes = COLD_RESTART_SIZES_QUICK if args.quick else COLD_RESTART_SIZES
    rows = []
    points = {}
    worst_ratio = None
    for size in sizes:
        try:
            result = run_cold_restart_point(size)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ratio = result["wire_ratio"]
        rows.append([
            size,
            round(result["warm_recovery_ms"], 3),
            round(result["warm_wire_bytes"] / 1000.0, 1),
            round(result["nostore_recovery_ms"], 3),
            round(result["nostore_wire_bytes"] / 1000.0, 1),
            round(ratio, 1) if ratio != float("inf") else "inf",
            round(result["cold_recovery_ms"], 3),
        ])
        points[f"warm_ms:{size}"] = round(result["warm_recovery_ms"], 3)
        points[f"cold_ms:{size}"] = round(result["cold_recovery_ms"], 3)
        points[f"warm_kB:{size}"] = round(
            result["warm_wire_bytes"] / 1000.0, 1)
        worst_ratio = (ratio if worst_ratio is None
                       else min(worst_ratio, ratio))
    footer, code = _record_and_compare(args, "cold_restart",
                                       "cold_restart", "mixed", points)
    if code == 2:
        return 2
    gate_line = (f"worst warm-journal wire saving {worst_ratio:.1f}x "
                 f"(gate ≥{args.min_ratio:.0f}x)")
    if worst_ratio < args.min_ratio:
        gate_line += "  — UNDER GATE"
        code = max(code, 1)
    footer = gate_line if footer is None else f"{footer}\n{gate_line}"
    print_table(
        "Cold restart — durable journal vs network-only recovery",
        ["state_bytes", "warm_ms", "warm_wire_kB", "nostore_ms",
         "nostore_wire_kB", "wire_ratio", "coldboot_ms"],
        rows,
        paper_note="a restarting replica replays its journal "
                   "(checkpoint + logged messages) and fetches only the "
                   "digest-negotiated tail from live peers; with every "
                   "replica dead the best journal seeds the group "
                   "(cold-boot election)",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _cmd_store(args) -> int:
    import os

    from repro.errors import StoreCorruptError
    from repro.store.journal import JournalStore

    root = args.store_dir
    if not os.path.isdir(root):
        print(f"error: {root!r} is not a directory", file=sys.stderr)
        return 2

    def node_roots():
        # A per-node root has group dirs (each with a MANIFEST) directly
        # under it; a `live --store-dir` root has one such tree per node.
        entries = sorted(e for e in os.listdir(root)
                         if os.path.isdir(os.path.join(root, e)))
        if any(os.path.isfile(os.path.join(root, e, "MANIFEST"))
               for e in entries):
            return [("", root)]
        return [(e, os.path.join(root, e)) for e in entries]

    code = 0
    found = False
    for node, node_root in node_roots():
        store = JournalStore(node_root)
        for group_id in store.group_ids():
            found = True
            label = f"{node}/{group_id}" if node else group_id
            group = store.group(group_id)
            try:
                stored = group.load()
            except StoreCorruptError as exc:
                print(f"{label}: CORRUPT — {exc}")
                code = 1
                continue
            ckpt = stored.checkpoint
            stats = group.stats()
            ckpt_text = f"@{ckpt.position}" if ckpt else "none"
            print(f"{label}: position={stored.last_position} "
                  f"checkpoint={ckpt_text} "
                  f"pending_messages={len(stored.messages)} "
                  f"segments={int(stats.get('segments', 0))} "
                  f"bytes={int(stats.get('bytes', 0))}")
            if args.compact:
                if group.compact():
                    after = group.stats()
                    print(f"{label}: compacted → "
                          f"bytes={int(after.get('bytes', 0))}")
                else:
                    print(f"{label}: nothing to compact (no checkpoint)")
        store.close()
    if not found:
        print(f"no journals under {root}")
    return code


def _cmd_styles(_args) -> int:
    from repro.bench.deployments import build_client_server
    from repro.bench.reporting import print_table
    from repro.ftcorba.properties import ReplicationStyle

    rows = []
    for style in (ReplicationStyle.ACTIVE, ReplicationStyle.WARM_PASSIVE,
                  ReplicationStyle.COLD_PASSIVE):
        deployment = build_client_server(style=style, server_replicas=2,
                                         state_size=20_000,
                                         checkpoint_interval=0.2,
                                         warmup=0.2)
        system = deployment.system
        driver = deployment.driver
        system.run_for(0.5)
        victim = (deployment.server_group.primary_node()
                  if style.is_passive else "s1")
        acked = driver.acked
        kill_time = system.now
        system.kill_node(victim)
        if not system.wait_for(lambda: driver.acked > acked + 20,
                               timeout=5.0):
            print(f"error: {style.value} never resumed service after the "
                  f"fault (driver stuck at {driver.acked} acks)",
                  file=sys.stderr)
            return 1
        rows.append([style.value,
                     round((system.now - kill_time) * 1000, 2)])
    print_table("Replication styles — client-visible disruption at a fault",
                ["style", "disruption_ms"], rows,
                paper_note="active: faster recovery; passive: fewer "
                           "resources (§6)")
    return 0


def _cmd_live(args) -> int:
    from repro.live.cli import run_live

    return run_live(args)


def _cmd_live_throughput(args) -> int:
    from repro.bench.livebench import run_live_throughput
    from repro.bench.reporting import print_table

    duration = 1.0 if args.quick else args.duration
    try:
        result = run_live_throughput(duration=duration,
                                     use_uvloop=args.uvloop)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = []
    for label in ("ordered", "leased", "saturated"):
        arm = result[label]
        rows.append([
            label, arm["n_drivers"],
            "on" if arm["read_lease"] else "off",
            round(arm["acked_per_s"], 1), arm["acked"],
            arm["fast_reads"], arm["fallbacks"],
            round(arm["datagrams_per_wakeup"], 2),
        ])
    points = result["points"]
    footer, code = _record_and_compare(args, "live", "live_throughput",
                                       "ratio", points)
    if code == 2:
        return 2
    gate_line = (f"read-lease speedup {result['speedup']:.2f}x "
                 f"(gate ≥{args.min_speedup:.1f}x); saturation receive "
                 f"batching {1.0 / points['wakeups_per_datagram']:.2f} "
                 f"datagrams/wakeup")
    if result["speedup"] < args.min_speedup:
        gate_line += "  — UNDER GATE"
        code = max(code, 1)
    footer = gate_line if footer is None else f"{footer}\n{gate_line}"
    print_table(
        "Live closed-loop throughput — total order vs read lease "
        "(loopback UDP, wall clock)",
        ["arm", "drivers", "lease", "acked_per_s", "acked",
         "fast_reads", "fallbacks", "dg_per_wakeup"],
        rows,
        paper_note="the paper orders every IIOP message through Totem; "
                   "read_only operations served by the ring leaseholder "
                   "skip the token rotation entirely, and the batched "
                   "transport drains multiple datagrams per wakeup at "
                   "saturation",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def _cmd_shard_scale(args) -> int:
    from repro.bench.reporting import print_table
    from repro.bench.shardbench import (SHARD_SCALE_RINGS,
                                        SHARD_SCALE_RINGS_QUICK,
                                        run_shard_scale_point)

    ring_counts = SHARD_SCALE_RINGS_QUICK if args.quick else SHARD_SCALE_RINGS
    duration = 0.5 if args.quick else args.duration
    rows = []
    results = {}
    for rings in ring_counts:
        result = run_shard_scale_point(rings, pairs=args.pairs,
                                       duration=duration)
        results[rings] = result
        rows.append([rings, args.pairs // rings * 2,
                     result["acked"],
                     round(result["throughput_per_s"], 1),
                     round(result["inv_cost_us"], 2)])
    base = results[ring_counts[0]]["inv_cost_us"]
    # Machine-independent points: each arm's per-invocation cost relative
    # to the single-ring arm (simulated time, so deterministic; lower is
    # better — the 8-ring point ≈ 1/scaling).
    points = {f"rings_{rings}": round(r["inv_cost_us"] / base, 4)
              for rings, r in results.items()}
    footer, code = _record_and_compare(args, "shard_scale", "cost_ratio",
                                       "ratio", points)
    if code == 2:
        return 2
    top = max(results)
    scaling = (results[top]["throughput_per_s"]
               / results[ring_counts[0]]["throughput_per_s"])
    gate_line = (f"{top}-ring aggregate {scaling:.2f}x the single ring "
                 f"(gate ≥{args.min_scaling:.1f}x, same "
                 f"{args.pairs}-pair work/node budget)")
    if scaling < args.min_scaling:
        gate_line += "  — UNDER GATE"
        code = max(code, 1)
    footer = gate_line if footer is None else f"{footer}\n{gate_line}"
    for rings, row in zip(ring_counts, rows):
        row.append(round(results[ring_counts[0]]["throughput_per_s"]
                         and results[rings]["throughput_per_s"]
                         / results[ring_counts[0]]["throughput_per_s"], 2))
    print_table(
        "Sharded aggregate throughput — object groups over a "
        "consistent-hashing ring of Totem rings (simulated time)",
        ["rings", "nodes_per_ring", "acked", "acked_per_s",
         "inv_cost_us", "vs_1_ring"],
        rows,
        paper_note="one Totem ring serialises all traffic through one "
                   "token rotation, so the single-ring arm is flat no "
                   "matter how many pairs share it; sharding the same "
                   "pairs over independent rings multiplies the "
                   "available rotations and aggregate throughput "
                   "scales near-linearly",
        footer=footer,
    )
    if args.record:
        print(f"\nwrote bench record to {args.record}")
    return code


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Eternal (DSN 2001) reproduction — demos and sweeps",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("version", help="print the version")
    demo = sub.add_parser("demo", help="kill/recover demo with timeline")
    demo.add_argument("--state-size", type=int, default=50_000,
                      help="application-level state size in bytes")
    demo.add_argument("--trace-out", default=None, metavar="PATH",
                      help="also export the run's trace to PATH")
    demo.add_argument("--trace-format", choices=("chrome", "jsonl"),
                      default="chrome",
                      help="export format for --trace-out")
    demo.add_argument("--health", action="store_true",
                      help="also audit the trace and print the health "
                           "snapshot (exit 1 on audit findings)")
    def add_bench_flags(cmd, name):
        cmd.add_argument("--quick", action="store_true",
                         help="fewer sweep points")
        cmd.add_argument("--record", default=None, metavar="PATH",
                         help=f"write the sweep as a BENCH_{name}.json "
                              f"record")
        cmd.add_argument("--compare", default=None, metavar="PATH",
                         help="compare against a previous bench record "
                              "(exit 1 on regression)")
        cmd.add_argument("--tolerance", type=float, default=0.2,
                         help="allowed relative slowdown vs the baseline "
                              "(default 0.2 = 20%%)")

    def add_profile_flags(cmd):
        cmd.add_argument("--profile", action="store_true",
                         help="attribute host CPU/allocations to protocol "
                              "phases and sample stacks during the sweep")
        cmd.add_argument("--profile-out", default="profile.folded",
                         metavar="PATH",
                         help="collapsed-stack output for --profile "
                              "(default profile.folded)")
        cmd.add_argument("--profile-sample-interval", type=float,
                         default=0.005, metavar="SEC",
                         help="stack-sampler period in wall seconds "
                              "(default 0.005)")

    fig6 = sub.add_parser("fig6", help="Figure 6 sweep")
    add_bench_flags(fig6, "fig6")
    add_profile_flags(fig6)
    fig6.add_argument("--no-bulk-lane", action="store_true",
                      help="disable the out-of-band recovery bulk lane "
                           "(the paper's in-order fragmented transfer)")
    recovery_scale = sub.add_parser(
        "recovery-scale",
        help="recovery time and concurrent request throughput vs large "
             "state sizes (out-of-band bulk lane)")
    add_bench_flags(recovery_scale, "recovery_scale")
    add_profile_flags(recovery_scale)
    recovery_scale.add_argument(
        "--no-bulk-lane", action="store_true",
        help="disable the out-of-band recovery bulk lane "
             "(the paper's in-order fragmented transfer)")
    checkpoint = sub.add_parser(
        "checkpoint", help="warm-passive checkpoint transfer cost sweep "
                           "(delta state transfer, ~10%% dirty workload)")
    add_bench_flags(checkpoint, "checkpoint")
    checkpoint.add_argument("--no-delta", action="store_true",
                            help="disable delta state transfer (ship full "
                                 "snapshots, the paper's §3.3 behaviour)")
    throughput = sub.add_parser(
        "throughput", help="open-loop wire-bound throughput sweep "
                           "(token-rotation frame packing)")
    add_bench_flags(throughput, "throughput")
    add_profile_flags(throughput)
    throughput.add_argument("--no-packing", action="store_true",
                            help="disable Totem frame packing (one frame "
                                 "per fragment)")
    cold_restart = sub.add_parser(
        "cold-restart",
        help="durable-journal restart economics: warm vs no-store wire "
             "bytes, plus full-cluster cold boot from the journals")
    add_bench_flags(cold_restart, "cold_restart")
    cold_restart.add_argument(
        "--min-ratio", type=float, default=10.0,
        help="required no-store/warm state-wire-bytes ratio "
             "(default 10; exit 1 if a sweep point falls under)")
    store_cmd = sub.add_parser(
        "store", help="inspect (and optionally compact) the durable "
                      "journals under a live --store-dir")
    store_cmd.add_argument("--store-dir", required=True, metavar="DIR",
                           help="a per-node journal root, or a `live "
                                "--store-dir` root holding one per node")
    store_cmd.add_argument("--compact", action="store_true",
                           help="rewrite each journal down to its newest "
                                "checkpoint plus the pending message tail")
    sub.add_parser("styles", help="replication-style disruption comparison")
    trace = sub.add_parser(
        "trace", help="run kill/recover and export the trace")
    trace.add_argument("--state-size", type=int, default=50_000,
                       help="application-level state size in bytes")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--jsonl-out", default=None, metavar="PATH",
                       help="JSONL (one record per line) output path")
    def add_watch_flags(cmd):
        cmd.add_argument("--watch", type=float, default=None, metavar="SEC",
                         help="re-render in place every SEC seconds of "
                              "simulated time instead of one final dump")
        cmd.add_argument("--watch-count", type=int, default=10, metavar="N",
                         help="number of --watch refreshes (default 10)")

    metrics = sub.add_parser(
        "metrics", help="run kill/recover and print the metrics registry")
    metrics.add_argument("--state-size", type=int, default=50_000,
                         help="application-level state size in bytes")
    metrics.add_argument("--prefix", default="",
                         help="only print metrics whose name starts with "
                              "this prefix")
    add_watch_flags(metrics)
    health = sub.add_parser(
        "health", help="run kill/recover, audit it, and print the "
                       "Prometheus-style health exposition")
    health.add_argument("--state-size", type=int, default=50_000,
                        help="application-level state size in bytes")
    add_watch_flags(health)
    top = sub.add_parser(
        "top", help="live-refreshing per-node telemetry table (simulated "
                    "kill/recover, or --url against a live node)")
    top.add_argument("--url", default=None, metavar="URL",
                     help="poll a live health server (e.g. "
                          "http://127.0.0.1:8500) instead of simulating")
    top.add_argument("--interval", type=float, default=0.5,
                     help="refresh interval: simulated seconds per frame, "
                          "or wall-clock seconds with --url (default 0.5)")
    top.add_argument("--count", type=int, default=10,
                     help="number of refreshes (default 10)")
    top.add_argument("--state-size", type=int, default=10_000,
                     help="application-level state size in bytes "
                          "(simulated mode)")
    obs = sub.add_parser(
        "obs-overhead", help="wall-clock overhead of the telemetry plane "
                             "on the fault-free throughput workload")
    add_bench_flags(obs, "obs_overhead")
    obs.add_argument("--max-overhead", type=float, default=0.03,
                     help="hard budget for the on/off wall-clock ratio "
                          "minus one (default 0.03 = 3%%; exit 1 if over)")
    profile = sub.add_parser(
        "profile", help="span-scoped CPU/alloc attribution + sampled "
                        "stacks for the kill/recover scenario")
    profile.add_argument("--quick", action="store_true",
                         help="shorter load phases")
    profile.add_argument("--live", action="store_true",
                         help="profile the live (loopback-UDP) runner "
                              "instead of the simulator — includes the "
                              "transport's syscall counters")
    profile.add_argument("--state-size", type=int, default=50_000,
                         help="application-level state size in bytes")
    profile.add_argument("--out", default="profile.folded", metavar="PATH",
                         help="collapsed-stack output path "
                              "(default profile.folded)")
    profile.add_argument("--sample-interval", type=float, default=0.005,
                         metavar="SEC",
                         help="stack-sampler period in wall seconds "
                              "(default 0.005)")
    profile.add_argument("--alloc-trace", action="store_true",
                         help="also trace allocation bytes via tracemalloc "
                              "(expensive; simulated mode only)")
    prof_overhead = sub.add_parser(
        "prof-overhead", help="wall-clock overhead of the profiler on the "
                              "fault-free throughput workload")
    add_bench_flags(prof_overhead, "prof_overhead")
    prof_overhead.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="hard budget for the profiler-on in-situ share minus one "
             "(default 0.05 = 5%%; profiler-off must be exactly zero; "
             "exit 1 if over)")
    live = sub.add_parser(
        "live", help="run the stack over loopback UDP and wall-clock time")
    live.add_argument("--nodes", type=int, default=3,
                      help="total nodes: one manager/driver node plus "
                           "app replicas (min 3); with --rings, per ring")
    live.add_argument("--rings", type=int, default=1,
                      help="independent Totem rings sharded over a "
                           "consistent-hashing placement layer (>1 runs "
                           "the multi-ring scenario: closed-loop load on "
                           "every ring, kill/recover inside r0, healthy "
                           "rings must keep streaming)")
    live.add_argument("--app", default="counter",
                      choices=("counter", "kvstore", "kvstore-read"),
                      help="which servant to replicate and drive "
                           "(kvstore-read streams a read-heavy put/get "
                           "mix that exercises the read fast path)")
    live.add_argument("--duration", type=float, default=10.0,
                      help="total run length in wall-clock seconds")
    live.add_argument("--kill-after", type=float, default=2.0,
                      help="seconds of load before killing a replica")
    live.add_argument("--downtime", type=float, default=0.5,
                      help="seconds between the kill and the re-launch")
    live.add_argument("--state-size", type=int, default=10_000,
                      help="application-level state size in bytes "
                           "(kvstore only)")
    live.add_argument("--health-port", type=int, default=None,
                      metavar="PORT",
                      help="serve the live health exposition over HTTP "
                           "on this port (0 = ephemeral)")
    live.add_argument("--health-out", default=None, metavar="PATH",
                      help="write a final health exposition to PATH")
    live.add_argument("--trace-out", default=None, metavar="PATH",
                      help="export the run's trace to PATH")
    live.add_argument("--trace-format", choices=("chrome", "jsonl"),
                      default="chrome",
                      help="export format for --trace-out")
    live.add_argument("--store-dir", default=None, metavar="DIR",
                      help="keep per-node durable journals under DIR "
                           "(see repro.store): a node re-launched on the "
                           "same DIR restores from its journal first and "
                           "fetches only the tail from live peers")
    live.add_argument("--store-fsync",
                      choices=("always", "checkpoint", "never"),
                      default="checkpoint",
                      help="journal fsync policy for --store-dir "
                           "(default: checkpoint)")
    live.add_argument("--uvloop", action="store_true",
                      help="drive the run with uvloop's event loop "
                           "(requires the optional extra: "
                           "pip install 'eternal-repro[uvloop]')")
    live.add_argument("--no-read-lease", dest="read_lease",
                      action="store_false", default=True,
                      help="disable the leader-lease read fast path and "
                           "route every invocation through the total "
                           "order (the paper's original behaviour)")
    live.add_argument("--flight-dir", default=None, metavar="DIR",
                      help="write flight-recorder dumps (JSONL, one file "
                           "per node) to DIR: automatically on node kill, "
                           "audit violation, crash, or SIGINT, and for "
                           "every node at shutdown")
    add_profile_flags(live)
    live_tp = sub.add_parser(
        "live-throughput",
        help="closed-loop throughput of the live hot path over loopback "
             "UDP: total-order vs read-lease arms plus a saturation "
             "receive-batching probe")
    add_bench_flags(live_tp, "live")
    live_tp.add_argument("--duration", type=float, default=2.0,
                         help="measurement window per arm in wall-clock "
                              "seconds (default 2)")
    live_tp.add_argument("--uvloop", action="store_true",
                         help="drive all arms with uvloop's event loop "
                              "(requires the optional extra)")
    live_tp.add_argument("--min-speedup", type=float, default=2.0,
                         help="required read-lease over total-order "
                              "throughput ratio (default 2; exit 1 "
                              "under)")
    shard = sub.add_parser(
        "shard-scale",
        help="aggregate throughput of a fixed closed-loop workload "
             "sharded over 1..8 independent Totem rings (simulated)")
    add_bench_flags(shard, "shard_scale")
    shard.add_argument("--pairs", type=int, default=16,
                       help="closed-loop driver/server pairs in the "
                            "fixed work budget (default 16; must divide "
                            "by every swept ring count)")
    shard.add_argument("--duration", type=float, default=1.0,
                       help="measurement window per arm in simulated "
                            "seconds (default 1; --quick uses 0.5)")
    shard.add_argument("--min-scaling", type=float, default=4.0,
                       help="required 8-ring over 1-ring aggregate "
                            "throughput ratio (default 4; exit 1 under)")
    args = parser.parse_args(argv)
    handlers = {
        "version": _cmd_version,
        "demo": _cmd_demo,
        "fig6": _cmd_fig6,
        "recovery-scale": _cmd_recovery_scale,
        "checkpoint": _cmd_checkpoint,
        "throughput": _cmd_throughput,
        "cold-restart": _cmd_cold_restart,
        "store": _cmd_store,
        "styles": _cmd_styles,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "health": _cmd_health,
        "top": _cmd_top,
        "obs-overhead": _cmd_obs_overhead,
        "profile": _cmd_profile,
        "prof-overhead": _cmd_prof_overhead,
        "live": _cmd_live,
        "live-throughput": _cmd_live_throughput,
        "shard-scale": _cmd_shard_scale,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
