"""Fault Notifier: fan-out of fault reports to interested consumers.

In FT-CORBA, Fault Detectors push structured fault reports to the Fault
Notifier, which forwards them to consumers — chiefly the Replication
Manager, which reacts by re-establishing the initial number of replicas.
Our detectors derive faults from Totem membership changes (a crashed node
leaves the ring) plus per-replica heartbeats at the fault monitoring
interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class FaultReport:
    """One detected fault."""

    time: float
    node_id: str
    group_id: Optional[str] = None   # None: the whole host failed
    reason: str = "crash"


FaultConsumer = Callable[[FaultReport], None]


class FaultNotifier:
    """Collects fault reports and pushes them to registered consumers."""

    def __init__(self) -> None:
        self._consumers: List[FaultConsumer] = []
        self.history: List[FaultReport] = []

    def connect_consumer(self, consumer: FaultConsumer) -> None:
        self._consumers.append(consumer)

    def disconnect_consumer(self, consumer: FaultConsumer) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    def push_fault(self, report: FaultReport) -> None:
        """Record and fan out one fault report (idempotent per consumer
        behaviour is the consumer's responsibility)."""
        self.history.append(report)
        for consumer in list(self._consumers):
            consumer(report)
