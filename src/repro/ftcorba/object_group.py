"""Object groups: the unit of replication.

An :class:`ObjectGroup` collects the replicas of one CORBA object under a
single group identity.  Clients address the *group* — the published IOGR's
host field carries the group id, so the Eternal Interceptor can map the
"TCP connection" the client ORB believes it opened onto the group's
multicast traffic — and never observe individual replicas (replication
transparency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ObjectGroupError
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.giop.ior import IOR
from repro.orb.objectkey import make_key

GROUP_PORT = 2809


def elect_cold_seed(bids: Dict[str, int]) -> Optional[str]:
    """The cold-boot seed election rule (durable store, ``repro.store``).

    When every member of a group is gone, restarting replicas bid with
    how far their durable journal covers the group's ordered history
    (``store_position``; negative = no journal, never a candidate).  The
    deepest journal wins so no committed invocation is lost; ties break
    to the smallest node id so every bidder — each evaluating its own
    (possibly partial) bid set — converges on the same winner, and the
    first ``ColdSeed`` claim in the total order settles any remaining
    disagreement.  Returns ``None`` when no member holds a journal.
    """
    candidates = {node: position for node, position in bids.items()
                  if position >= 0}
    if not candidates:
        return None
    best = max(candidates.values())
    return min(node for node, position in candidates.items()
               if position == best)


class ReplicaRole(enum.Enum):
    """The role of one member within its group."""

    ACTIVE = "active"
    PRIMARY = "primary"
    BACKUP = "backup"


@dataclass
class MemberInfo:
    """One replica's membership record."""

    node_id: str
    role: ReplicaRole
    operational: bool = False     # becomes True once recovered/synchronized


class ObjectGroup:
    """The replicas of one replicated object, plus its addressing."""

    def __init__(self, group_id: str, type_id: str,
                 properties: FTProperties) -> None:
        self.group_id = group_id
        self.type_id = type_id
        self.properties = properties
        self.version = 0          # bumped on every membership change
        self._members: Dict[str, MemberInfo] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def object_key(self) -> bytes:
        """The group's canonical object key (same at every replica, so the
        totally-ordered request stream means the same object everywhere)."""
        return make_key("RootPOA", self.group_id.encode("ascii"))

    def iogr(self) -> IOR:
        """The interoperable object group reference published to clients."""
        return IOR(type_id=self.type_id, host=self.group_id, port=GROUP_PORT,
                   object_key=self.object_key)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def members(self) -> Dict[str, MemberInfo]:
        return dict(self._members)

    @property
    def member_nodes(self) -> List[str]:
        return sorted(self._members)

    @property
    def operational_nodes(self) -> List[str]:
        return sorted(n for n, m in self._members.items() if m.operational)

    @property
    def primary_node(self) -> Optional[str]:
        for node_id, member in self._members.items():
            if member.role is ReplicaRole.PRIMARY:
                return node_id
        return None

    def add_member(self, node_id: str, role: ReplicaRole) -> MemberInfo:
        if node_id in self._members:
            raise ObjectGroupError(
                f"{node_id} is already a member of group {self.group_id}"
            )
        info = MemberInfo(node_id=node_id, role=role)
        self._members[node_id] = info
        self.version += 1
        return info

    def remove_member(self, node_id: str) -> None:
        if node_id not in self._members:
            raise ObjectGroupError(
                f"{node_id} is not a member of group {self.group_id}"
            )
        del self._members[node_id]
        self.version += 1

    def member(self, node_id: str) -> MemberInfo:
        try:
            return self._members[node_id]
        except KeyError:
            raise ObjectGroupError(
                f"{node_id} is not a member of group {self.group_id}"
            ) from None

    def default_role(self) -> ReplicaRole:
        """Role for a newly added member under this group's style."""
        if self.properties.replication_style is ReplicationStyle.ACTIVE:
            return ReplicaRole.ACTIVE
        return (ReplicaRole.BACKUP if self.primary_node is not None
                else ReplicaRole.PRIMARY)

    def promote(self, node_id: str) -> None:
        """Make ``node_id`` the primary (passive-style failover)."""
        member = self.member(node_id)
        current = self.primary_node
        if current is not None and current != node_id:
            self._members[current].role = ReplicaRole.BACKUP
        member.role = ReplicaRole.PRIMARY
        self.version += 1
