"""User-specified fault tolerance properties.

"The Eternal Replication Manager replicates each application object,
according to user-specified fault tolerance properties (such as the
replication style, the checkpointing interval, the fault monitoring
interval, the initial number of replicas, the minimum number of replicas,
etc.)" — paper §2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PropertyError


class ReplicationStyle(enum.Enum):
    """The three replication styles the paper supports (§3)."""

    ACTIVE = "active"
    WARM_PASSIVE = "warm_passive"
    COLD_PASSIVE = "cold_passive"

    @property
    def is_passive(self) -> bool:
        return self is not ReplicationStyle.ACTIVE


@dataclass(frozen=True)
class FTProperties:
    """Fault tolerance properties for one replicated object.

    ``checkpoint_interval`` drives periodic state retrieval for passive
    replication (and is unused under active replication until a recovery is
    in progress, per §3.3).  ``fault_monitoring_interval`` bounds detection
    latency of the membership-based fault detector.
    """

    replication_style: ReplicationStyle = ReplicationStyle.ACTIVE
    initial_replicas: int = 2
    min_replicas: int = 1
    checkpoint_interval: float = 0.5
    fault_monitoring_interval: float = 0.05
    recovery_timeout: float = 30.0
    max_log_messages: int = 0
    """Passive styles: force an early checkpoint once the message log holds
    this many entries (bounds failover replay time and log memory).
    0 disables the bound — checkpoints happen only on the interval."""

    def __post_init__(self) -> None:
        if self.initial_replicas < 1:
            raise PropertyError(
                f"initial_replicas must be >= 1, got {self.initial_replicas}"
            )
        if not 1 <= self.min_replicas <= self.initial_replicas:
            raise PropertyError(
                f"min_replicas must be in [1, initial_replicas], got "
                f"{self.min_replicas} (initial={self.initial_replicas})"
            )
        if self.checkpoint_interval <= 0:
            raise PropertyError("checkpoint_interval must be positive")
        if self.fault_monitoring_interval <= 0:
            raise PropertyError("fault_monitoring_interval must be positive")
        if self.recovery_timeout <= 0:
            raise PropertyError("recovery_timeout must be positive")
        if self.max_log_messages < 0:
            raise PropertyError("max_log_messages must be >= 0")
