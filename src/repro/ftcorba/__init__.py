"""FT-CORBA standard interfaces (OMG orbos/2000-04-04, which Eternal
implements).

This package holds the application-visible surface of fault tolerance:

* :class:`~repro.ftcorba.checkpointable.Checkpointable` — the IDL interface
  every replicated object inherits, with ``get_state()`` / ``set_state()``
  over the CORBA ``any`` State type (paper Figure 3).
* :class:`~repro.ftcorba.properties.FTProperties` — user-specified fault
  tolerance properties: replication style, checkpointing interval, fault
  monitoring interval, initial/minimum numbers of replicas.
* :class:`~repro.ftcorba.object_group.ObjectGroup` — the object-group
  abstraction and its interoperable object group reference (IOGR).
* :class:`~repro.ftcorba.generic_factory.GenericFactory` — per-node replica
  factories used by the Replication Manager.
* :class:`~repro.ftcorba.fault_notifier.FaultNotifier` — fault reporting
  fan-out from detectors to consumers (the Replication Manager).
"""

from repro.ftcorba.checkpointable import (
    Checkpointable,
    InvalidState,
    NoStateAvailable,
)
from repro.ftcorba.fault_notifier import FaultNotifier, FaultReport
from repro.ftcorba.generic_factory import FactoryRegistry, GenericFactory
from repro.ftcorba.object_group import (MemberInfo, ObjectGroup,
                                        ReplicaRole, elect_cold_seed)
from repro.ftcorba.properties import FTProperties, ReplicationStyle

__all__ = [
    "Checkpointable",
    "NoStateAvailable",
    "InvalidState",
    "FTProperties",
    "ReplicationStyle",
    "ObjectGroup",
    "MemberInfo",
    "elect_cold_seed",
    "ReplicaRole",
    "GenericFactory",
    "FactoryRegistry",
    "FaultNotifier",
    "FaultReport",
]
