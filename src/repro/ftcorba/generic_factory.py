"""GenericFactory: per-node creation of replica implementation objects.

The FT-CORBA GenericFactory interface lets the Replication Manager create
replicas on chosen nodes without knowing application classes.  Applications
register a factory callable per object *type*; the registry resolves
(type_id, version) so the Evolution Manager can install upgraded
implementations (paper §2's Evolution Manager).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ObjectGroupError
from repro.ftcorba.checkpointable import Checkpointable

FactoryFn = Callable[[], Checkpointable]


class GenericFactory:
    """Creates replica servants for the object types it knows."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._factories: Dict[Tuple[str, int], FactoryFn] = {}

    def register(self, type_id: str, factory: FactoryFn,
                 version: int = 0) -> None:
        """Register ``factory`` for (type_id, version)."""
        self._factories[(type_id, version)] = factory

    def supports(self, type_id: str, version: int = 0) -> bool:
        return (type_id, version) in self._factories

    def create_object(self, type_id: str, version: int = 0) -> Checkpointable:
        """Instantiate a fresh (un-synchronized) replica servant."""
        factory = self._factories.get((type_id, version))
        if factory is None:
            raise ObjectGroupError(
                f"node {self.node_id}: no factory for {type_id!r} "
                f"version {version}"
            )
        return factory()


class FactoryRegistry:
    """All nodes' factories, as the Replication Manager sees them."""

    def __init__(self) -> None:
        self._by_node: Dict[str, GenericFactory] = {}

    def factory_for(self, node_id: str) -> GenericFactory:
        factory = self._by_node.get(node_id)
        if factory is None:
            factory = GenericFactory(node_id)
            self._by_node[node_id] = factory
        return factory

    def register_everywhere(self, node_ids, type_id: str,
                            factory: FactoryFn, version: int = 0) -> None:
        """Convenience: register one factory on a set of nodes."""
        for node_id in node_ids:
            self.factory_for(node_id).register(type_id, factory, version)

    def nodes_supporting(self, type_id: str, version: int = 0):
        """Node ids able to host a replica of (type_id, version)."""
        return sorted(
            node_id for node_id, factory in self._by_node.items()
            if factory.supports(type_id, version)
        )
