"""The ``Checkpointable`` IDL interface (paper Figure 3).

::

    typedef any State;
    exception NoStateAvailable {};
    exception InvalidState {};

    interface Checkpointable {
        State get_state() raises(NoStateAvailable);
        void set_state(in State s) raises(InvalidState);
    };

Every replicated CORBA object inherits this interface; both methods are
implemented by the application programmer.  The state is of type ``any`` so
it can hold any primitive, structured, or user-defined type (§4.1).
"""

from __future__ import annotations

from typing import Any

from repro.orb.servant import CorbaUserException, Servant, operation

GET_STATE = "get_state"
SET_STATE = "set_state"

STATE_OP_BASE_DURATION = 100e-6
"""Simulated fixed cost of a get_state/set_state call (marshalling entry)."""


class NoStateAvailable(CorbaUserException):
    """Raised by ``get_state()`` when the object cannot produce its state."""

    exception_id = "IDL:omg.org/CORBA/FT/NoStateAvailable:1.0"


class InvalidState(CorbaUserException):
    """Raised by ``set_state()`` when the supplied state is unusable."""

    exception_id = "IDL:omg.org/CORBA/FT/InvalidState:1.0"


class Checkpointable(Servant):
    """Base class for replicated application objects.

    Subclasses implement :meth:`get_state` and :meth:`set_state`.  The
    default implementations raise the standard exceptions, so an object
    that forgets to implement them fails loudly at the first checkpoint.
    """

    type_id = "IDL:omg.org/CORBA/FT/Checkpointable:1.0"

    @operation(duration=STATE_OP_BASE_DURATION)
    def get_state(self) -> Any:
        """Return the current application-level state of the object."""
        raise NoStateAvailable(
            f"{type(self).__name__} does not implement get_state()"
        )

    @operation(duration=STATE_OP_BASE_DURATION)
    def set_state(self, state: Any) -> None:
        """Overwrite the object's application-level state with ``state``."""
        raise InvalidState(
            f"{type(self).__name__} does not implement set_state()"
        )
