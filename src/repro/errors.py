"""Exception hierarchy for the Eternal reproduction.

Every exception raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.  The
FT-CORBA standard exceptions (``NoStateAvailable``, ``InvalidState``) live in
:mod:`repro.ftcorba.checkpointable` because they are part of the standardized
``Checkpointable`` interface; everything else is here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event-simulation failures."""


class ClockError(SimulationError):
    """Raised when simulated time would move backwards."""


class ProcessCrashed(SimulationError):
    """Raised when an operation is attempted on a crashed process."""


class NetworkError(SimulationError):
    """Base class for network-model failures."""


class UnknownNode(NetworkError):
    """Raised when a message is addressed to a node the network does not know."""


# ---------------------------------------------------------------------------
# Totem group communication
# ---------------------------------------------------------------------------

class TotemError(ReproError):
    """Base class for group-communication failures."""


class NotInRing(TotemError):
    """Raised when a node outside the ring tries to multicast."""


class FragmentationError(TotemError):
    """Raised on inconsistent fragment reassembly."""


# ---------------------------------------------------------------------------
# GIOP / CDR marshalling
# ---------------------------------------------------------------------------

class GiopError(ReproError):
    """Base class for GIOP protocol failures."""


class MarshalError(GiopError):
    """Raised when a value cannot be encoded as CDR."""


class UnmarshalError(GiopError):
    """Raised when a CDR byte stream cannot be decoded."""


class ProtocolError(GiopError):
    """Raised on malformed GIOP messages or framing violations."""


# ---------------------------------------------------------------------------
# ORB / POA
# ---------------------------------------------------------------------------

class OrbError(ReproError):
    """Base class for ORB failures."""


class ObjectNotFound(OrbError):
    """Raised when an object key does not resolve to a servant."""


class BadServiceContext(OrbError):
    """Raised when a request carries a ServiceContext the ORB cannot interpret.

    This models the §4.2.2 failure mode: a new server replica's ORB that
    missed the client-server handshake discards requests that rely on the
    negotiated state (for example vendor short object keys).
    """


class ConnectionClosed(OrbError):
    """Raised when using a connection after CloseConnection."""


class ReplyMismatch(OrbError):
    """Raised internally when a reply's request_id matches no outstanding request.

    The ORB handles this by *discarding* the reply (Figure 4 of the paper);
    the exception type exists so tests can assert on the discard path.
    """


# ---------------------------------------------------------------------------
# FT-CORBA / Eternal core
# ---------------------------------------------------------------------------

class FtCorbaError(ReproError):
    """Base class for FT-CORBA level failures."""


class PropertyError(FtCorbaError):
    """Raised for invalid fault-tolerance property values."""


class ObjectGroupError(FtCorbaError):
    """Raised for invalid object-group operations."""


class ReplicationError(ReproError):
    """Base class for replication-mechanism failures."""


class DuplicateOperation(ReplicationError):
    """Raised internally when an operation identifier was already delivered."""


class StoreError(ReproError):
    """Base class for durable-store failures (:mod:`repro.store`)."""


class StoreCorruptError(StoreError):
    """A journal failed its integrity checks beyond the torn tail.

    A torn *final* record (an incomplete frame at the physical end of the
    newest segment) is the expected debris of a crash mid-write and is
    truncated silently on open; anything else — a CRC mismatch on a
    complete frame, a missing segment, an undecodable record — means the
    journal cannot be trusted, and the replica falls back to a full
    network recovery."""


class RecoveryError(ReproError):
    """Base class for recovery-mechanism failures."""


class StateTransferError(RecoveryError):
    """Raised when the three-state transfer protocol cannot complete."""


class QuiescenceTimeout(RecoveryError):
    """Raised when an object never becomes quiescent within its deadline."""
