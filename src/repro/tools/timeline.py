"""Render human-readable timelines from trace records.

The mechanisms emit structured events (see :mod:`repro.runtime.trace`);
this module turns them into the kind of annotated timeline the paper's
protocol figures show — useful when debugging a recovery that misbehaves,
and used by the examples to narrate what happened.

::

    from repro.tools import render_timeline
    print(render_timeline(system.tracer,
                          categories={"recovery", "fault", "process"}))

:func:`recovery_summary` condenses each recovery into its key instants;
when the trace carries spans (it does whenever the recovery ran through
the instrumented mechanisms), each summary also exposes the per-phase
breakdown of §5.1 steps i–vi via its ``phases`` mapping — see
:mod:`repro.obs.report` for the full per-phase report and table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.report import (
    recovery_phase_report,
    render_phase_table,
)
from repro.runtime.trace import TraceRecord, Tracer

_EVENT_LABELS = {
    ("process", "crash"): "process crashed",
    ("process", "restart"): "process re-launched",
    ("fault", "crash"): "fault injected: crash",
    ("fault", "restart"): "fault injected: restart",
    ("fault", "partition"): "fault injected: partition",
    ("fault", "heal"): "partition healed",
    ("fault", "replica_hang"): "fault injected: replica hang",
    ("totem", "gather"): "ring gather",
    ("totem", "install"): "ring installed",
    ("totem", "token_timeout"): "token lost",
    ("recovery", "join_announced"): "replica join announced",
    ("recovery", "sync_point"): "get_state() sync point (§5.1 i)",
    ("recovery", "set_state_multicast"): "set_state() fabricated (§5.1 iv)",
    ("recovery", "recovery_set_received"): "state assignment begins (§5.1 v)",
    ("recovery", "handshake_replayed"): "handshake replayed (§4.2.2)",
    ("recovery", "recovered"): "replica reinstated (§5.1 vi)",
    ("recovery", "checkpoint_initiated"): "checkpoint get_state()",
    ("recovery", "checkpoint_logged"): "checkpoint logged",
    ("recovery", "failover_begin"): "failover: backup promoted",
    ("recovery", "failover_replay"): "failover: log replay",
    ("fault_detector", "suspect"): "replica suspected",
    ("fault_detector", "report"): "replica fault reported",
}


def _label(record: TraceRecord) -> str:
    base = _EVENT_LABELS.get((record.category, record.event),
                             f"{record.category}.{record.event}")
    details = []
    for key in ("node", "group", "new_primary", "transfer", "app_bytes",
                "messages", "restarted", "faulty"):
        if key in record.fields:
            details.append(f"{key}={record.fields[key]}")
    if details:
        return f"{base}  ({', '.join(details)})"
    return base


PER_MESSAGE_EVENTS = frozenset({
    ("totem", "token"), ("totem", "frame"), ("totem", "deliver"),
    ("totem", "retransmit"), ("net", "unicast"), ("net", "broadcast"),
    ("replica", "executed"), ("interceptor", "request"),
    ("interceptor", "reply"), ("replication", "duplicate"),
})
"""High-frequency events usually excluded from narrative timelines."""


def render_timeline(
    tracer: Tracer,
    *,
    categories: Optional[set] = None,
    since: float = 0.0,
    until: Optional[float] = None,
    group: Optional[str] = None,
    exclude=PER_MESSAGE_EVENTS,
) -> str:
    """Render retained trace records as an indented timeline string.

    Per-message chatter (tokens, frames, individual deliveries) is excluded
    by default; pass ``exclude=frozenset()`` for the full firehose.
    """
    lines: List[str] = []
    for record in tracer.records:
        if record.time < since:
            continue
        if until is not None and record.time > until:
            continue
        if categories is not None and record.category not in categories:
            continue
        if (record.category, record.event) in exclude:
            continue
        if group is not None and record.fields.get("group") not in (None,
                                                                    group):
            continue
        lines.append(f"  {record.time * 1000:10.3f} ms  {_label(record)}")
    if not lines:
        return "  (no matching trace records — was the tracer keeping " \
               "records?)"
    return "\n".join(lines)


@dataclass(frozen=True)
class RecoverySummary:
    """Key instants of one recovery, extracted from the trace.

    ``phases`` maps §5.1 step names (``announce``, ``quiesce``,
    ``capture``, ``xfer``, ``apply``, ``assign``, ``drain``) to durations
    in simulated seconds; it is empty when the trace carries no spans for
    this recovery.
    """

    group: str
    node: str
    announced_at: float
    sync_point_at: Optional[float]
    state_bytes: Optional[int]
    recovered_at: Optional[float]
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.announced_at


def _phases_by_recovery(tracer: Tracer) -> Dict[tuple, Dict[str, float]]:
    """Index the span-derived phase breakdowns by (group, node, start)."""
    indexed: Dict[tuple, Dict[str, float]] = {}
    for report in recovery_phase_report(tracer):
        indexed[(report.group, report.node)] = report.phases
    return indexed


def recovery_summary(tracer: Tracer) -> List[RecoverySummary]:
    """Extract one summary per observed recovery (join → recovered)."""
    phase_index = _phases_by_recovery(tracer)
    summaries: List[RecoverySummary] = []
    open_by_key: Dict[tuple, dict] = {}
    for record in tracer.records:
        if record.category != "recovery":
            continue
        key = (record.fields.get("group"), record.fields.get("node"))
        if record.event == "join_announced":
            open_by_key[key] = {"announced_at": record.time,
                                "sync_point_at": None, "state_bytes": None}
        elif record.event == "sync_point" and key in open_by_key:
            open_by_key[key]["sync_point_at"] = record.time
        elif record.event == "recovery_set_received" and key in open_by_key:
            open_by_key[key]["state_bytes"] = record.fields.get("app_bytes")
        elif record.event == "recovered" and key in open_by_key:
            info = open_by_key.pop(key)
            summaries.append(RecoverySummary(
                group=key[0], node=key[1],
                announced_at=info["announced_at"],
                sync_point_at=info["sync_point_at"],
                state_bytes=info["state_bytes"],
                recovered_at=record.time,
                phases=phase_index.get(key, {}),
            ))
    # recoveries still in flight
    for key, info in open_by_key.items():
        summaries.append(RecoverySummary(
            group=key[0], node=key[1],
            announced_at=info["announced_at"],
            sync_point_at=info["sync_point_at"],
            state_bytes=info["state_bytes"],
            recovered_at=None,
            phases=phase_index.get(key, {}),
        ))
    summaries.sort(key=lambda s: s.announced_at)
    return summaries
