"""Operator tooling built on the trace stream."""

from repro.tools.timeline import (
    RecoverySummary,
    recovery_phase_report,
    recovery_summary,
    render_phase_table,
    render_timeline,
)

__all__ = [
    "RecoverySummary",
    "recovery_phase_report",
    "recovery_summary",
    "render_phase_table",
    "render_timeline",
]
