"""Operator tooling built on the trace stream."""

from repro.tools.timeline import render_timeline, recovery_summary

__all__ = ["render_timeline", "recovery_summary"]
