"""CDR (Common Data Representation) marshalling.

CDR is CORBA's on-the-wire encoding: primitive types are aligned to their
natural boundaries *relative to the start of the stream* and may be encoded
in either byte order (the producer writes its native order and flags it in
the GIOP header; the consumer byte-swaps if needed).

The implementation covers the primitive types, strings, octet sequences, and
encapsulations (nested CDR streams prefixed with their own endianness octet),
which is everything GIOP headers and our TypeCode-lite values require.
"""

from __future__ import annotations

import struct

from repro.errors import MarshalError, UnmarshalError

_PAD = b"\x00"

#: Padding strings by gap length, so alignment appends one precomputed
#: constant instead of multiplying a fresh bytes object per call.  CDR
#: boundaries are at most 8, so gaps are at most 7 bytes.
_PADDING = tuple(_PAD * n for n in range(8))

#: Precompiled per-primitive ``struct.Struct`` objects, both byte orders;
#: compiled once instead of re-parsing the format string on every write —
#: the marshalling hot path under state transfer and frame encoding.
_STRUCTS = {
    order + fmt: struct.Struct(order + fmt)
    for order in ("<", ">")
    for fmt in ("B", "h", "H", "i", "I", "q", "Q", "f", "d")
}


class CdrOutputStream:
    """Appends CDR-encoded values to a growing byte buffer."""

    def __init__(self, little_endian: bool = False) -> None:
        self.little_endian = little_endian
        self._buf = bytearray()
        self._fmt = "<" if little_endian else ">"

    # -- low level ------------------------------------------------------

    def align(self, boundary: int) -> None:
        remainder = len(self._buf) % boundary
        if remainder:
            self._buf += _PADDING[boundary - remainder]

    def write_raw(self, data: bytes) -> None:
        self._buf += data

    def _pack(self, fmt: str, boundary: int, value) -> None:
        try:
            packed = _STRUCTS[self._fmt + fmt].pack(value)
        except struct.error as exc:
            raise MarshalError(f"cannot pack {value!r} as {fmt!r}: {exc}") from exc
        remainder = len(self._buf) % boundary
        if remainder:
            # Single append per primitive: pad and payload joined once.
            packed = _PADDING[boundary - remainder] + packed
        self._buf += packed

    # -- primitives -----------------------------------------------------

    def write_octet(self, value: int) -> None:
        self._pack("B", 1, value)

    def write_boolean(self, value: bool) -> None:
        self._pack("B", 1, 1 if value else 0)

    def write_short(self, value: int) -> None:
        self._pack("h", 2, value)

    def write_ushort(self, value: int) -> None:
        self._pack("H", 2, value)

    def write_long(self, value: int) -> None:
        self._pack("i", 4, value)

    def write_ulong(self, value: int) -> None:
        self._pack("I", 4, value)

    def write_longlong(self, value: int) -> None:
        self._pack("q", 8, value)

    def write_ulonglong(self, value: int) -> None:
        self._pack("Q", 8, value)

    def write_float(self, value: float) -> None:
        self._pack("f", 4, value)

    def write_double(self, value: float) -> None:
        self._pack("d", 8, value)

    # -- composites ------------------------------------------------------

    def write_string(self, value: str) -> None:
        """CDR string: ulong length (including NUL), UTF-8 bytes, NUL."""
        encoded = value.encode("utf-8")
        self.write_ulong(len(encoded) + 1)
        self.write_raw(encoded + b"\x00")

    def write_octets(self, value: bytes) -> None:
        """sequence<octet>: ulong length then raw bytes."""
        self.write_ulong(len(value))
        self.write_raw(value)

    def write_encapsulation(self, inner: "CdrOutputStream") -> None:
        """An encapsulation: octet-sequence wrapping a nested CDR stream
        whose first octet records the nested stream's endianness."""
        payload = bytes([1 if inner.little_endian else 0]) + inner.getvalue()
        self.write_octets(payload)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class CdrInputStream:
    """Reads CDR-encoded values from a byte buffer.

    Accepts ``bytes``, ``bytearray`` or ``memoryview``: the decode hot
    path hands in a ``memoryview`` of the received datagram, and
    :meth:`read_raw` / :meth:`read_octets` then return sub-views instead
    of copied slices — payload bytes are never duplicated on the way up
    the stack (the view pins the ~MTU-sized datagram buffer, which is
    immutable and bounded).

    ``offset_base`` supports encapsulations: alignment inside an
    encapsulation is relative to the encapsulation's own start.
    """

    def __init__(self, data, little_endian: bool = False) -> None:
        self._data = data
        self._pos = 0
        self.little_endian = little_endian
        self._fmt = "<" if little_endian else ">"

    # -- low level ------------------------------------------------------

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def align(self, boundary: int) -> None:
        remainder = self._pos % boundary
        if remainder:
            self._pos += boundary - remainder

    def read_raw(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise UnmarshalError(
                f"truncated CDR stream: need {count} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        value = self._data[self._pos:self._pos + count]
        self._pos += count
        return value

    def _unpack(self, fmt: str, boundary: int, size: int):
        # Unpack straight out of the backing buffer (no intermediate
        # slice object per primitive — this is the decode hot path).
        pos = self._pos
        remainder = pos % boundary
        if remainder:
            pos += boundary - remainder
        if pos + size > len(self._data):
            raise UnmarshalError(
                f"truncated CDR stream: need {size} bytes at offset "
                f"{pos}, have {len(self._data) - pos}"
            )
        self._pos = pos + size
        try:
            return _STRUCTS[self._fmt + fmt].unpack_from(self._data, pos)[0]
        except struct.error as exc:  # pragma: no cover - guarded above
            raise UnmarshalError(str(exc)) from exc

    # -- primitives -----------------------------------------------------

    def read_octet(self) -> int:
        return self._unpack("B", 1, 1)

    def read_boolean(self) -> bool:
        return bool(self._unpack("B", 1, 1))

    def read_short(self) -> int:
        return self._unpack("h", 2, 2)

    def read_ushort(self) -> int:
        return self._unpack("H", 2, 2)

    def read_long(self) -> int:
        return self._unpack("i", 4, 4)

    def read_ulong(self) -> int:
        return self._unpack("I", 4, 4)

    def read_longlong(self) -> int:
        return self._unpack("q", 8, 8)

    def read_ulonglong(self) -> int:
        return self._unpack("Q", 8, 8)

    def read_float(self) -> float:
        return self._unpack("f", 4, 4)

    def read_double(self) -> float:
        return self._unpack("d", 8, 8)

    # -- composites ------------------------------------------------------

    def read_string(self) -> str:
        length = self.read_ulong()
        if length == 0:
            raise UnmarshalError("CDR string length 0 (must include NUL)")
        raw = self.read_raw(length)
        if raw[-1] != 0:
            raise UnmarshalError("CDR string missing NUL terminator")
        try:
            # str(buffer, encoding) decodes bytes and memoryview alike.
            return str(raw[:-1], "utf-8")
        except UnicodeDecodeError as exc:
            raise UnmarshalError(f"invalid UTF-8 in CDR string: {exc}") from exc

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        return self.read_raw(length)

    def read_encapsulation(self) -> "CdrInputStream":
        payload = self.read_octets()
        if not payload:
            raise UnmarshalError("empty CDR encapsulation")
        return CdrInputStream(payload[1:], little_endian=bool(payload[0]))
