"""GIOP/IIOP protocol machinery: CDR marshalling, message formats, IORs.

CORBA's General Inter-ORB Protocol (GIOP) defines the messages client and
server ORBs exchange; IIOP is its TCP/IP mapping.  Eternal operates *below*
the ORB by intercepting and parsing these byte streams — most notably to
discover each connection's current GIOP ``request_id`` (paper §4.2.1) and to
capture the client-server handshake carried in ``ServiceContext``s (§4.2.2).
This package therefore produces and parses real GIOP bytes, not Python
object stand-ins.

Layers:

* :mod:`repro.giop.cdr` — Common Data Representation encoder/decoder with
  proper alignment and both byte orders.
* :mod:`repro.giop.types` — TypeCode-lite and the CORBA ``any`` type used
  for application-level state (``typedef any State``).
* :mod:`repro.giop.messages` — GIOP Request/Reply/etc. headers and bodies.
* :mod:`repro.giop.service_context` — ServiceContext encoding, including
  code-set negotiation and the vendor-specific handshake.
* :mod:`repro.giop.ior` — Interoperable Object References.
"""

from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.ior import IOR
from repro.giop.messages import (
    GIOP_MAGIC,
    MsgType,
    ReplyStatus,
    GiopHeader,
    RequestMessage,
    ReplyMessage,
    CloseConnectionMessage,
    MessageErrorMessage,
    decode_message,
    encode_message,
    peek_request_id,
)
from repro.giop.service_context import (
    CODE_SETS_ID,
    VENDOR_HANDSHAKE_ID,
    CodeSetContext,
    ServiceContext,
    VendorHandshakeContext,
)
from repro.giop.types import Any as CorbaAny
from repro.giop.types import TCKind, TypeCode, from_any, to_any

__all__ = [
    "CdrInputStream",
    "CdrOutputStream",
    "TCKind",
    "TypeCode",
    "CorbaAny",
    "to_any",
    "from_any",
    "GIOP_MAGIC",
    "MsgType",
    "ReplyStatus",
    "GiopHeader",
    "RequestMessage",
    "ReplyMessage",
    "CloseConnectionMessage",
    "MessageErrorMessage",
    "encode_message",
    "decode_message",
    "peek_request_id",
    "ServiceContext",
    "CodeSetContext",
    "VendorHandshakeContext",
    "CODE_SETS_ID",
    "VENDOR_HANDSHAKE_ID",
    "IOR",
]
