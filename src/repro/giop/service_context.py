"""GIOP ServiceContexts, including the client-server handshake payloads.

"CORBA's GIOP allows vendor-specific information to propagate from the
client to the server through the ServiceContext field of IIOP request
messages" (paper §4.2.2).  Two uses matter for recovery:

* **Code set negotiation** (standard context id 1): the agreed character /
  wide-character transmission code sets, negotiated once per connection at
  the initial handshake.
* **Vendor-specific shortcuts** (our vendor context id): following
  VisiBroker 4.0's short-object-key negotiation, the client and server agree
  on a compact token that replaces the full object key in subsequent
  requests.  A server ORB that never saw the negotiation cannot interpret
  requests that use the token — the exact §4.2.2 failure mode Eternal fixes
  by replaying the stored handshake message to a new server replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream

CODE_SETS_ID = 1
"""OMG-standard ServiceContext id for code-set negotiation."""

VENDOR_HANDSHAKE_ID = 0x45544552
"""Our vendor-specific context id (``ETER`` in ASCII)."""

# Code set registry values (OSF charset registry)
CODESET_ISO8859_1 = 0x00010001
CODESET_UTF8 = 0x05010001
CODESET_UTF16 = 0x00010109


@dataclass(frozen=True)
class ServiceContext:
    """One (context_id, context_data) entry of a GIOP service context list."""

    context_id: int
    context_data: bytes


def write_service_contexts(out: CdrOutputStream,
                           contexts: List[ServiceContext]) -> None:
    """Encode a GIOP service-context list (ulong count then entries)."""
    out.write_ulong(len(contexts))
    for ctx in contexts:
        out.write_ulong(ctx.context_id)
        out.write_octets(ctx.context_data)


def read_service_contexts(inp: CdrInputStream) -> List[ServiceContext]:
    """Decode a GIOP service-context list; guards implausible counts."""
    count = inp.read_ulong()
    if count > 1_000_000:
        raise UnmarshalError(f"implausible service context count {count}")
    return [ServiceContext(inp.read_ulong(), inp.read_octets())
            for _ in range(count)]


@dataclass(frozen=True)
class CodeSetContext:
    """The negotiated char / wchar transmission code sets."""

    char_data: int = CODESET_UTF8
    wchar_data: int = CODESET_UTF16

    def to_service_context(self) -> ServiceContext:
        out = CdrOutputStream()
        out.write_boolean(out.little_endian)
        out.write_ulong(self.char_data)
        out.write_ulong(self.wchar_data)
        return ServiceContext(CODE_SETS_ID, out.getvalue())

    @classmethod
    def from_service_context(cls, ctx: ServiceContext) -> "CodeSetContext":
        if ctx.context_id != CODE_SETS_ID:
            raise UnmarshalError(
                f"not a code-set context (id={ctx.context_id:#x})"
            )
        probe = CdrInputStream(ctx.context_data)
        little = probe.read_boolean()
        inp = CdrInputStream(ctx.context_data, little_endian=little)
        inp.read_boolean()
        return cls(char_data=inp.read_ulong(), wchar_data=inp.read_ulong())


@dataclass(frozen=True)
class VendorHandshakeContext:
    """Vendor-specific negotiation payload.

    On the *first* request of a connection the client sends
    ``propose=True`` with the full object key it wants shortened; the server
    replies with a ``short_key_token`` it will accept in place of that key.
    Subsequent client requests carry ``propose=False`` plus the token.
    """

    propose: bool
    object_key: bytes = b""
    short_key_token: int = 0

    def to_service_context(self) -> ServiceContext:
        out = CdrOutputStream()
        out.write_boolean(out.little_endian)
        out.write_boolean(self.propose)
        out.write_octets(self.object_key)
        out.write_ulong(self.short_key_token)
        return ServiceContext(VENDOR_HANDSHAKE_ID, out.getvalue())

    @classmethod
    def from_service_context(cls, ctx: ServiceContext) -> "VendorHandshakeContext":
        if ctx.context_id != VENDOR_HANDSHAKE_ID:
            raise UnmarshalError(
                f"not a vendor handshake context (id={ctx.context_id:#x})"
            )
        probe = CdrInputStream(ctx.context_data)
        little = probe.read_boolean()
        inp = CdrInputStream(ctx.context_data, little_endian=little)
        inp.read_boolean()
        return cls(
            propose=inp.read_boolean(),
            object_key=inp.read_octets(),
            short_key_token=inp.read_ulong(),
        )


def find_context(contexts: List[ServiceContext],
                 context_id: int) -> Optional[ServiceContext]:
    """First context with the given id, or None."""
    for ctx in contexts:
        if ctx.context_id == context_id:
            return ctx
    return None
