"""Interoperable Object References.

"A server's Interoperable Object Reference (IOR) is a stringified
representation of the server's host name, port number, object key, etc."
(paper §4.2.2, footnote 3).  The IOR also publishes the server's supported
code sets, which the client-side ORB reads to drive code-set negotiation.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass

from repro.errors import UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.service_context import CODESET_UTF8, CODESET_UTF16


@dataclass(frozen=True)
class IOR:
    """A (simplified, single-profile) object reference."""

    type_id: str
    host: str
    port: int
    object_key: bytes
    char_codeset: int = CODESET_UTF8
    wchar_codeset: int = CODESET_UTF16

    def stringify(self) -> str:
        """Encode to the classic ``IOR:<hex>`` form."""
        out = CdrOutputStream()
        out.write_boolean(out.little_endian)
        out.write_string(self.type_id)
        out.write_string(self.host)
        out.write_ushort(self.port)
        out.write_octets(self.object_key)
        out.write_ulong(self.char_codeset)
        out.write_ulong(self.wchar_codeset)
        return "IOR:" + binascii.hexlify(out.getvalue()).decode("ascii")

    @classmethod
    def from_string(cls, text: str) -> "IOR":
        """Parse the ``IOR:<hex>`` form back into an :class:`IOR`."""
        if not text.startswith("IOR:"):
            raise UnmarshalError(f"not a stringified IOR: {text[:16]!r}")
        try:
            raw = binascii.unhexlify(text[4:])
        except (binascii.Error, ValueError) as exc:
            raise UnmarshalError(f"bad IOR hex: {exc}") from exc
        probe = CdrInputStream(raw)
        little = probe.read_boolean()
        inp = CdrInputStream(raw, little_endian=little)
        inp.read_boolean()
        return cls(
            type_id=inp.read_string(),
            host=inp.read_string(),
            port=inp.read_ushort(),
            object_key=inp.read_octets(),
            char_codeset=inp.read_ulong(),
            wchar_codeset=inp.read_ulong(),
        )
