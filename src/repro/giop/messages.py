"""GIOP message encoding and decoding.

Every message is a 12-byte GIOP header (magic, version, flags, type, body
size) followed by a CDR body.  We implement the message types Eternal's
interceptor must understand: Request, Reply, CloseConnection, and
MessageError.  Request and reply bodies carry arguments/results as
TypeCode-lite ``any`` values, which keeps the stack self-describing without
compiled IDL stubs.

:func:`peek_request_id` parses only as far as the ``request_id`` field of a
raw byte string — this is the paper's §4.2.1 technique: "by parsing every
outgoing IIOP request message sent by a client-side ORB, Eternal can
discover, and store, the ORB's current setting for the request_id."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import ProtocolError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.service_context import (
    ServiceContext,
    read_service_contexts,
    write_service_contexts,
)
from repro.giop.types import Any, read_any, to_any, write_any

GIOP_MAGIC = b"GIOP"
GIOP_VERSION = (1, 2)
_HEADER_LEN = 12


class MsgType(enum.IntEnum):
    """GIOP message types (OMG CORBA spec, GIOP header octet 7)."""

    REQUEST = 0
    REPLY = 1
    CANCEL_REQUEST = 2
    LOCATE_REQUEST = 3
    LOCATE_REPLY = 4
    CLOSE_CONNECTION = 5
    MESSAGE_ERROR = 6
    FRAGMENT = 7


class ReplyStatus(enum.IntEnum):
    """GIOP reply status: normal result, user/system exception, forward."""

    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    LOCATION_FORWARD = 3


@dataclass(frozen=True)
class GiopHeader:
    msg_type: MsgType
    size: int
    little_endian: bool = False
    version: tuple = GIOP_VERSION


@dataclass(frozen=True)
class RequestMessage:
    """A GIOP Request: the client's invocation of ``operation`` on the
    object identified by ``object_key`` over one connection."""

    request_id: int
    object_key: bytes
    operation: str
    args: tuple = ()
    response_expected: bool = True
    service_contexts: tuple = ()

    @property
    def oneway(self) -> bool:
        return not self.response_expected


@dataclass(frozen=True)
class ReplyMessage:
    """A GIOP Reply matching the Request with the same ``request_id``."""

    request_id: int
    reply_status: ReplyStatus = ReplyStatus.NO_EXCEPTION
    result: object = None
    exception_id: str = ""
    service_contexts: tuple = ()


@dataclass(frozen=True)
class CloseConnectionMessage:
    """Server-initiated orderly connection shutdown."""


@dataclass(frozen=True)
class MessageErrorMessage:
    """Sent when a peer receives an uninterpretable message."""


GiopMessage = Union[RequestMessage, ReplyMessage,
                    CloseConnectionMessage, MessageErrorMessage]


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_header(out_body: bytes, msg_type: MsgType,
                   little_endian: bool) -> bytes:
    header = CdrOutputStream(little_endian)
    header.write_raw(GIOP_MAGIC)
    header.write_octet(GIOP_VERSION[0])
    header.write_octet(GIOP_VERSION[1])
    header.write_octet(1 if little_endian else 0)  # flags: bit 0 = endianness
    header.write_octet(int(msg_type))
    header.write_ulong(len(out_body))
    return header.getvalue() + out_body


def encode_message(message: GiopMessage, little_endian: bool = False) -> bytes:
    """Serialize a GIOP message to its full wire form (header + body)."""
    body = CdrOutputStream(little_endian)
    if isinstance(message, RequestMessage):
        write_service_contexts(body, list(message.service_contexts))
        body.write_ulong(message.request_id)
        body.write_boolean(message.response_expected)
        body.write_octets(message.object_key)
        body.write_string(message.operation)
        body.write_ulong(len(message.args))
        for arg in message.args:
            write_any(body, to_any(arg))
        return _encode_header(body.getvalue(), MsgType.REQUEST, little_endian)
    if isinstance(message, ReplyMessage):
        write_service_contexts(body, list(message.service_contexts))
        body.write_ulong(message.request_id)
        body.write_ulong(int(message.reply_status))
        if message.reply_status is ReplyStatus.NO_EXCEPTION:
            write_any(body, to_any(message.result))
        else:
            body.write_string(message.exception_id)
            write_any(body, to_any(message.result))
        return _encode_header(body.getvalue(), MsgType.REPLY, little_endian)
    if isinstance(message, CloseConnectionMessage):
        return _encode_header(b"", MsgType.CLOSE_CONNECTION, little_endian)
    if isinstance(message, MessageErrorMessage):
        return _encode_header(b"", MsgType.MESSAGE_ERROR, little_endian)
    raise ProtocolError(f"cannot encode {type(message).__name__}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def decode_header(data: bytes) -> GiopHeader:
    """Parse the 12-byte GIOP header (magic, version, flags, type, size)."""
    if len(data) < _HEADER_LEN:
        raise ProtocolError(f"short GIOP header: {len(data)} bytes")
    if data[:4] != GIOP_MAGIC:
        raise ProtocolError(f"bad GIOP magic {data[:4]!r}")
    version = (data[4], data[5])
    little = bool(data[6] & 1)
    try:
        msg_type = MsgType(data[7])
    except ValueError as exc:
        raise ProtocolError(f"unknown GIOP message type {data[7]}") from exc
    size_stream = CdrInputStream(data[8:12], little_endian=little)
    size = size_stream.read_ulong()
    return GiopHeader(msg_type, size, little, version)


def decode_message(data: bytes) -> GiopMessage:
    """Parse a full GIOP message from its wire form."""
    header = decode_header(data)
    body_bytes = data[_HEADER_LEN:]
    if len(body_bytes) != header.size:
        raise ProtocolError(
            f"GIOP body size mismatch: header says {header.size}, "
            f"got {len(body_bytes)}"
        )
    body = CdrInputStream(body_bytes, little_endian=header.little_endian)
    if header.msg_type is MsgType.REQUEST:
        contexts = tuple(read_service_contexts(body))
        request_id = body.read_ulong()
        response_expected = body.read_boolean()
        object_key = body.read_octets()
        operation = body.read_string()
        arg_count = body.read_ulong()
        if arg_count > 1_000_000:
            raise UnmarshalError(f"implausible argument count {arg_count}")
        args = tuple(read_any(body) for _ in range(arg_count))
        from repro.giop.types import from_any
        return RequestMessage(
            request_id=request_id,
            object_key=object_key,
            operation=operation,
            args=tuple(from_any(a) for a in args),
            response_expected=response_expected,
            service_contexts=contexts,
        )
    if header.msg_type is MsgType.REPLY:
        contexts = tuple(read_service_contexts(body))
        request_id = body.read_ulong()
        raw_status = body.read_ulong()
        try:
            status = ReplyStatus(raw_status)
        except ValueError as exc:
            raise ProtocolError(f"unknown reply status {raw_status}") from exc
        from repro.giop.types import from_any
        if status is ReplyStatus.NO_EXCEPTION:
            result = from_any(read_any(body))
            exception_id = ""
        else:
            exception_id = body.read_string()
            result = from_any(read_any(body))
        return ReplyMessage(
            request_id=request_id,
            reply_status=status,
            result=result,
            exception_id=exception_id,
            service_contexts=contexts,
        )
    if header.msg_type is MsgType.CLOSE_CONNECTION:
        return CloseConnectionMessage()
    if header.msg_type is MsgType.MESSAGE_ERROR:
        return MessageErrorMessage()
    raise ProtocolError(f"unsupported GIOP message type {header.msg_type!r}")


def peek_request_id(data: bytes) -> Optional[int]:
    """Extract the request_id from raw GIOP bytes without a full decode.

    Returns None for message types that carry no request_id.  This is the
    interceptor's fast path for tracking each connection's ``request_id``
    counter from outside the ORB (paper §4.2.1).
    """
    header = decode_header(data)
    if header.msg_type not in (MsgType.REQUEST, MsgType.REPLY,
                               MsgType.CANCEL_REQUEST,
                               MsgType.LOCATE_REQUEST, MsgType.LOCATE_REPLY):
        return None
    body = CdrInputStream(data[_HEADER_LEN:],
                          little_endian=header.little_endian)
    if header.msg_type in (MsgType.REQUEST, MsgType.REPLY):
        count = body.read_ulong()
        for _ in range(count):
            body.read_ulong()    # context_id
            body.read_octets()   # context_data
    return body.read_ulong()
