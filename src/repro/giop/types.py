"""TypeCode-lite and the CORBA ``any`` type.

The FT-CORBA ``Checkpointable`` interface defines application-level state as
``typedef any State`` — "a variable of type any can hold any primitive,
structured and user-defined CORBA type" (paper §4.1).  This module provides
a self-describing ``Any`` with enough of the CORBA TypeCode system to carry
realistic application state: primitives, strings, octet sequences, sequences,
maps, and named structs, all CDR-encodable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any as PyAny
from typing import Dict, Optional, Tuple

from repro.errors import MarshalError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream


class TCKind(enum.IntEnum):
    """Kinds of TypeCode we support (a subset of CORBA's tk_* constants,
    with MAP added for convenience)."""

    NULL = 0
    BOOLEAN = 1
    OCTET = 2
    LONG = 3          # 32-bit signed
    LONGLONG = 4      # 64-bit signed
    DOUBLE = 5
    STRING = 6
    OCTETS = 7        # sequence<octet>, the workhorse for bulk state
    SEQUENCE = 8      # sequence<element_type>
    MAP = 9           # sequence<pair<key, value>> with any-typed entries
    STRUCT = 10       # named fields
    ANY = 11          # nested any


@dataclass(frozen=True)
class TypeCode:
    """A (possibly recursive) type description."""

    kind: TCKind
    element: Optional["TypeCode"] = None                 # SEQUENCE
    name: str = ""                                       # STRUCT
    fields: Tuple[Tuple[str, "TypeCode"], ...] = ()      # STRUCT

    def __post_init__(self) -> None:
        if self.kind is TCKind.SEQUENCE and self.element is None:
            raise MarshalError("SEQUENCE TypeCode requires an element type")


# Singleton simple TypeCodes
TC_NULL = TypeCode(TCKind.NULL)
TC_BOOLEAN = TypeCode(TCKind.BOOLEAN)
TC_OCTET = TypeCode(TCKind.OCTET)
TC_LONG = TypeCode(TCKind.LONG)
TC_LONGLONG = TypeCode(TCKind.LONGLONG)
TC_DOUBLE = TypeCode(TCKind.DOUBLE)
TC_STRING = TypeCode(TCKind.STRING)
TC_OCTETS = TypeCode(TCKind.OCTETS)
TC_MAP = TypeCode(TCKind.MAP)
TC_ANY = TypeCode(TCKind.ANY)


@dataclass(frozen=True)
class Any:
    """A self-describing value: (TypeCode, value).

    For STRUCT the value is a dict of field name → Python value; for
    SEQUENCE a list; for MAP a dict with Any-encodable keys and values.
    """

    typecode: TypeCode
    value: PyAny

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Any({self.typecode.kind.name}, {self.value!r})"


def to_any(value: PyAny) -> Any:
    """Wrap a plain Python value in an :class:`Any`, inferring its TypeCode.

    Mapping: None→NULL, bool→BOOLEAN, int→LONGLONG, float→DOUBLE,
    str→STRING, bytes→OCTETS, list/tuple→SEQUENCE<any>, dict→MAP,
    Any→itself.
    """
    if isinstance(value, Any):
        return value
    if value is None:
        return Any(TC_NULL, None)
    if isinstance(value, bool):
        return Any(TC_BOOLEAN, value)
    if isinstance(value, int):
        return Any(TC_LONGLONG, value)
    if isinstance(value, float):
        return Any(TC_DOUBLE, value)
    if isinstance(value, str):
        return Any(TC_STRING, value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        # memoryview: zero-copy decode hands out views into the recv
        # buffer; materialize on the (cold) re-marshal path.
        return Any(TC_OCTETS, bytes(value))
    if isinstance(value, (list, tuple)):
        return Any(TypeCode(TCKind.SEQUENCE, element=TC_ANY), list(value))
    if isinstance(value, dict):
        return Any(TC_MAP, dict(value))
    raise MarshalError(f"cannot infer a TypeCode for {type(value).__name__}")


def from_any(any_value: Any) -> PyAny:
    """Unwrap an :class:`Any` back to a plain Python value (deeply)."""
    kind = any_value.typecode.kind
    value = any_value.value
    if kind is TCKind.SEQUENCE:
        return [from_any(v) if isinstance(v, Any) else v for v in value]
    if kind is TCKind.MAP:
        return {k: (from_any(v) if isinstance(v, Any) else v)
                for k, v in value.items()}
    if kind is TCKind.STRUCT:
        return {k: (from_any(v) if isinstance(v, Any) else v)
                for k, v in value.items()}
    return value


def struct_any(name: str, **fields: PyAny) -> Any:
    """Build a STRUCT-typed :class:`Any` from keyword fields."""
    tc_fields = tuple((k, to_any(v).typecode) for k, v in fields.items())
    return Any(TypeCode(TCKind.STRUCT, name=name, fields=tc_fields),
               dict(fields))


# ---------------------------------------------------------------------------
# CDR encoding of TypeCodes and Anys
# ---------------------------------------------------------------------------

def write_typecode(out: CdrOutputStream, tc: TypeCode) -> None:
    """Encode a (possibly recursive) TypeCode onto the stream."""
    out.write_ulong(int(tc.kind))
    if tc.kind is TCKind.SEQUENCE:
        write_typecode(out, tc.element)
    elif tc.kind is TCKind.STRUCT:
        out.write_string(tc.name)
        out.write_ulong(len(tc.fields))
        for field_name, field_tc in tc.fields:
            out.write_string(field_name)
            write_typecode(out, field_tc)


def read_typecode(inp: CdrInputStream) -> TypeCode:
    """Decode a TypeCode; raises UnmarshalError on unknown kinds."""
    raw_kind = inp.read_ulong()
    try:
        kind = TCKind(raw_kind)
    except ValueError as exc:
        raise UnmarshalError(f"unknown TCKind {raw_kind}") from exc
    if kind is TCKind.SEQUENCE:
        return TypeCode(kind, element=read_typecode(inp))
    if kind is TCKind.STRUCT:
        name = inp.read_string()
        count = inp.read_ulong()
        fields = tuple(
            (inp.read_string(), read_typecode(inp)) for _ in range(count)
        )
        return TypeCode(kind, name=name, fields=fields)
    return TypeCode(kind)


def _write_value(out: CdrOutputStream, tc: TypeCode, value: PyAny) -> None:
    kind = tc.kind
    if kind is TCKind.NULL:
        return
    if kind is TCKind.BOOLEAN:
        out.write_boolean(bool(value))
    elif kind is TCKind.OCTET:
        out.write_octet(int(value))
    elif kind is TCKind.LONG:
        out.write_long(int(value))
    elif kind is TCKind.LONGLONG:
        out.write_longlong(int(value))
    elif kind is TCKind.DOUBLE:
        out.write_double(float(value))
    elif kind is TCKind.STRING:
        out.write_string(value)
    elif kind is TCKind.OCTETS:
        out.write_octets(value)
    elif kind is TCKind.SEQUENCE:
        out.write_ulong(len(value))
        for item in value:
            if tc.element.kind is TCKind.ANY:
                write_any(out, to_any(item))
            else:
                _write_value(out, tc.element, item)
    elif kind is TCKind.MAP:
        out.write_ulong(len(value))
        for key, item in value.items():
            write_any(out, to_any(key))
            write_any(out, to_any(item))
    elif kind is TCKind.STRUCT:
        for field_name, field_tc in tc.fields:
            try:
                field_value = value[field_name]
            except KeyError as exc:
                raise MarshalError(
                    f"struct {tc.name!r} missing field {field_name!r}"
                ) from exc
            _write_value_or_any(out, field_tc, field_value)
    elif kind is TCKind.ANY:
        write_any(out, to_any(value))
    else:  # pragma: no cover - all kinds handled
        raise MarshalError(f"cannot encode TCKind {kind!r}")


def _write_value_or_any(out: CdrOutputStream, tc: TypeCode, value: PyAny) -> None:
    if isinstance(value, Any):
        _write_value(out, value.typecode, value.value)
    else:
        _write_value(out, tc, value)


def _read_value(inp: CdrInputStream, tc: TypeCode) -> PyAny:
    kind = tc.kind
    if kind is TCKind.NULL:
        return None
    if kind is TCKind.BOOLEAN:
        return inp.read_boolean()
    if kind is TCKind.OCTET:
        return inp.read_octet()
    if kind is TCKind.LONG:
        return inp.read_long()
    if kind is TCKind.LONGLONG:
        return inp.read_longlong()
    if kind is TCKind.DOUBLE:
        return inp.read_double()
    if kind is TCKind.STRING:
        return inp.read_string()
    if kind is TCKind.OCTETS:
        return inp.read_octets()
    if kind is TCKind.SEQUENCE:
        count = inp.read_ulong()
        if tc.element.kind is TCKind.ANY:
            return [from_any(read_any(inp)) for _ in range(count)]
        return [_read_value(inp, tc.element) for _ in range(count)]
    if kind is TCKind.MAP:
        count = inp.read_ulong()
        result: Dict = {}
        for _ in range(count):
            key = from_any(read_any(inp))
            result[key] = from_any(read_any(inp))
        return result
    if kind is TCKind.STRUCT:
        return {field_name: _read_value(inp, field_tc)
                for field_name, field_tc in tc.fields}
    if kind is TCKind.ANY:
        return from_any(read_any(inp))
    raise UnmarshalError(f"cannot decode TCKind {kind!r}")  # pragma: no cover


def write_any(out: CdrOutputStream, any_value: Any) -> None:
    """Encode (TypeCode, value) onto the stream."""
    write_typecode(out, any_value.typecode)
    _write_value(out, any_value.typecode, any_value.value)


def read_any(inp: CdrInputStream) -> Any:
    """Decode an :class:`Any` from the stream."""
    tc = read_typecode(inp)
    return Any(tc, _read_value(inp, tc))


def encode_any(any_value: Any, little_endian: bool = False) -> bytes:
    """Standalone encoding of an Any (used for checkpoints in logs)."""
    out = CdrOutputStream(little_endian)
    out.write_boolean(little_endian)
    write_any(out, any_value)
    return out.getvalue()


def decode_any(data: bytes) -> Any:
    """Inverse of :func:`encode_any`."""
    probe = CdrInputStream(data)
    little = probe.read_boolean()
    inp = CdrInputStream(data, little_endian=little)
    inp.read_boolean()
    return read_any(inp)
