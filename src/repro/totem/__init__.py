"""A Totem-like reliable totally-ordered multicast group-communication system.

Eternal conveys all IIOP traffic over the Totem single-ring protocol
(Moser et al., CACM 1996).  This package reproduces the properties Eternal
depends on, on top of :mod:`repro.simnet`:

* **Total order** — a token circulates the ring; only the token holder
  assigns sequence numbers, so all members deliver the same message sequence.
* **Reliability** — members retain broadcast messages until they are *safe*
  (seen by all members); gaps are repaired via retransmission requests
  carried on the token.
* **Membership / virtual synchrony** — token loss or a JOIN from a new
  member triggers a gather phase; a new ring forms, messages known to any
  survivor are flushed to all members before the new view is installed, and
  the upper layer receives a view-change notification.
* **MTU fragmentation** — application messages larger than the Ethernet
  payload are fragmented into multiple sequenced multicast frames and
  reassembled in order at each member (the effect that shapes the paper's
  Figure 6).

A restarted member joins *fresh*: it does not receive pre-crash traffic.
Bringing its replica back to a consistent state is exactly the job of
Eternal's recovery mechanisms (:mod:`repro.core.recovery`), not of the group
communication layer — mirroring the division of labour in the paper.
"""

from repro.totem.config import TotemConfig
from repro.totem.fragmentation import Fragmenter, Reassembler
from repro.totem.member import MemberState, TotemMember, View
from repro.totem.messages import DataMsg, FormMsg, JoinMsg, Token

__all__ = [
    "TotemConfig",
    "TotemMember",
    "MemberState",
    "View",
    "DataMsg",
    "JoinMsg",
    "FormMsg",
    "Token",
    "Fragmenter",
    "Reassembler",
]
