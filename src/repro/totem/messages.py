"""Wire messages of the Totem single-ring protocol.

Each message declares an honest ``size_bytes`` so the network model charges
realistic transmission time.  The sizes follow the layout a real
implementation would use (fixed header plus per-entry costs); the payload of
a :class:`DataMsg` is actual bytes, so its dominant term is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

DATA_HEADER = 32
"""Fixed per-frame overhead of a :class:`DataMsg` in bytes (ring_id, seq,
sender, fragment info, checksum).  The ring member subtracts this from the
transport MTU to size fragments."""

_DATA_HEADER = DATA_HEADER   # historical alias
_TOKEN_BASE = 56        # ring_id, seq, aru, aru_id, rotations, ring key/phase
_JOIN_BASE = 64         # sender, ring id/base seen, aru, fresh flag, digest
_FORM_BASE = 64         # ring_id, flush_seq, leader

PACKED_SUBHEADER = 12
"""Per-payload overhead inside a :class:`PackedDataMsg` (msg_id, fragment
indices, payload length)."""


@dataclass(frozen=True)
class DataMsg:
    """One sequenced multicast frame carrying a fragment of an application
    message.  ``seq`` is globally unique and monotonically increasing across
    ring reformations (the new ring continues from the flush sequence)."""

    ring_id: int
    seq: int
    sender: str
    msg_id: Tuple[str, int]     # (originating node, per-origin counter)
    frag_index: int
    frag_count: int
    chunk: bytes
    retransmit: bool = False
    trace_id: str = ""          # end-to-end invocation trace (may be empty)

    @property
    def size_bytes(self) -> int:
        return _DATA_HEADER + len(self.chunk)


@dataclass(frozen=True)
class PackedPayload:
    """One application fragment carried inside a :class:`PackedDataMsg`."""

    msg_id: Tuple[str, int]     # (originating node, per-origin counter)
    frag_index: int
    frag_count: int
    chunk: bytes
    trace_id: str = ""          # end-to-end invocation trace (may be empty)


@dataclass(frozen=True)
class PackedDataMsg:
    """One sequenced multicast frame carrying *several* sub-MTU fragments.

    The token holder coalesces queued fragments that fit together under
    the transport MTU into a single frame per token visit, amortizing the
    fixed per-frame cost (header, inter-frame silence, per-frame CPU) over
    many small application messages.  The frame occupies exactly one slot
    (``seq``) in the total order; members deliver its payloads in listed
    order, so total-order and reassembly semantics are unchanged — a
    packed frame is equivalent to its payloads sent back-to-back.
    """

    ring_id: int
    seq: int
    sender: str
    payloads: Tuple[PackedPayload, ...]
    retransmit: bool = False

    @property
    def size_bytes(self) -> int:
        return _DATA_HEADER + sum(PACKED_SUBHEADER + len(p.chunk)
                                  for p in self.payloads)


@dataclass
class Token:
    """The circulating token.  Possession authorizes broadcasting.

    ``seq`` is the highest sequence number assigned so far; ``aru``
    (all-received-up-to) is the lowest contiguous sequence number received by
    every member, tracked with the standard Totem ``aru_id`` rule; ``rtr``
    lists sequence numbers some member is missing (retransmission requests).

    ``ring_key`` fingerprints the exact ring configuration (id, leader and
    member set): concurrent sibling rings formed from divergent gather sets
    can collide on ``ring_id`` (each computes max-seen + 1), and the key is
    what keeps one ring's token from circulating in the other.  A token
    with ``commit_phase`` > 0 is a *commit token*: it carries no broadcast
    authority but must complete two full rotations of the forming ring
    (phase 1 = every member flushed, phase 2 = every member installs)
    before the ring becomes operational.
    """

    ring_id: int
    seq: int
    aru: int
    aru_id: str = ""
    rtr: List[int] = field(default_factory=list)
    rotations: int = 0
    ring_key: int = 0
    commit_phase: int = 0

    @property
    def size_bytes(self) -> int:
        return _TOKEN_BASE + 8 * len(self.rtr)


@dataclass(frozen=True)
class ProbeMsg:
    """Periodic leader broadcast announcing the ring's existence.

    Rings in a healed partition exchange no data until an application
    message happens to cross; the probe guarantees that concurrent rings
    discover each other (and merge) within a bounded time even when idle.
    """

    ring_id: int
    sender: str
    members: Tuple[str, ...]

    @property
    def size_bytes(self) -> int:
        return 40 + 16 * len(self.members)


@dataclass(frozen=True)
class JoinMsg:
    """Broadcast during the gather phase (and by joining members).

    ``delivered_aru`` / ``held`` describe what the sender can contribute to
    the flush; ``fresh`` marks a member with no history (a re-launched
    process), which will skip pre-join traffic — replica state is then
    restored by Eternal's recovery mechanisms, not by Totem.

    ``view_members`` is the sender's last installed ring membership; the
    gather leader uses view *connectivity* to distinguish members that
    merely lag a ring generation (overlapping views — same history) from
    members arriving out of a healed partition (disjoint views — divergent
    histories that cannot both be kept).

    ``base_seen`` is the ``base_seq`` of the sender's last installed ring.
    A join from an older ring generation whose ``delivered_aru`` exceeds
    the newest generation's base delivered into sequence numbers the newer
    lineage reassigned — its history conflicts and it must rejoin fresh.
    """

    sender: str
    ring_id_seen: int
    delivered_aru: int
    held: FrozenSet[int]
    fresh: bool
    view_members: Tuple[str, ...] = ()
    base_seen: int = 0

    @property
    def size_bytes(self) -> int:
        # The held set is contiguous except for loss-induced holes, so the
        # wire form is a run-length range list: 8 bytes per maximal range.
        return (_JOIN_BASE + 8 * self._range_count()
                + 16 * len(self.view_members))

    def _range_count(self) -> int:
        if not self.held:
            return 0
        ranges = 1
        previous = None
        for seq in sorted(self.held):
            if previous is not None and seq != previous + 1:
                ranges += 1
            previous = seq
        return ranges


@dataclass(frozen=True)
class FormMsg:
    """Sent by the gather leader to install the new ring.

    ``holders`` maps each sequence number in the flush window to one member
    that retains it; those members rebroadcast so every new member reaches
    ``flush_seq`` before the view is installed.

    ``fresh_members`` lists members whose pre-merge history is *not* the
    canonical one (a healed partition merges divergent rings; the larger
    side's history wins and the other side rejoins as history-less —
    primary-component semantics).
    """

    ring_id: int
    leader: str
    members: Tuple[str, ...]
    flush_seq: int
    base_seq: int               # deliveries start after this for fresh members
    holders: Dict[int, str]
    fresh_members: Tuple[str, ...] = ()

    @property
    def size_bytes(self) -> int:
        return (_FORM_BASE + 16 * len(self.members)
                + 12 * len(self.holders) + 16 * len(self.fresh_members))
