"""The Totem single-ring member state machine.

Each node runs one :class:`TotemMember`.  A token circulates the ring; only
the holder broadcasts, assigning consecutive sequence numbers, so every
member delivers the identical message sequence (total order).  Members
retain delivered messages until they are *safe* (received by all members,
as witnessed by the token's ``aru``), which lets them service retransmission
requests and flush messages to survivors during membership changes.

State machine::

    OPERATIONAL --token timeout / JOIN seen--> GATHER
    GATHER      --gather deadline, leader FORM--> RECOVERY
    RECOVERY    --flushed + commit rotation--> OPERATIONAL (view installed)

Installation is gated on a two-pass *commit token* rotation of the forming
ring (phase 1 confirms every member flushed; phase 2 installs), so a FORM
computed from an incomplete join set — the sender missed joins under
message loss — can never make a ring operational: its commit token dies at
the first member not pending that exact configuration.  Tokens carry a
``ring_key`` fingerprint because concurrent sibling rings formed from
divergent gather sets collide on the bare ``ring_id``.

A brand-new or re-launched member starts in GATHER with ``fresh=True``; on
installation it skips all pre-join traffic (its ``delivered_aru`` jumps to
the flush sequence).  Restoring the application replica hosted above such a
member is the job of Eternal's recovery mechanisms — Totem only guarantees
that whatever *is* delivered is delivered to all members in the same order.

Sender reliability: a member keeps its own broadcast fragments "in flight"
until it observes their self-delivery; fragments orphaned by a ring
reformation (sent but never sequenced into the surviving history) are
re-queued at the front of the send queue and rebroadcast in the new ring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from zlib import crc32
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NotInRing, TotemError
from repro.obs.spans import SpanEmitter
from repro.runtime.interfaces import TimerHandle, Transport
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.totem.config import TotemConfig
from repro.totem.fragmentation import Fragmenter, Reassembler
from repro.totem.messages import (DATA_HEADER, PACKED_SUBHEADER, DataMsg,
                                  FormMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, ProbeMsg, Token)

DeliverFn = Callable[[str, bytes], None]
ViewFn = Callable[["View"], None]



class MemberState(enum.Enum):
    """Ring-member protocol phase (see the module docstring)."""

    GATHER = "gather"
    RECOVERY = "recovery"
    OPERATIONAL = "operational"


@dataclass(frozen=True)
class View:
    """A membership view: the ring identifier and its sorted member list."""

    ring_id: int
    members: Tuple[str, ...]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.members


class TotemMember:
    """One ring member; see the module docstring for the protocol."""

    def __init__(
        self,
        endpoint: Transport,
        config: TotemConfig,
        *,
        on_deliver: DeliverFn,
        on_view_change: Optional[ViewFn] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.endpoint = endpoint
        self.config = config
        self.tracer = tracer
        self._spans = SpanEmitter(tracer, node_id=endpoint.node_id)
        self.on_deliver = on_deliver
        self.on_view_change = on_view_change
        self.node_id = endpoint.node_id
        self._scheduler = endpoint.process.scheduler

        # Ring state
        self.state = MemberState.GATHER
        self.ring_id = 0
        self.members: Tuple[str, ...] = ()
        self.fresh = True
        self.delivered_aru = 0          # highest contiguously delivered seq
        self._held: Dict[int, DataMsg] = {}
        # Rolling hash over the delivered frame sequence: members of one
        # ring configuration must agree at every publication point (the
        # total-order guarantee, verified online by the auditor).  Keyed
        # by ring id *and* member set — partitioned halves can compute
        # the same successor ring id independently.
        self._order_hash = 0
        self._order_base = 0
        self._order_ring_key = ""

        # Sending
        max_chunk = endpoint.mtu_payload - DATA_HEADER
        self._fragmenter = Fragmenter(self.node_id, max_chunk)
        self._reassembler = Reassembler(observer=self._on_reassembly)
        self._send_queue: List[tuple] = []
        self._inflight: Dict[Tuple[Tuple[str, int], int], tuple] = {}

        # Membership bookkeeping
        self.last_install_was_fresh = False
        self._joins: Dict[str, JoinMsg] = {}
        self._pending_form: Optional[FormMsg] = None
        self._ring_key = 0              # fingerprint of the installed ring
        self._base_seen = 0             # base_seq of the installed ring
        self._commit_started = False
        self._stashed_commit: Optional[Token] = None
        self._commit_retry: Optional[TimerHandle] = None
        self._commit_retries = 0
        self._ring_kicked = False
        self._sent_token: Optional[Tuple[Token, str]] = None
        self._token_retx: Optional[TimerHandle] = None
        self._last_token_rot = -1
        self._gather_deadline: Optional[TimerHandle] = None
        self._join_timer: Optional[TimerHandle] = None
        self._token_timer: Optional[TimerHandle] = None
        self._recovery_deadline: Optional[TimerHandle] = None
        self._active = True

        self._last_probe = 0.0
        endpoint.register(DataMsg, self._on_data)
        endpoint.register(PackedDataMsg, self._on_data)
        endpoint.register(Token, self._on_token_frame)
        endpoint.register(JoinMsg, self._on_join)
        endpoint.register(FormMsg, self._on_form)
        endpoint.register(ProbeMsg, self._on_probe)
        endpoint.process.on_crash(self.shutdown)

        self._enter_gather()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def view(self) -> View:
        return View(self.ring_id, self.members)

    @property
    def operational(self) -> bool:
        return self.state is MemberState.OPERATIONAL

    @property
    def reassembly_pending(self) -> int:
        """Partially reassembled application messages currently buffered
        (exposed as the ``eternal_totem_partial_count`` health gauge)."""
        return self._reassembler.pending

    def multicast(self, payload: bytes, *, trace_id: str = "") -> None:
        """Queue ``payload`` for reliable totally-ordered delivery to all
        ring members (including this one).  Larger-than-MTU payloads are
        fragmented into multiple sequenced frames.  ``trace_id`` rides
        every fragment to the delivery emit on each member, tying the ring
        hop into the sender's end-to-end invocation trace."""
        if not self._active:
            raise NotInRing(f"{self.node_id}: member is shut down")
        if len(self._send_queue) >= self.config.max_queue:
            raise TotemError(f"{self.node_id}: send queue overflow")
        self._send_queue.extend(
            entry + (trace_id,) for entry in self._fragmenter.fragment(payload))

    def shutdown(self) -> None:
        """Deactivate (process crash or stack teardown): cancel all timers
        and stop reacting to frames.  Volatile ring state is abandoned."""
        if not self._active:
            return
        self._active = False
        for event in (self._gather_deadline, self._join_timer,
                      self._token_timer, self._recovery_deadline,
                      self._commit_retry, self._token_retx):
            if event is not None:
                event.cancel()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _on_data(self, src: str, msg: DataMsg) -> None:
        if not self._active:
            return
        if self.state is MemberState.OPERATIONAL \
                and msg.sender not in self.members:
            # Foreign traffic: another ring exists (a healed partition).
            # Disturb both rings into a merging gather.
            self.tracer.emit("totem", "foreign", node=self.node_id,
                             sender=msg.sender)
            self._enter_gather()
            return
        if msg.seq <= self.delivered_aru or msg.seq in self._held:
            return
        if self.state is MemberState.RECOVERY:
            form = self._pending_form
            if form is None or msg.seq > form.flush_seq:
                return
        elif msg.ring_id != self.ring_id:
            return  # stale traffic from a superseded ring
        self._held[msg.seq] = msg
        self._try_deliver()
        if self.state is MemberState.RECOVERY:
            self._maybe_install()

    @staticmethod
    def _payload_entries(
            msg) -> List[Tuple[Tuple[str, int], int, int, bytes, str]]:
        """The application fragments a frame carries, in delivery order —
        one for a classic :class:`DataMsg`, several for a packed frame."""
        if isinstance(msg, PackedDataMsg):
            return [(p.msg_id, p.frag_index, p.frag_count, p.chunk,
                     p.trace_id)
                    for p in msg.payloads]
        return [(msg.msg_id, msg.frag_index, msg.frag_count, msg.chunk,
                 msg.trace_id)]

    def _try_deliver(self) -> None:
        while (self.delivered_aru + 1) in self._held:
            self.delivered_aru += 1
            msg = self._held[self.delivered_aru]
            for msg_id, frag_index, frag_count, chunk, trace \
                    in self._payload_entries(msg):
                self._order_hash = crc32(
                    f"{msg.seq}:{msg.sender}:{msg_id}:"
                    f"{frag_index}".encode(),
                    self._order_hash,
                )
                if msg.sender == self.node_id:
                    self._inflight.pop((msg_id, frag_index), None)
                payload = self._reassembler.add(
                    msg_id, frag_index, frag_count, chunk
                )
                if payload is not None:
                    self.tracer.emit("totem", "deliver", node=self.node_id,
                                     origin=msg_id[0], seq=msg.seq,
                                     size=len(payload), trace=trace)
                    self.on_deliver(msg_id[0], payload)
            interval = self.config.order_digest_interval
            if (interval and self._order_ring_key
                    and (self.delivered_aru - self._order_base)
                    % interval == 0):
                self.tracer.emit("audit", "order_digest", node=self.node_id,
                                 cfg=self._order_ring_key,
                                 base=self._order_base,
                                 seq=self.delivered_aru,
                                 digest=f"{self._order_hash:08x}")

    # ------------------------------------------------------------------
    # Token path
    # ------------------------------------------------------------------

    def _on_token_frame(self, src: str, token: Token) -> None:
        if not self._active:
            return
        if token.commit_phase:
            self._on_commit_token(token)
            return
        if self.state is not MemberState.OPERATIONAL:
            return
        if token.ring_key != self._ring_key:
            return  # stale token, or a same-id sibling ring's token
        if token.rotations <= self._last_token_rot:
            # Duplicate: an upstream holder retransmitted a token we have
            # already processed (see _on_token_retx).  The leader bumps
            # ``rotations`` once per pass, so every member sees a strictly
            # increasing value on genuine receipts.
            return
        self._last_token_rot = token.rotations
        if self._token_retx is not None:
            self._token_retx.cancel()
            self._token_retx = None
        self._reset_token_timer()
        self.tracer.emit("totem", "token", node=self.node_id, seq=token.seq,
                         aru=token.aru, src=src)

        # 1. Service retransmission requests we can satisfy.
        unresolved: List[int] = []
        for seq in token.rtr:
            held = self._held.get(seq)
            if held is not None:
                self._broadcast_frame(replace(held, retransmit=True))
                self.tracer.emit("totem", "retransmit", node=self.node_id,
                                 seq=seq)
            else:
                unresolved.append(seq)
        token.rtr = unresolved

        # 2. Broadcast queued fragments, up to the burst window (counted in
        # frames; a packed frame coalesces several sub-MTU fragments).  The
        # sender retains its own frame directly (real-Totem semantics): a
        # lost loopback copy must not stall delivery or leave nobody able
        # to service a retransmission request for the sequence number.
        sent_frames = 0
        while sent_frames < self.config.max_burst and self._send_queue:
            token.seq += 1
            msg = self._next_frame(token.seq)
            self._held[token.seq] = msg
            self._broadcast_frame(msg)
            sent_frames += 1
        if sent_frames:
            self._try_deliver()

        # 3. Request retransmission of our genuine gaps.
        budget = 64
        for seq in range(self.delivered_aru + 1, token.seq + 1):
            if budget == 0:
                break
            if seq not in self._held and seq not in token.rtr:
                token.rtr.append(seq)
                budget -= 1

        # 4. Update the all-received-up-to watermark (Totem aru rule): any
        # member lagging lowers it and stamps its id; the stamping member
        # (or an unclaimed token) raises it to the member's own aru, and a
        # full quiet rotation converges it to the ring-wide minimum.
        if self.delivered_aru < token.aru:
            token.aru = self.delivered_aru
            token.aru_id = self.node_id
        elif token.aru_id in ("", self.node_id):
            token.aru = self.delivered_aru
            token.aru_id = self.node_id if token.aru < token.seq else ""

        # 5. Garbage-collect messages that are safe at all members.
        threshold = token.aru - self.config.retain_safe_slack
        if threshold > 0:
            for seq in [s for s in self._held if s <= threshold]:
                del self._held[seq]

        if self.members and self.node_id == self.members[0]:
            # One span per full token rotation, bracketed by consecutive
            # leader visits (the previous rotation ends as the next begins).
            self._spans.end(self._rotation_span_id(token.rotations),
                            seq=token.seq, aru=token.aru)
            token.rotations += 1
            self._spans.start(
                "totem.rotation",
                span_id=self._rotation_span_id(token.rotations),
                node=self.node_id, ring_id=self.ring_id,
                rotation=token.rotations,
            )
            now = self._scheduler.now
            if now - self._last_probe >= self.config.probe_interval:
                self._last_probe = now
                probe = ProbeMsg(self.ring_id, self.node_id, self.members)
                self.endpoint.broadcast(probe, probe.size_bytes)

        # 6. Forward to the ring successor after the hold time.
        successor = self._successor()
        forwarded = Token(token.ring_id, token.seq, token.aru, token.aru_id,
                          list(token.rtr), token.rotations, token.ring_key)
        self.endpoint.process.call_after(
            self.config.token_hold,
            self._forward_token, forwarded, successor,
        )

    def _forward_token(self, token: Token, successor: str) -> None:
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if token.ring_key != self._ring_key:
            return
        self.endpoint.unicast(successor, token, token.size_bytes)
        # Retain a private copy for loss repair: the in-flight object is
        # mutated by the receiver's processing, so the retransmission must
        # snapshot the state as sent.
        self._sent_token = (Token(token.ring_id, token.seq, token.aru,
                                  token.aru_id, list(token.rtr),
                                  token.rotations, token.ring_key),
                            successor)
        self._arm_token_retx()

    def _arm_token_retx(self) -> None:
        if self._token_retx is not None:
            self._token_retx.cancel()
        self._token_retx = self.endpoint.process.call_after(
            self.config.token_timeout / 4, self._on_token_retx
        )

    def _on_token_retx(self) -> None:
        """The ring has been silent since we forwarded the token: assume
        the token frame was lost somewhere downstream and re-unicast our
        copy.  Every holder upstream of the loss point does the same; all
        but the one bridging the lost hop are dropped as duplicates by the
        rotation-count check in _on_token_frame."""
        self._token_retx = None
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if self._sent_token is None:
            return
        token, successor = self._sent_token
        if token.ring_key != self._ring_key:
            return
        self.tracer.emit("totem", "token_retx", node=self.node_id,
                         seq=token.seq, rotation=token.rotations)
        # Clone per retransmission: a delivered copy is mutated by its
        # receiver, and the snapshot must stay pristine for further tries.
        resend = Token(token.ring_id, token.seq, token.aru, token.aru_id,
                       list(token.rtr), token.rotations, token.ring_key)
        self.endpoint.unicast(successor, resend, resend.size_bytes)
        self._arm_token_retx()

    def _successor(self) -> str:
        index = self.members.index(self.node_id)
        return self.members[(index + 1) % len(self.members)]

    def _rotation_span_id(self, rotation: int) -> str:
        if self.config.ring_name:
            return f"rot:{self.config.ring_name}:{self.ring_id}:{rotation}"
        return f"rot:{self.ring_id}:{rotation}"

    def _on_reassembly(self, event: str, msg_id, frag_count: int) -> None:
        """Trace multi-fragment reassembly as spans (first fragment
        delivered -> payload rebuilt); mid-message joins count skips."""
        span_id = f"frag:{msg_id[0]}:{msg_id[1]}@{self.node_id}"
        if event == "begin":
            self._spans.start("totem.reassembly", span_id=span_id,
                              node=self.node_id, origin=msg_id[0],
                              fragments=frag_count)
        elif event == "complete":
            self._spans.end(span_id)
        else:
            self.tracer.emit("totem", "reassembly_skipped",
                             node=self.node_id, origin=msg_id[0])

    def _next_frame(self, seq: int):
        """Pop queued fragment(s) into the frame for one broadcast slot.

        With packing enabled, greedily coalesce consecutive queued sub-MTU
        fragments while the frame stays within the transport MTU.  A
        full-MTU fragment (or a lone fragment) travels as a classic
        :class:`DataMsg` — the sub-header would only add overhead.
        """
        first = self._send_queue.pop(0)
        self._inflight[(first[0], first[1])] = first
        entries = [first]
        if self.config.frame_packing:
            size = DATA_HEADER + PACKED_SUBHEADER + len(first[3])
            while self._send_queue:
                nxt = self._send_queue[0]
                added = PACKED_SUBHEADER + len(nxt[3])
                if size + added > self.endpoint.mtu_payload:
                    break
                self._send_queue.pop(0)
                self._inflight[(nxt[0], nxt[1])] = nxt
                entries.append(nxt)
                size += added
        if len(entries) == 1:
            msg_id, index, count, chunk, trace = first
            return DataMsg(self.ring_id, seq, self.node_id,
                           msg_id, index, count, chunk, trace_id=trace)
        return PackedDataMsg(
            self.ring_id, seq, self.node_id,
            tuple(PackedPayload(*entry) for entry in entries),
        )

    def _broadcast_frame(self, msg) -> None:
        self.tracer.emit("totem", "frame", node=self.node_id, seq=msg.seq,
                         size=msg.size_bytes, retransmit=msg.retransmit)
        if isinstance(msg, PackedDataMsg) and not msg.retransmit:
            self.tracer.emit("totem", "packed_frame", node=self.node_id,
                             seq=msg.seq, payloads=len(msg.payloads),
                             size=msg.size_bytes)
        self.endpoint.broadcast(msg, msg.size_bytes)

    def _reset_token_timer(self) -> None:
        if self._token_timer is not None:
            self._token_timer.cancel()
        self._token_timer = self.endpoint.process.call_after(
            self.config.token_timeout, self._on_token_timeout
        )

    def _on_token_timeout(self) -> None:
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        self.tracer.emit("totem", "token_timeout", node=self.node_id)
        self._enter_gather()

    def _on_probe(self, src: str, probe: ProbeMsg) -> None:
        """A probe from a ring we are not part of means a healed partition:
        disturb both rings into a merging gather."""
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if probe.sender in self.members:
            return
        self.tracer.emit("totem", "foreign", node=self.node_id,
                         sender=probe.sender)
        self._enter_gather()

    # ------------------------------------------------------------------
    # Membership: gather
    # ------------------------------------------------------------------

    def _enter_gather(self) -> None:
        self.state = MemberState.GATHER
        self._pending_form = None
        self._commit_started = False
        self._stashed_commit = None
        self._commit_retries = 0
        self._ring_kicked = False
        self._joins = {}
        for event in (self._token_timer, self._recovery_deadline,
                      self._commit_retry, self._token_retx):
            if event is not None:
                event.cancel()
        self.tracer.emit("totem", "gather", node=self.node_id)
        self._record_own_join()
        self._broadcast_join()
        self._arm_join_timer()
        self._extend_gather_deadline()

    def _record_own_join(self) -> None:
        self._joins[self.node_id] = self._make_join()

    def _make_join(self) -> JoinMsg:
        return JoinMsg(
            sender=self.node_id,
            ring_id_seen=self.ring_id,
            delivered_aru=self.delivered_aru,
            held=frozenset(self._held),
            fresh=self.fresh,
            view_members=self.members,
            base_seen=self._base_seen,
        )

    def _broadcast_join(self) -> None:
        join = self._make_join()
        self._joins[self.node_id] = join
        self.endpoint.broadcast(join, join.size_bytes)

    def _arm_join_timer(self) -> None:
        if self._join_timer is not None:
            self._join_timer.cancel()
        self._join_timer = self.endpoint.process.call_after(
            self.config.join_interval, self._join_tick
        )

    def _join_tick(self) -> None:
        if not self._active or self.state is not MemberState.GATHER:
            return
        self._broadcast_join()
        self._arm_join_timer()

    def _extend_gather_deadline(self) -> None:
        if self._gather_deadline is not None:
            self._gather_deadline.cancel()
        self._gather_deadline = self.endpoint.process.call_after(
            self.config.gather_timeout, self._on_gather_deadline
        )

    def _on_join(self, src: str, join: JoinMsg) -> None:
        if not self._active:
            return
        if src == self.node_id:
            # Our own loopback copy: already recorded locally, and it must
            # not "interrupt" a recovery we started after broadcasting it.
            return
        if self.state is MemberState.OPERATIONAL:
            # A member (re)joining disturbs the ring: reform it.
            self._enter_gather()
        elif self.state is MemberState.RECOVERY:
            # Recovery interrupted by a new gather round.
            self._enter_gather()
        is_new = src not in self._joins
        self._joins[src] = join
        if is_new:
            self._extend_gather_deadline()

    def _on_gather_deadline(self) -> None:
        if not self._active or self.state is not MemberState.GATHER:
            return
        candidates = sorted(self._joins)
        leader = candidates[0]
        if leader != self.node_id:
            # Await the leader's FORM; restart gather if it never comes.
            self._arm_recovery_deadline()
            return
        form = self._compute_form(candidates)
        self.tracer.emit("totem", "form", node=self.node_id,
                         ring_id=form.ring_id, members=form.members,
                         flush_seq=form.flush_seq)
        self.endpoint.broadcast(form, form.size_bytes)

    def _compute_form(self, candidates: List[str]) -> FormMsg:
        joins = [self._joins[c] for c in candidates]
        ring_id = max(j.ring_id_seen for j in joins) + 1
        # Healed-partition merge: group the non-fresh joins into connected
        # components by *view overlap*.  Members that merely lag a ring
        # generation still share view members with the rest (same history,
        # just a shorter prefix); members out of a healed partition arrive
        # with disjoint views (their rings reformed without each other) and
        # carry histories that cannot both be kept.  The canonical side is
        # the largest component (ties break on the smallest node id);
        # everyone else rejoins fresh (primary-component semantics).
        fresh_members: List[str] = [j.sender for j in joins if j.fresh]
        components = self._view_components(
            [j for j in joins if not j.fresh]
        )
        if len(components) > 1:
            components.sort(key=lambda c: (-len(c),
                                           min(j.sender for j in c)))
            for component in components[1:]:
                fresh_members.extend(j.sender for j in component)
        surviving = [j for j in joins
                     if not j.fresh and j.sender not in fresh_members]
        if surviving:
            # Lineage-conflict guard: a member stuck on an older ring
            # generation whose delivered_aru extends past the newest
            # generation's base delivered into sequence numbers the newer
            # lineage reassigned after truncating its flush — the two
            # histories conflict, so the laggard rejoins fresh.
            newest_ring = max(j.ring_id_seen for j in surviving)
            newest_base = max(j.base_seen for j in surviving
                              if j.ring_id_seen == newest_ring)
            conflicted = {j.sender for j in surviving
                          if j.ring_id_seen < newest_ring
                          and j.delivered_aru > newest_base}
            if conflicted:
                fresh_members.extend(sorted(conflicted))
                surviving = [j for j in surviving
                             if j.sender not in conflicted]
        if surviving:
            lo = min(j.delivered_aru for j in surviving)
            hi = max(max(j.held, default=j.delivered_aru) for j in surviving)
        else:
            lo = hi = 0
        holders: Dict[int, str] = {}
        flush_seq = lo
        for seq in range(lo + 1, hi + 1):
            holder = next(
                (j.sender for j in surviving if seq in j.held), None
            )
            if holder is None:
                # No survivor retains seq ⇒ no survivor delivered it or
                # anything after it; truncate the flush consistently.
                break
            holders[seq] = holder
            flush_seq = seq
        return FormMsg(
            ring_id=ring_id,
            leader=self.node_id,
            members=tuple(candidates),
            flush_seq=flush_seq,
            base_seq=flush_seq,
            holders=holders,
            fresh_members=tuple(sorted(set(fresh_members))),
        )

    @staticmethod
    def _view_components(joins: List[JoinMsg]) -> List[List[JoinMsg]]:
        """Connected components of joins under view-membership overlap.

        A join with no recorded view (never installed a ring) connects to
        everything — it cannot have diverged.
        """
        components: List[List[JoinMsg]] = []
        component_nodes: List[set] = []
        for join in joins:
            nodes = set(join.view_members) | {join.sender}
            matches = [i for i, existing in enumerate(component_nodes)
                       if existing & nodes or not join.view_members]
            if not matches:
                components.append([join])
                component_nodes.append(nodes)
                continue
            # merge all matching components with this join
            target = matches[0]
            components[target].append(join)
            component_nodes[target] |= nodes
            for index in reversed(matches[1:]):
                components[target].extend(components.pop(index))
                component_nodes[target] |= component_nodes.pop(index)
        return components

    # ------------------------------------------------------------------
    # Membership: recovery (flush) and installation
    # ------------------------------------------------------------------

    def _on_form(self, src: str, form: FormMsg) -> None:
        if not self._active:
            return
        if (self.state is MemberState.RECOVERY
                and self._pending_form is not None
                and self._form_ring_key(form)
                == self._form_ring_key(self._pending_form)):
            # Leader retransmission of the FORM we are already flushing:
            # some flush frame was probably lost.  Repair by re-running our
            # holder rebroadcasts and keep waiting.
            self._arm_recovery_deadline()
            self._rebroadcast_holders(form)
            self._maybe_install()
            return
        if self.state is not MemberState.GATHER:
            return
        if self.node_id not in form.members:
            # Too late for this round; keep gathering, which will disturb
            # the new ring into admitting us.
            return
        if self._join_timer is not None:
            self._join_timer.cancel()
        if self._gather_deadline is not None:
            self._gather_deadline.cancel()
        if self.node_id in form.fresh_members:
            # Our pre-merge history lost the primary-component vote: rejoin
            # as a history-less member (the Eternal layer re-synchronizes
            # replica state above us).
            self.fresh = True
            self.delivered_aru = 0
            self._held.clear()
            self._reassembler = Reassembler(observer=self._on_reassembly)
        self.state = MemberState.RECOVERY
        self._pending_form = form
        self._arm_recovery_deadline()
        self._rebroadcast_holders(form)
        self._maybe_install()

    def _rebroadcast_holders(self, form: FormMsg) -> None:
        """Rebroadcast the flush messages assigned to us."""
        for seq, holder in sorted(form.holders.items()):
            if holder == self.node_id:
                held = self._held.get(seq)
                if held is not None:
                    self._broadcast_frame(replace(held, retransmit=True))

    def _arm_recovery_deadline(self) -> None:
        if self._recovery_deadline is not None:
            self._recovery_deadline.cancel()
        self._recovery_deadline = self.endpoint.process.call_after(
            self.config.gather_timeout * 5, self._on_recovery_timeout
        )

    def _on_recovery_timeout(self) -> None:
        if not self._active:
            return
        if self.state in (MemberState.RECOVERY, MemberState.GATHER):
            self.tracer.emit("totem", "recovery_timeout", node=self.node_id)
            self._enter_gather()

    def _maybe_install(self) -> None:
        form = self._pending_form
        if form is None:
            return
        if self.fresh:
            # Skip pre-join traffic; Eternal recovers replica state above us.
            self.delivered_aru = max(self.delivered_aru, form.base_seq)
            self._held = {s: m for s, m in self._held.items()
                          if s > self.delivered_aru}
        if self.delivered_aru < form.flush_seq:
            return
        # Flushed.  Installation additionally requires the commit rotation:
        # the ring goes operational only once its commit token has visited
        # every member, so a FORM computed from an incomplete join set (its
        # sender missed joins under loss) can never install and deliver a
        # history that diverges from the ring the excluded members form.
        if form.leader == self.node_id:
            if not self._commit_started:
                self._commit_started = True
                token = Token(form.ring_id, form.flush_seq, form.flush_seq,
                              ring_key=self._form_ring_key(form),
                              commit_phase=1)
                self._send_commit(token, self._form_successor(form),
                                  retry=True)
        elif self._stashed_commit is not None:
            token, self._stashed_commit = self._stashed_commit, None
            self._on_commit_token(token)

    @staticmethod
    def _form_ring_key(form: FormMsg) -> int:
        return crc32(f"{form.ring_id}:{form.leader}:"
                     f"{','.join(form.members)}".encode())

    def _form_successor(self, form: FormMsg) -> str:
        index = form.members.index(self.node_id)
        return form.members[(index + 1) % len(form.members)]

    def _send_commit(self, token: Token, successor: str,
                     retry: bool = False) -> None:
        if not self._active:
            return
        self.endpoint.unicast(successor, token, token.size_bytes)
        if retry:
            self._arm_commit_retry(token, successor)

    def _arm_commit_retry(self, token: Token, successor: str) -> None:
        """Leader-side loss repair: a commit token is a unicast chain, so a
        single drop would otherwise stall the rotation until the recovery
        deadline forces a full (and expensive) re-gather.  The leader
        re-injects the current pass a few times; every other member
        re-forwards duplicates, and the kick guard keeps the completed ring
        from starting twice."""
        if self._commit_retry is not None:
            self._commit_retry.cancel()
        if self._commit_retries >= 4:
            return
        self._commit_retries += 1
        self._commit_retry = self.endpoint.process.call_after(
            self.config.gather_timeout, self._retry_commit, token, successor,
        )

    def _retry_commit(self, token: Token, successor: str) -> None:
        if not self._active:
            return
        form = self._pending_form
        if (form is not None and self.state is MemberState.RECOVERY
                and token.ring_key == self._form_ring_key(form)):
            # Phase 1 may be stalled on a member that lost its flush
            # rebroadcasts rather than the token: re-send the FORM so every
            # holder repairs its frames (see _on_form).
            self.endpoint.broadcast(form, form.size_bytes)
        self._send_commit(token, successor, retry=True)

    def _on_commit_token(self, token: Token) -> None:
        form = self._pending_form
        if self.state is MemberState.RECOVERY and form is not None:
            if token.ring_key != self._form_ring_key(form):
                return  # a sibling ring's commit token; not our form
            if self.delivered_aru < form.flush_seq:
                # Not flushed yet: hold the token until the flush
                # rebroadcasts catch us up (see _maybe_install).
                self._stashed_commit = token
                return
            self._arm_recovery_deadline()
            successor = self._form_successor(form)
            if token.commit_phase == 1:
                if form.leader == self.node_id:
                    # Confirm pass complete: every member flushed.  Install
                    # and start the install pass.
                    self._install(form)
                    token.commit_phase = 2
                    self._send_commit(token, successor, retry=True)
                else:
                    self._send_commit(token, successor)
            elif token.commit_phase == 2:
                # Install pass (the leader installed at phase-1 return).
                self._install(form)
                self._send_commit(token, successor)
            return
        if (self.state is MemberState.OPERATIONAL
                and token.commit_phase == 2
                and token.ring_key == self._ring_key
                and self.members):
            if self.node_id == self.members[0]:
                # Leader receiving the completed install pass back: every
                # member is operational in the new ring — begin normal token
                # circulation (exactly once; retransmitted passes may return
                # several copies).
                if self._ring_kicked:
                    return
                self._ring_kicked = True
                if self._commit_retry is not None:
                    self._commit_retry.cancel()
                    self._commit_retry = None
                first = Token(self.ring_id, self.delivered_aru,
                              self.delivered_aru, ring_key=self._ring_key)
                self.endpoint.process.call_after(
                    self.config.token_hold, self._on_token_frame,
                    self.node_id, first,
                )
            else:
                # Already installed: keep re-forwarding the install pass so
                # a leader retransmission still reaches members past us.
                index = self.members.index(self.node_id)
                self._send_commit(
                    token, self.members[(index + 1) % len(self.members)])

    def _install(self, form: FormMsg) -> None:
        self._pending_form = None
        self._commit_retries = 0
        self._ring_kicked = False
        self._sent_token = None
        self._last_token_rot = -1
        if self._recovery_deadline is not None:
            self._recovery_deadline.cancel()
        self.ring_id = form.ring_id
        self.members = form.members
        self.state = MemberState.OPERATIONAL
        self._ring_key = self._form_ring_key(form)
        self._base_seen = form.base_seq
        # New configuration: restart the delivery-order hash from a seed
        # every member derives identically, based at the flush boundary
        # (all installing members agree on delivered_aru here).
        members_key = crc32(",".join(form.members).encode())
        self._order_ring_key = f"{form.ring_id}:{members_key:08x}"
        if self.config.ring_name:
            self._order_ring_key = (f"{self.config.ring_name}|"
                                    f"{self._order_ring_key}")
        self._order_hash = crc32(self._order_ring_key.encode())
        self._order_base = self.delivered_aru
        # Record whether this install discarded our history (brand-new
        # member, or we lost the primary-component vote in a merge): the
        # layer above reads this to re-synchronize replica state.
        self.last_install_was_fresh = self.fresh
        self.fresh = False
        # Re-queue our orphaned fragments: broadcast but never sequenced
        # into the surviving history, so no member delivered them.
        if self._inflight:
            orphans = [self._inflight[k] for k in sorted(self._inflight)]
            self._inflight.clear()
            self._send_queue = orphans + self._send_queue
        # Partial reassemblies from members that left the ring can never
        # complete; evict them instead of leaking them forever.
        evicted = self._reassembler.evict_absent_origins(form.members)
        if evicted:
            self.tracer.emit("totem", "reassembly_evicted",
                             node=self.node_id, count=evicted)
        self.tracer.emit("totem", "install", node=self.node_id,
                         ring_id=self.ring_id, members=self.members)
        if self.on_view_change is not None:
            self.on_view_change(self.view)
        self._reset_token_timer()
