"""The Totem single-ring member state machine.

Each node runs one :class:`TotemMember`.  A token circulates the ring; only
the holder broadcasts, assigning consecutive sequence numbers, so every
member delivers the identical message sequence (total order).  Members
retain delivered messages until they are *safe* (received by all members,
as witnessed by the token's ``aru``), which lets them service retransmission
requests and flush messages to survivors during membership changes.

State machine::

    OPERATIONAL --token timeout / JOIN seen--> GATHER
    GATHER      --gather deadline, leader FORM--> RECOVERY
    RECOVERY    --flushed to flush_seq--> OPERATIONAL (new view installed)

A brand-new or re-launched member starts in GATHER with ``fresh=True``; on
installation it skips all pre-join traffic (its ``delivered_aru`` jumps to
the flush sequence).  Restoring the application replica hosted above such a
member is the job of Eternal's recovery mechanisms — Totem only guarantees
that whatever *is* delivered is delivered to all members in the same order.

Sender reliability: a member keeps its own broadcast fragments "in flight"
until it observes their self-delivery; fragments orphaned by a ring
reformation (sent but never sequenced into the surviving history) are
re-queued at the front of the send queue and rebroadcast in the new ring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from zlib import crc32
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NotInRing, TotemError
from repro.simnet.endpoint import Endpoint
from repro.simnet.scheduler import Event
from repro.obs.spans import SpanEmitter
from repro.simnet.trace import NULL_TRACER, Tracer
from repro.totem.config import TotemConfig
from repro.totem.fragmentation import Fragmenter, Reassembler
from repro.totem.messages import DataMsg, FormMsg, JoinMsg, ProbeMsg, Token

DeliverFn = Callable[[str, bytes], None]
ViewFn = Callable[["View"], None]

_DATA_HEADER = 32  # keep in sync with messages._DATA_HEADER


class MemberState(enum.Enum):
    """Ring-member protocol phase (see the module docstring)."""

    GATHER = "gather"
    RECOVERY = "recovery"
    OPERATIONAL = "operational"


@dataclass(frozen=True)
class View:
    """A membership view: the ring identifier and its sorted member list."""

    ring_id: int
    members: Tuple[str, ...]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.members


class TotemMember:
    """One ring member; see the module docstring for the protocol."""

    def __init__(
        self,
        endpoint: Endpoint,
        config: TotemConfig,
        *,
        on_deliver: DeliverFn,
        on_view_change: Optional[ViewFn] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.endpoint = endpoint
        self.config = config
        self.tracer = tracer
        self._spans = SpanEmitter(tracer, node_id=endpoint.node_id)
        self.on_deliver = on_deliver
        self.on_view_change = on_view_change
        self.node_id = endpoint.node_id
        self._scheduler = endpoint.process.scheduler

        # Ring state
        self.state = MemberState.GATHER
        self.ring_id = 0
        self.members: Tuple[str, ...] = ()
        self.fresh = True
        self.delivered_aru = 0          # highest contiguously delivered seq
        self._held: Dict[int, DataMsg] = {}
        # Rolling hash over the delivered frame sequence: members of one
        # ring configuration must agree at every publication point (the
        # total-order guarantee, verified online by the auditor).  Keyed
        # by ring id *and* member set — partitioned halves can compute
        # the same successor ring id independently.
        self._order_hash = 0
        self._order_base = 0
        self._order_ring_key = ""

        # Sending
        max_chunk = endpoint.network.config.mtu_payload - _DATA_HEADER
        self._fragmenter = Fragmenter(self.node_id, max_chunk)
        self._reassembler = Reassembler(observer=self._on_reassembly)
        self._send_queue: List[tuple] = []
        self._inflight: Dict[Tuple[Tuple[str, int], int], tuple] = {}
        # Sequence numbers we broadcast whose loopback copy has not arrived
        # yet; they must not be mistaken for gaps in the rtr scan.
        self._own_pending: set = set()

        # Membership bookkeeping
        self.last_install_was_fresh = False
        self._joins: Dict[str, JoinMsg] = {}
        self._pending_form: Optional[FormMsg] = None
        self._gather_deadline: Optional[Event] = None
        self._join_timer: Optional[Event] = None
        self._token_timer: Optional[Event] = None
        self._recovery_deadline: Optional[Event] = None
        self._active = True

        self._last_probe = 0.0
        endpoint.register(DataMsg, self._on_data)
        endpoint.register(Token, self._on_token_frame)
        endpoint.register(JoinMsg, self._on_join)
        endpoint.register(FormMsg, self._on_form)
        endpoint.register(ProbeMsg, self._on_probe)
        endpoint.process.on_crash(self.shutdown)

        self._enter_gather()

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def view(self) -> View:
        return View(self.ring_id, self.members)

    @property
    def operational(self) -> bool:
        return self.state is MemberState.OPERATIONAL

    def multicast(self, payload: bytes) -> None:
        """Queue ``payload`` for reliable totally-ordered delivery to all
        ring members (including this one).  Larger-than-MTU payloads are
        fragmented into multiple sequenced frames."""
        if not self._active:
            raise NotInRing(f"{self.node_id}: member is shut down")
        if len(self._send_queue) >= self.config.max_queue:
            raise TotemError(f"{self.node_id}: send queue overflow")
        self._send_queue.extend(self._fragmenter.fragment(payload))

    def shutdown(self) -> None:
        """Deactivate (process crash or stack teardown): cancel all timers
        and stop reacting to frames.  Volatile ring state is abandoned."""
        if not self._active:
            return
        self._active = False
        for event in (self._gather_deadline, self._join_timer,
                      self._token_timer, self._recovery_deadline):
            if event is not None:
                event.cancel()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _on_data(self, src: str, msg: DataMsg) -> None:
        if not self._active:
            return
        if msg.sender == self.node_id:
            self._own_pending.discard(msg.seq)
        if self.state is MemberState.OPERATIONAL \
                and msg.sender not in self.members:
            # Foreign traffic: another ring exists (a healed partition).
            # Disturb both rings into a merging gather.
            self.tracer.emit("totem", "foreign", node=self.node_id,
                             sender=msg.sender)
            self._enter_gather()
            return
        if msg.seq <= self.delivered_aru or msg.seq in self._held:
            return
        if self.state is MemberState.RECOVERY:
            form = self._pending_form
            if form is None or msg.seq > form.flush_seq:
                return
        elif msg.ring_id != self.ring_id:
            return  # stale traffic from a superseded ring
        self._held[msg.seq] = msg
        self._try_deliver()
        if self.state is MemberState.RECOVERY:
            self._maybe_install()

    def _try_deliver(self) -> None:
        while (self.delivered_aru + 1) in self._held:
            self.delivered_aru += 1
            msg = self._held[self.delivered_aru]
            self._order_hash = crc32(
                f"{msg.seq}:{msg.sender}:{msg.msg_id}:"
                f"{msg.frag_index}".encode(),
                self._order_hash,
            )
            interval = self.config.order_digest_interval
            if (interval and self._order_ring_key
                    and (self.delivered_aru - self._order_base)
                    % interval == 0):
                self.tracer.emit("audit", "order_digest", node=self.node_id,
                                 ring=self._order_ring_key,
                                 base=self._order_base,
                                 seq=self.delivered_aru,
                                 digest=f"{self._order_hash:08x}")
            if msg.sender == self.node_id:
                self._inflight.pop((msg.msg_id, msg.frag_index), None)
            payload = self._reassembler.add(
                msg.msg_id, msg.frag_index, msg.frag_count, msg.chunk
            )
            if payload is not None:
                self.tracer.emit("totem", "deliver", node=self.node_id,
                                 origin=msg.msg_id[0], seq=msg.seq,
                                 size=len(payload))
                self.on_deliver(msg.msg_id[0], payload)

    # ------------------------------------------------------------------
    # Token path
    # ------------------------------------------------------------------

    def _on_token_frame(self, src: str, token: Token) -> None:
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if token.ring_id != self.ring_id:
            return  # stale token from a superseded ring
        self._reset_token_timer()
        self.tracer.emit("totem", "token", node=self.node_id, seq=token.seq,
                         aru=token.aru)

        # 1. Service retransmission requests we can satisfy.
        unresolved: List[int] = []
        for seq in token.rtr:
            held = self._held.get(seq)
            if held is not None:
                self._broadcast_frame(replace(held, retransmit=True))
                self.tracer.emit("totem", "retransmit", node=self.node_id,
                                 seq=seq)
            else:
                unresolved.append(seq)
        token.rtr = unresolved

        # 2. Broadcast queued fragments, up to the burst window.
        burst = min(self.config.max_burst, len(self._send_queue))
        for _ in range(burst):
            msg_id, index, count, chunk = self._send_queue.pop(0)
            token.seq += 1
            msg = DataMsg(self.ring_id, token.seq, self.node_id,
                          msg_id, index, count, chunk)
            self._inflight[(msg_id, index)] = (msg_id, index, count, chunk)
            self._own_pending.add(token.seq)
            self._broadcast_frame(msg)

        # 3. Request retransmission of our genuine gaps (messages we just
        # broadcast are still looping back — not gaps).
        budget = 64
        for seq in range(self.delivered_aru + 1, token.seq + 1):
            if budget == 0:
                break
            if (seq not in self._held and seq not in token.rtr
                    and seq not in self._own_pending):
                token.rtr.append(seq)
                budget -= 1

        # 4. Update the all-received-up-to watermark (Totem aru rule): any
        # member lagging lowers it and stamps its id; the stamping member
        # (or an unclaimed token) raises it to the member's own aru, and a
        # full quiet rotation converges it to the ring-wide minimum.
        if self.delivered_aru < token.aru:
            token.aru = self.delivered_aru
            token.aru_id = self.node_id
        elif token.aru_id in ("", self.node_id):
            token.aru = self.delivered_aru
            token.aru_id = self.node_id if token.aru < token.seq else ""

        # 5. Garbage-collect messages that are safe at all members.
        threshold = token.aru - self.config.retain_safe_slack
        if threshold > 0:
            for seq in [s for s in self._held if s <= threshold]:
                del self._held[seq]

        if self.members and self.node_id == self.members[0]:
            # One span per full token rotation, bracketed by consecutive
            # leader visits (the previous rotation ends as the next begins).
            self._spans.end(self._rotation_span_id(token.rotations),
                            seq=token.seq, aru=token.aru)
            token.rotations += 1
            self._spans.start(
                "totem.rotation",
                span_id=self._rotation_span_id(token.rotations),
                node=self.node_id, ring=self.ring_id,
                rotation=token.rotations,
            )
            now = self._scheduler.now
            if now - self._last_probe >= self.config.probe_interval:
                self._last_probe = now
                probe = ProbeMsg(self.ring_id, self.node_id, self.members)
                self.endpoint.broadcast(probe, probe.size_bytes)

        # 6. Forward to the ring successor after the hold time.
        successor = self._successor()
        forwarded = Token(token.ring_id, token.seq, token.aru, token.aru_id,
                          list(token.rtr), token.rotations)
        self.endpoint.process.call_after(
            self.config.token_hold,
            self._forward_token, forwarded, successor,
        )

    def _forward_token(self, token: Token, successor: str) -> None:
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if token.ring_id != self.ring_id:
            return
        self.endpoint.unicast(successor, token, token.size_bytes)

    def _successor(self) -> str:
        index = self.members.index(self.node_id)
        return self.members[(index + 1) % len(self.members)]

    def _rotation_span_id(self, rotation: int) -> str:
        return f"rot:{self.ring_id}:{rotation}"

    def _on_reassembly(self, event: str, msg_id, frag_count: int) -> None:
        """Trace multi-fragment reassembly as spans (first fragment
        delivered -> payload rebuilt); mid-message joins count skips."""
        span_id = f"frag:{msg_id[0]}:{msg_id[1]}@{self.node_id}"
        if event == "begin":
            self._spans.start("totem.reassembly", span_id=span_id,
                              node=self.node_id, origin=msg_id[0],
                              fragments=frag_count)
        elif event == "complete":
            self._spans.end(span_id)
        else:
            self.tracer.emit("totem", "reassembly_skipped",
                             node=self.node_id, origin=msg_id[0])

    def _broadcast_frame(self, msg: DataMsg) -> None:
        self.tracer.emit("totem", "frame", node=self.node_id, seq=msg.seq,
                         size=msg.size_bytes, retransmit=msg.retransmit)
        self.endpoint.broadcast(msg, msg.size_bytes)

    def _reset_token_timer(self) -> None:
        if self._token_timer is not None:
            self._token_timer.cancel()
        self._token_timer = self.endpoint.process.call_after(
            self.config.token_timeout, self._on_token_timeout
        )

    def _on_token_timeout(self) -> None:
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        self.tracer.emit("totem", "token_timeout", node=self.node_id)
        self._enter_gather()

    def _on_probe(self, src: str, probe: ProbeMsg) -> None:
        """A probe from a ring we are not part of means a healed partition:
        disturb both rings into a merging gather."""
        if not self._active or self.state is not MemberState.OPERATIONAL:
            return
        if probe.sender in self.members:
            return
        self.tracer.emit("totem", "foreign", node=self.node_id,
                         sender=probe.sender)
        self._enter_gather()

    # ------------------------------------------------------------------
    # Membership: gather
    # ------------------------------------------------------------------

    def _enter_gather(self) -> None:
        self.state = MemberState.GATHER
        self._pending_form = None
        self._joins = {}
        for event in (self._token_timer, self._recovery_deadline):
            if event is not None:
                event.cancel()
        self.tracer.emit("totem", "gather", node=self.node_id)
        self._record_own_join()
        self._broadcast_join()
        self._arm_join_timer()
        self._extend_gather_deadline()

    def _record_own_join(self) -> None:
        self._joins[self.node_id] = self._make_join()

    def _make_join(self) -> JoinMsg:
        return JoinMsg(
            sender=self.node_id,
            ring_id_seen=self.ring_id,
            delivered_aru=self.delivered_aru,
            held=frozenset(self._held),
            fresh=self.fresh,
            view_members=self.members,
        )

    def _broadcast_join(self) -> None:
        join = self._make_join()
        self._joins[self.node_id] = join
        self.endpoint.broadcast(join, join.size_bytes)

    def _arm_join_timer(self) -> None:
        if self._join_timer is not None:
            self._join_timer.cancel()
        self._join_timer = self.endpoint.process.call_after(
            self.config.join_interval, self._join_tick
        )

    def _join_tick(self) -> None:
        if not self._active or self.state is not MemberState.GATHER:
            return
        self._broadcast_join()
        self._arm_join_timer()

    def _extend_gather_deadline(self) -> None:
        if self._gather_deadline is not None:
            self._gather_deadline.cancel()
        self._gather_deadline = self.endpoint.process.call_after(
            self.config.gather_timeout, self._on_gather_deadline
        )

    def _on_join(self, src: str, join: JoinMsg) -> None:
        if not self._active:
            return
        if self.state is MemberState.OPERATIONAL:
            # A member (re)joining disturbs the ring: reform it.
            self._enter_gather()
        elif self.state is MemberState.RECOVERY:
            # Recovery interrupted by a new gather round.
            self._enter_gather()
        is_new = src not in self._joins
        self._joins[src] = join
        if is_new:
            self._extend_gather_deadline()

    def _on_gather_deadline(self) -> None:
        if not self._active or self.state is not MemberState.GATHER:
            return
        candidates = sorted(self._joins)
        leader = candidates[0]
        if leader != self.node_id:
            # Await the leader's FORM; restart gather if it never comes.
            self._arm_recovery_deadline()
            return
        form = self._compute_form(candidates)
        self.tracer.emit("totem", "form", node=self.node_id,
                         ring_id=form.ring_id, members=form.members,
                         flush_seq=form.flush_seq)
        self.endpoint.broadcast(form, form.size_bytes)

    def _compute_form(self, candidates: List[str]) -> FormMsg:
        joins = [self._joins[c] for c in candidates]
        ring_id = max(j.ring_id_seen for j in joins) + 1
        # Healed-partition merge: group the non-fresh joins into connected
        # components by *view overlap*.  Members that merely lag a ring
        # generation still share view members with the rest (same history,
        # just a shorter prefix); members out of a healed partition arrive
        # with disjoint views (their rings reformed without each other) and
        # carry histories that cannot both be kept.  The canonical side is
        # the largest component (ties break on the smallest node id);
        # everyone else rejoins fresh (primary-component semantics).
        fresh_members: List[str] = [j.sender for j in joins if j.fresh]
        components = self._view_components(
            [j for j in joins if not j.fresh]
        )
        if len(components) > 1:
            components.sort(key=lambda c: (-len(c),
                                           min(j.sender for j in c)))
            for component in components[1:]:
                fresh_members.extend(j.sender for j in component)
        surviving = [j for j in joins
                     if not j.fresh and j.sender not in fresh_members]
        if surviving:
            lo = min(j.delivered_aru for j in surviving)
            hi = max(max(j.held, default=j.delivered_aru) for j in surviving)
        else:
            lo = hi = 0
        holders: Dict[int, str] = {}
        flush_seq = lo
        for seq in range(lo + 1, hi + 1):
            holder = next(
                (j.sender for j in surviving if seq in j.held), None
            )
            if holder is None:
                # No survivor retains seq ⇒ no survivor delivered it or
                # anything after it; truncate the flush consistently.
                break
            holders[seq] = holder
            flush_seq = seq
        return FormMsg(
            ring_id=ring_id,
            leader=self.node_id,
            members=tuple(candidates),
            flush_seq=flush_seq,
            base_seq=flush_seq,
            holders=holders,
            fresh_members=tuple(sorted(set(fresh_members))),
        )

    @staticmethod
    def _view_components(joins: List[JoinMsg]) -> List[List[JoinMsg]]:
        """Connected components of joins under view-membership overlap.

        A join with no recorded view (never installed a ring) connects to
        everything — it cannot have diverged.
        """
        components: List[List[JoinMsg]] = []
        component_nodes: List[set] = []
        for join in joins:
            nodes = set(join.view_members) | {join.sender}
            matches = [i for i, existing in enumerate(component_nodes)
                       if existing & nodes or not join.view_members]
            if not matches:
                components.append([join])
                component_nodes.append(nodes)
                continue
            # merge all matching components with this join
            target = matches[0]
            components[target].append(join)
            component_nodes[target] |= nodes
            for index in reversed(matches[1:]):
                components[target].extend(components.pop(index))
                component_nodes[target] |= component_nodes.pop(index)
        return components

    # ------------------------------------------------------------------
    # Membership: recovery (flush) and installation
    # ------------------------------------------------------------------

    def _on_form(self, src: str, form: FormMsg) -> None:
        if not self._active or self.state is not MemberState.GATHER:
            return
        if self.node_id not in form.members:
            # Too late for this round; keep gathering, which will disturb
            # the new ring into admitting us.
            return
        if self._join_timer is not None:
            self._join_timer.cancel()
        if self._gather_deadline is not None:
            self._gather_deadline.cancel()
        if self.node_id in form.fresh_members:
            # Our pre-merge history lost the primary-component vote: rejoin
            # as a history-less member (the Eternal layer re-synchronizes
            # replica state above us).
            self.fresh = True
            self.delivered_aru = 0
            self._held.clear()
            self._reassembler = Reassembler(observer=self._on_reassembly)
        self.state = MemberState.RECOVERY
        self._pending_form = form
        self._arm_recovery_deadline()
        # Rebroadcast the flush messages assigned to us.
        for seq, holder in sorted(form.holders.items()):
            if holder == self.node_id:
                held = self._held.get(seq)
                if held is not None:
                    self._broadcast_frame(replace(held, retransmit=True))
        self._maybe_install()

    def _arm_recovery_deadline(self) -> None:
        if self._recovery_deadline is not None:
            self._recovery_deadline.cancel()
        self._recovery_deadline = self.endpoint.process.call_after(
            self.config.gather_timeout * 5, self._on_recovery_timeout
        )

    def _on_recovery_timeout(self) -> None:
        if not self._active:
            return
        if self.state in (MemberState.RECOVERY, MemberState.GATHER):
            self.tracer.emit("totem", "recovery_timeout", node=self.node_id)
            self._enter_gather()

    def _maybe_install(self) -> None:
        form = self._pending_form
        if form is None:
            return
        if self.fresh:
            # Skip pre-join traffic; Eternal recovers replica state above us.
            self.delivered_aru = max(self.delivered_aru, form.base_seq)
            self._held = {s: m for s, m in self._held.items()
                          if s > self.delivered_aru}
        if self.delivered_aru < form.flush_seq:
            return
        self._install(form)

    def _install(self, form: FormMsg) -> None:
        self._pending_form = None
        if self._recovery_deadline is not None:
            self._recovery_deadline.cancel()
        self.ring_id = form.ring_id
        self.members = form.members
        self.state = MemberState.OPERATIONAL
        # New configuration: restart the delivery-order hash from a seed
        # every member derives identically, based at the flush boundary
        # (all installing members agree on delivered_aru here).
        members_key = crc32(",".join(form.members).encode())
        self._order_ring_key = f"{form.ring_id}:{members_key:08x}"
        self._order_hash = crc32(self._order_ring_key.encode())
        self._order_base = self.delivered_aru
        # Record whether this install discarded our history (brand-new
        # member, or we lost the primary-component vote in a merge): the
        # layer above reads this to re-synchronize replica state.
        self.last_install_was_fresh = self.fresh
        self.fresh = False
        # Re-queue our orphaned fragments: broadcast but never sequenced
        # into the surviving history, so no member delivered them.
        if self._inflight:
            orphans = [self._inflight[k] for k in sorted(self._inflight)]
            self._inflight.clear()
            self._send_queue = orphans + self._send_queue
        self._own_pending.clear()
        self.tracer.emit("totem", "install", node=self.node_id,
                         ring_id=self.ring_id, members=self.members)
        if self.on_view_change is not None:
            self.on_view_change(self.view)
        self._reset_token_timer()
        if form.leader == self.node_id:
            token = Token(form.ring_id, form.flush_seq, form.flush_seq)
            self.endpoint.process.call_after(
                self.config.token_hold, self._on_token_frame,
                self.node_id, token,
            )
