"""Tuning parameters of the Totem single-ring protocol."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TotemConfig:
    """Protocol timers and windows.

    Defaults are scaled to the simulated 100 Mbps LAN: a token hop costs
    roughly 100 µs, so an idle 4-node rotation takes ~0.5 ms and the token
    timeout of 20 ms tolerates several missed rotations before declaring a
    failure — comparable, relative to link speed, to production Totem
    settings.
    """

    token_hold: float = 20e-6
    """Local processing delay before forwarding the token."""

    token_timeout: float = 0.02
    """Silence on the token this long ⇒ suspect failure, start gather."""

    gather_timeout: float = 0.01
    """How long the gather phase collects JOIN messages before forming."""

    join_interval: float = 0.005
    """Re-broadcast period for JOIN while gathering/joining."""

    max_burst: int = 64
    """Maximum data frames one member broadcasts per token visit (a packed
    frame carrying several fragments counts once)."""

    frame_packing: bool = True
    """Coalesce queued sub-MTU fragments into one multi-payload frame per
    broadcast slot, amortizing the fixed per-frame costs (header bytes,
    inter-frame gap, per-frame CPU).  Full-MTU fragments always travel as
    classic single-fragment frames.  Disabling restores one frame per
    fragment."""

    retain_safe_slack: int = 128
    """Retain messages this far below the safe sequence (GC headroom)."""

    max_queue: int = 100_000
    """Upper bound on the per-member send queue (backpressure guard)."""

    probe_interval: float = 0.01
    """Leader broadcasts a ring probe this often so concurrent rings in a
    healed partition discover each other even when idle."""

    order_digest_interval: int = 32
    """Every this many delivered frames, publish the rolling
    delivery-order hash as an ``audit.order_digest`` trace record so the
    consistency auditor can compare members of one configuration
    (0 disables emission; the hash is maintained regardless)."""

    ring_name: str = ""
    """Shard identity of this ring in a multi-ring deployment.  Namespaces
    the delivery-order configuration key and rotation span ids so two
    shards that independently compute the same ring_id and member-set
    fingerprint (e.g. symmetric rings ``r0.{m,s1}`` / ``r1.{m,s1}``) can
    never be confused by the auditor or the span plane.  Empty for the
    classic single-ring deployment."""

    def __post_init__(self) -> None:
        if self.token_timeout <= self.token_hold:
            raise ValueError("token_timeout must exceed token_hold")
        if self.max_burst < 1:
            raise ValueError("max_burst must be at least 1")
