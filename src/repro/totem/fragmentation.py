"""Fragmentation and reassembly of application messages.

"At the transport layer of the reliable multicast system, the Ethernet
medium necessitates the fragmentation of any IIOP message that is larger
than the maximum Ethernet frame size (1518 bytes)" — §6 of the paper.  The
number of fragments, and hence the recovery time, grows linearly with the
application-level state size; this module is where that effect originates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FragmentationError

#: Reassembly-lifecycle callback: ``observer(event, msg_id, frag_count)``
#: with event one of ``"begin"`` (first fragment of a multi-fragment
#: message), ``"complete"`` (payload rebuilt), ``"skip"`` (joined
#: mid-message, §5.1 fresh member).  Used by the Totem member to trace
#: reassembly spans.
ReassemblyObserver = Callable[[str, Tuple[str, int], int], None]


class Fragmenter:
    """Splits application payloads into chunks of at most ``max_chunk`` bytes
    and stamps each with a per-origin message id."""

    def __init__(self, origin: str, max_chunk: int) -> None:
        if max_chunk < 1:
            raise FragmentationError(f"max_chunk must be positive, got {max_chunk}")
        self.origin = origin
        self.max_chunk = max_chunk
        self._counter = 0

    def fragment(self, payload: bytes) -> List[Tuple[Tuple[str, int], int, int, bytes]]:
        """Return ``[(msg_id, frag_index, frag_count, chunk), ...]``.

        An empty payload still produces one (empty) fragment so the message
        occupies a slot in the total order.
        """
        self._counter += 1
        msg_id = (self.origin, self._counter)
        chunks = [payload[i:i + self.max_chunk]
                  for i in range(0, len(payload), self.max_chunk)] or [b""]
        count = len(chunks)
        return [(msg_id, index, count, chunk)
                for index, chunk in enumerate(chunks)]

    @staticmethod
    def fragment_count(payload_len: int, max_chunk: int) -> int:
        """How many fragments a payload of ``payload_len`` bytes needs."""
        if payload_len <= 0:
            return 1
        return -(-payload_len // max_chunk)


class Reassembler:
    """Rebuilds application messages from fragments delivered in total order.

    Because fragments of one message carry consecutive sequence numbers from
    a single token visit (the sender broadcasts them back-to-back, and the
    ring delivers in sequence order), fragments arrive in index order; the
    reassembler still validates indices defensively.

    A member that joins mid-message (a *fresh* member installed after some
    fragments were already delivered to the old ring) sees its first fragment
    of that message with a nonzero index; the message is unrecoverable at
    this layer and is **skipped** — restoring such a replica's state is the
    job of Eternal's recovery mechanisms, not of the transport.
    """

    def __init__(self, observer: Optional[ReassemblyObserver] = None) -> None:
        self._partial: Dict[Tuple[str, int], List[bytes]] = {}
        self._skipped: set = set()
        self._observer = observer

    def _notify(self, event: str, msg_id: Tuple[str, int],
                frag_count: int) -> None:
        if self._observer is not None:
            self._observer(event, msg_id, frag_count)

    def add(
        self,
        msg_id: Tuple[str, int],
        frag_index: int,
        frag_count: int,
        chunk: bytes,
    ) -> Optional[bytes]:
        """Feed one fragment; returns the full payload when complete."""
        if frag_count < 1 or not 0 <= frag_index < frag_count:
            raise FragmentationError(
                f"bad fragment indices {frag_index}/{frag_count} for {msg_id}"
            )
        if msg_id in self._skipped:
            if frag_index == frag_count - 1:
                self._skipped.discard(msg_id)
            return None
        if frag_count == 1:
            if frag_index != 0:
                raise FragmentationError(f"single-fragment index {frag_index}")
            return chunk
        parts = self._partial.setdefault(msg_id, [])
        if frag_index != len(parts):
            if not parts and frag_index > 0:
                # Joined mid-message: skip the remainder of this message.
                del self._partial[msg_id]
                if frag_index != frag_count - 1:
                    self._skipped.add(msg_id)
                self._notify("skip", msg_id, frag_count)
                return None
            raise FragmentationError(
                f"out-of-order fragment {frag_index} (expected {len(parts)}) "
                f"for {msg_id}"
            )
        if not parts:
            self._notify("begin", msg_id, frag_count)
        parts.append(chunk)
        if len(parts) == frag_count:
            del self._partial[msg_id]
            self._notify("complete", msg_id, frag_count)
            return b"".join(parts)
        return None

    @property
    def pending(self) -> int:
        """Number of messages awaiting further fragments."""
        return len(self._partial)

    def evict_absent_origins(self, members) -> int:
        """Drop partial messages (and skip markers) whose originating node
        is not in ``members``.

        Called at ring installation: a departed sender's unfinished message
        can never complete (its remaining fragments were never sequenced
        into the surviving history), so retaining the partial would leak
        buffer space for the life of the member.  Returns the number of
        partial messages evicted.
        """
        allowed = set(members)
        stale = [mid for mid in self._partial if mid[0] not in allowed]
        for mid in stale:
            del self._partial[mid]
        self._skipped = {mid for mid in self._skipped if mid[0] in allowed}
        return len(stale)
