"""Binary wire codec for Totem protocol frames.

The live runtime's UDP transport needs a byte representation of every
frame the ring exchanges.  This module encodes the six Totem message
types — plus the out-of-band bulk-lane frames (:class:`BulkFetch`,
:class:`BulkPage`, :class:`BulkNack`) the recovery state transfer sends
point-to-point outside the total order, and the read-lease fast-path
frames (:class:`ReadFastRequest`, :class:`ReadFastReply`,
:class:`ReadFastNack`) — in CDR (reusing :mod:`repro.giop.cdr`, the same
marshalling the IIOP layer uses) behind a one-octet format version,
replacing the pickle encoding the live transport started with: the codec
is

* **safe** — decoding attacker-controlled bytes can only yield Totem
  message objects, never arbitrary Python objects;
* **versioned** — the leading octet rejects frames from an incompatible
  build instead of mis-parsing them;
* **compact** — a classic ``DataMsg`` costs its chunk plus ~40 bytes of
  header, close to the simulator's declared ``size_bytes`` and far below
  pickle's overhead.

The three frame types on the token-rotation hot path (``DataMsg``,
``PackedDataMsg``, ``Token``) additionally have hand-specialized
encoders/decoders: straight-line code over prebuilt :class:`struct.Struct`
instances with inlined CDR alignment arithmetic, appending to a caller
supplied (reusable) ``bytearray`` on encode and — when handed a
``memoryview`` — returning zero-copy sub-views for chunk bodies on
decode, so a packed frame's sub-payloads are never copied out of the
datagram buffer (they materialize lazily, only if a consumer converts
them).  The specialized paths are byte-identical to the generic CDR
ones (property-tested), which remain the reference and serve every
other tag.

Unknown tags and malformed bodies raise :class:`~repro.errors.ProtocolError`
(or the CDR layer's :class:`~repro.errors.UnmarshalError`); the transport
maps both onto dropped frames.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.totem.messages import (DataMsg, FormMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, ProbeMsg, Token)

#: Format version octet leading every encoded frame (bump on layout change).
#: v2: data frames and packed payloads carry a trailing trace-id string.
WIRE_VERSION = 2

_TAG_DATA = 1
_TAG_PACKED = 2
_TAG_TOKEN = 3
_TAG_JOIN = 4
_TAG_FORM = 5
_TAG_PROBE = 6
_TAG_BULK_FETCH = 7
_TAG_BULK_PAGE = 8
_TAG_BULK_NACK = 9
_TAG_READFAST_REQ = 10
_TAG_READFAST_REPLY = 11
_TAG_READFAST_NACK = 12

TotemFrame = object     # DataMsg | PackedDataMsg | Token | JoinMsg | ...


# ---------------------------------------------------------------------------
# Out-of-band bulk-lane frames (recovery state transfer, repro.core.bulk)
# ---------------------------------------------------------------------------

#: Declared wire overhead of one :class:`BulkPage` beyond its page bytes.
BULK_PAGE_HEADER = 48
#: Declared size of the fixed-layout control frames (fetch / nack).
BULK_CTRL_SIZE = 64


@dataclass(frozen=True)
class BulkFetch:
    """Target → sponsor: send me pages ``first_page..last_page`` (one
    stripe, or a retransmit of its missing subset) of session
    ``session_id``'s stashed snapshot."""

    session_id: str
    requester: str
    first_page: int
    last_page: int              # inclusive

    @property
    def size_bytes(self) -> int:
        return BULK_CTRL_SIZE

    @property
    def page_count(self) -> int:
        return self.last_page - self.first_page + 1


@dataclass(frozen=True)
class BulkPage:
    """Sponsor → target: one page of the snapshot, tagged with its CRC32
    so the receiver can verify it against the in-order manifest."""

    session_id: str
    sender: str
    index: int
    crc: int
    page: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.page) + BULK_PAGE_HEADER


@dataclass(frozen=True)
class BulkNack:
    """Sponsor → target: the fetch cannot be served.  ``reason`` is
    ``"unknown"`` (no such stash — the sponsor restarted or expired it;
    drop the sponsor) or ``"pending"`` (capture still in flight — retry
    the stripe after the watchdog)."""

    session_id: str
    sender: str
    reason: str = "unknown"

    @property
    def size_bytes(self) -> int:
        return BULK_CTRL_SIZE


# ---------------------------------------------------------------------------
# Read-lease fast-path frames (repro.core.readfast)
# ---------------------------------------------------------------------------

#: Declared wire overhead of a fast-path request/reply beyond its IIOP body.
READFAST_HEADER = 48
#: Declared size of the fixed-layout nack frame.
READFAST_CTRL_SIZE = 64


@dataclass(frozen=True)
class ReadFastRequest:
    """Client → leaseholder: execute this read-only IIOP request locally
    (off the total order) and unicast the reply back.  ``ring_id`` is the
    sender's installed ring — a currency hint the server re-validates
    against its own installed ring before serving."""

    group_id: str               # target (server) object group
    conn: str                   # ConnectionKey.as_str()
    request_id: int             # wire (offset-rewritten) GIOP request id
    requester: str              # node to unicast the reply to
    ring_id: int
    iiop_bytes: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.iiop_bytes) + READFAST_HEADER


@dataclass(frozen=True)
class ReadFastReply:
    """Leaseholder → client: the locally produced reply for a fast read."""

    group_id: str
    conn: str
    request_id: int
    ring_id: int
    iiop_bytes: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.iiop_bytes) + READFAST_HEADER


@dataclass(frozen=True)
class ReadFastNack:
    """Leaseholder → client: cannot serve this read under the lease
    (ring changed, replica not operational, reply oversize, …); the
    client re-issues the request through the total order."""

    group_id: str
    conn: str
    request_id: int
    reason: str = "not_leaseholder"

    @property
    def size_bytes(self) -> int:
        return READFAST_CTRL_SIZE


#: Extension frame types (tags 64-255): embedders may register additional
#: payload classes; the core protocol keeps tags below 64.
_EXT_BY_CLASS: dict = {}
_EXT_BY_TAG: dict = {}


def register_wire_type(tag: int, cls, encode, decode) -> None:
    """Register an extension frame type.

    ``encode(out, obj)`` writes the body onto a :class:`CdrOutputStream`;
    ``decode(inp)`` rebuilds the object from a :class:`CdrInputStream`.
    Exact-class match only (no MRO walk): the codec must reproduce the
    precise type it was handed, because the transport dispatches received
    payloads by class.
    """
    if not 64 <= tag <= 255:
        raise ValueError(f"extension tag {tag} outside 64..255")
    _EXT_BY_CLASS[cls] = (tag, encode)
    _EXT_BY_TAG[tag] = decode


def _write_msg_id(out: CdrOutputStream, msg_id) -> None:
    out.write_string(msg_id[0])
    out.write_ulonglong(msg_id[1])


def _read_msg_id(inp: CdrInputStream):
    return (inp.read_string(), inp.read_ulonglong())


def _write_members(out: CdrOutputStream, members) -> None:
    out.write_ulong(len(members))
    for member in members:
        out.write_string(member)


def _read_members(inp: CdrInputStream):
    return tuple(inp.read_string() for _ in range(inp.read_ulong()))


# ---------------------------------------------------------------------------
# Hand-specialized hot-path codec (DataMsg / PackedDataMsg / Token)
# ---------------------------------------------------------------------------
#
# CDR alignment is relative to the start of the stream; the version and
# tag octets occupy positions 0 and 1, so the leading ulonglong of all
# three hot frame types lands at offset 8 after six bytes of padding.
# The prefix constants below bake version+tag+padding into one append.

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_QQ = struct.Struct(">QQ")      # DataMsg/PackedDataMsg: ring_id, seq
_QQQ = struct.Struct(">QQQ")    # Token: ring_id, seq, aru

_PAD = tuple(b"\x00" * n for n in range(8))

_DATA_PREFIX = bytes([WIRE_VERSION, _TAG_DATA]) + b"\x00" * 6
_PACKED_PREFIX = bytes([WIRE_VERSION, _TAG_PACKED]) + b"\x00" * 6
_TOKEN_PREFIX = bytes([WIRE_VERSION, _TAG_TOKEN]) + b"\x00" * 6


def _w_u32(buf: bytearray, value: int) -> None:
    r = len(buf) & 3
    if r:
        buf += _PAD[4 - r]
    buf += _U32.pack(value)


def _w_u64(buf: bytearray, value: int) -> None:
    r = len(buf) & 7
    if r:
        buf += _PAD[8 - r]
    buf += _U64.pack(value)


def _w_str(buf: bytearray, value: str) -> None:
    encoded = value.encode("utf-8")
    _w_u32(buf, len(encoded) + 1)
    buf += encoded
    buf.append(0)


def _w_octets(buf: bytearray, value) -> None:
    _w_u32(buf, len(value))
    buf += value


def _r_u32(data, pos: int):
    pos = (pos + 3) & ~3
    return _U32.unpack_from(data, pos)[0], pos + 4


def _r_u64(data, pos: int):
    pos = (pos + 7) & ~7
    return _U64.unpack_from(data, pos)[0], pos + 8


def _r_str(data, pos: int):
    length, pos = _r_u32(data, pos)
    end = pos + length
    if length == 0 or end > len(data):
        raise UnmarshalError(f"bad CDR string length {length} at {pos}")
    if data[end - 1] != 0:
        raise UnmarshalError("CDR string missing NUL terminator")
    try:
        return str(data[pos:end - 1], "utf-8"), end
    except UnicodeDecodeError as exc:
        raise UnmarshalError(f"invalid UTF-8 in CDR string: {exc}") from exc


def _r_octets(data, pos: int):
    length, pos = _r_u32(data, pos)
    end = pos + length
    if end > len(data):
        raise UnmarshalError(f"truncated CDR octets ({length}) at {pos}")
    return data[pos:end], end


def _encode_data_into(buf: bytearray, msg: DataMsg) -> None:
    buf += _DATA_PREFIX
    buf += _QQ.pack(msg.ring_id, msg.seq)
    _w_str(buf, msg.sender)
    msg_id = msg.msg_id
    _w_str(buf, msg_id[0])
    _w_u64(buf, msg_id[1])
    _w_u32(buf, msg.frag_index)
    _w_u32(buf, msg.frag_count)
    buf.append(1 if msg.retransmit else 0)
    _w_octets(buf, msg.chunk)
    _w_str(buf, msg.trace_id)


def _decode_data(data) -> DataMsg:
    ring_id, seq = _QQ.unpack_from(data, 8)
    sender, pos = _r_str(data, 24)
    origin, pos = _r_str(data, pos)
    counter, pos = _r_u64(data, pos)
    frag_index, pos = _r_u32(data, pos)
    frag_count, pos = _r_u32(data, pos)
    retransmit = data[pos] != 0
    chunk, pos = _r_octets(data, pos + 1)
    trace_id, pos = _r_str(data, pos)
    return DataMsg(ring_id, seq, sender, (origin, counter), frag_index,
                   frag_count, chunk, retransmit, trace_id)


def _encode_packed_into(buf: bytearray, msg: PackedDataMsg) -> None:
    buf += _PACKED_PREFIX
    buf += _QQ.pack(msg.ring_id, msg.seq)
    _w_str(buf, msg.sender)
    buf.append(1 if msg.retransmit else 0)
    _w_u32(buf, len(msg.payloads))
    for payload in msg.payloads:
        _w_str(buf, payload.msg_id[0])
        _w_u64(buf, payload.msg_id[1])
        _w_u32(buf, payload.frag_index)
        _w_u32(buf, payload.frag_count)
        _w_octets(buf, payload.chunk)
        _w_str(buf, payload.trace_id)


def _decode_packed(data) -> PackedDataMsg:
    ring_id, seq = _QQ.unpack_from(data, 8)
    sender, pos = _r_str(data, 24)
    retransmit = data[pos] != 0
    count, pos = _r_u32(data, pos + 1)
    payloads = []
    for _ in range(count):
        origin, pos = _r_str(data, pos)
        counter, pos = _r_u64(data, pos)
        frag_index, pos = _r_u32(data, pos)
        frag_count, pos = _r_u32(data, pos)
        chunk, pos = _r_octets(data, pos)
        trace_id, pos = _r_str(data, pos)
        payloads.append(PackedPayload((origin, counter), frag_index,
                                      frag_count, chunk, trace_id))
    return PackedDataMsg(ring_id, seq, sender, tuple(payloads), retransmit)


def _encode_token_into(buf: bytearray, msg: Token) -> None:
    buf += _TOKEN_PREFIX
    buf += _QQQ.pack(msg.ring_id, msg.seq, msg.aru)
    _w_str(buf, msg.aru_id)
    _w_u32(buf, len(msg.rtr))
    for seq in msg.rtr:
        _w_u64(buf, seq)
    _w_u64(buf, msg.rotations)
    _w_u32(buf, msg.ring_key)
    buf.append(msg.commit_phase)


def _decode_token(data) -> Token:
    ring_id, seq, aru = _QQQ.unpack_from(data, 8)
    aru_id, pos = _r_str(data, 32)
    count, pos = _r_u32(data, pos)
    rtr = []
    for _ in range(count):
        value, pos = _r_u64(data, pos)
        rtr.append(value)
    rotations, pos = _r_u64(data, pos)
    ring_key, pos = _r_u32(data, pos)
    commit_phase = data[pos]
    return Token(ring_id, seq, aru, aru_id, rtr, rotations, ring_key,
                 commit_phase)


def encode_frame_payload_into(buf: bytearray, msg) -> None:
    """Append one encoded Totem frame to ``buf`` (a reusable buffer).

    CDR alignment is computed from the start of ``buf``, so the frame
    must begin at offset 0 or a multiple of 8 (callers reuse a scratch
    buffer they clear between frames)."""
    kind = type(msg)
    if kind is DataMsg:
        _encode_data_into(buf, msg)
        return
    if kind is PackedDataMsg:
        _encode_packed_into(buf, msg)
        return
    if kind is Token:
        _encode_token_into(buf, msg)
        return
    buf += _encode_generic(msg)


def encode_frame_payload(msg) -> bytes:
    """Serialize one Totem frame (any of the registered message types)."""
    kind = type(msg)
    if kind is DataMsg or kind is PackedDataMsg or kind is Token:
        buf = bytearray()
        encode_frame_payload_into(buf, msg)
        return bytes(buf)
    return _encode_generic(msg)


def _encode_generic(msg) -> bytes:
    """Reference CDR encoder covering every frame type (the specialized
    hot-path encoders above must stay byte-identical to it)."""
    out = CdrOutputStream()
    out.write_octet(WIRE_VERSION)
    extension = _EXT_BY_CLASS.get(type(msg))
    if extension is not None:
        tag, encode = extension
        out.write_octet(tag)
        encode(out, msg)
    elif isinstance(msg, DataMsg):
        out.write_octet(_TAG_DATA)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_string(msg.sender)
        _write_msg_id(out, msg.msg_id)
        out.write_ulong(msg.frag_index)
        out.write_ulong(msg.frag_count)
        out.write_boolean(msg.retransmit)
        out.write_octets(msg.chunk)
        out.write_string(msg.trace_id)
    elif isinstance(msg, PackedDataMsg):
        out.write_octet(_TAG_PACKED)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_string(msg.sender)
        out.write_boolean(msg.retransmit)
        out.write_ulong(len(msg.payloads))
        for payload in msg.payloads:
            _write_msg_id(out, payload.msg_id)
            out.write_ulong(payload.frag_index)
            out.write_ulong(payload.frag_count)
            out.write_octets(payload.chunk)
            out.write_string(payload.trace_id)
    elif isinstance(msg, Token):
        out.write_octet(_TAG_TOKEN)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_ulonglong(msg.aru)
        out.write_string(msg.aru_id)
        out.write_ulong(len(msg.rtr))
        for seq in msg.rtr:
            out.write_ulonglong(seq)
        out.write_ulonglong(msg.rotations)
        out.write_ulong(msg.ring_key)
        out.write_octet(msg.commit_phase)
    elif isinstance(msg, JoinMsg):
        out.write_octet(_TAG_JOIN)
        out.write_string(msg.sender)
        out.write_ulonglong(msg.ring_id_seen)
        out.write_ulonglong(msg.delivered_aru)
        out.write_ulong(len(msg.held))
        for seq in sorted(msg.held):
            out.write_ulonglong(seq)
        out.write_boolean(msg.fresh)
        _write_members(out, msg.view_members)
        out.write_ulonglong(msg.base_seen)
    elif isinstance(msg, FormMsg):
        out.write_octet(_TAG_FORM)
        out.write_ulonglong(msg.ring_id)
        out.write_string(msg.leader)
        _write_members(out, msg.members)
        out.write_ulonglong(msg.flush_seq)
        out.write_ulonglong(msg.base_seq)
        out.write_ulong(len(msg.holders))
        for seq in sorted(msg.holders):
            out.write_ulonglong(seq)
            out.write_string(msg.holders[seq])
        _write_members(out, msg.fresh_members)
    elif isinstance(msg, ProbeMsg):
        out.write_octet(_TAG_PROBE)
        out.write_ulonglong(msg.ring_id)
        out.write_string(msg.sender)
        _write_members(out, msg.members)
    elif isinstance(msg, BulkFetch):
        out.write_octet(_TAG_BULK_FETCH)
        out.write_string(msg.session_id)
        out.write_string(msg.requester)
        out.write_ulong(msg.first_page)
        out.write_ulong(msg.last_page)
    elif isinstance(msg, BulkPage):
        out.write_octet(_TAG_BULK_PAGE)
        out.write_string(msg.session_id)
        out.write_string(msg.sender)
        out.write_ulong(msg.index)
        out.write_ulong(msg.crc)
        out.write_octets(msg.page)
    elif isinstance(msg, BulkNack):
        out.write_octet(_TAG_BULK_NACK)
        out.write_string(msg.session_id)
        out.write_string(msg.sender)
        out.write_string(msg.reason)
    elif isinstance(msg, ReadFastRequest):
        out.write_octet(_TAG_READFAST_REQ)
        out.write_string(msg.group_id)
        out.write_string(msg.conn)
        out.write_ulonglong(msg.request_id)
        out.write_string(msg.requester)
        out.write_ulonglong(msg.ring_id)
        out.write_octets(msg.iiop_bytes)
    elif isinstance(msg, ReadFastReply):
        out.write_octet(_TAG_READFAST_REPLY)
        out.write_string(msg.group_id)
        out.write_string(msg.conn)
        out.write_ulonglong(msg.request_id)
        out.write_ulonglong(msg.ring_id)
        out.write_octets(msg.iiop_bytes)
    elif isinstance(msg, ReadFastNack):
        out.write_octet(_TAG_READFAST_NACK)
        out.write_string(msg.group_id)
        out.write_string(msg.conn)
        out.write_ulonglong(msg.request_id)
        out.write_string(msg.reason)
    else:
        raise ProtocolError(
            f"cannot encode Totem frame {type(msg).__name__}")
    return out.getvalue()


def decode_frame_payload(data):
    """Inverse of :func:`encode_frame_payload`.

    Accepts ``bytes`` or a ``memoryview``; with a view, chunk bodies in
    the decoded messages are zero-copy sub-views of the datagram buffer.
    """
    if len(data) < 2:
        raise ProtocolError(f"short Totem frame ({len(data)} bytes)")
    version = data[0]
    if version != WIRE_VERSION:
        raise ProtocolError(f"unknown Totem wire version {version}")
    tag = data[1]
    try:
        if tag == _TAG_DATA:
            return _decode_data(data)
        if tag == _TAG_PACKED:
            return _decode_packed(data)
        if tag == _TAG_TOKEN:
            return _decode_token(data)
    except (struct.error, IndexError) as exc:
        raise UnmarshalError(f"truncated Totem frame (tag {tag}): {exc}") \
            from exc
    inp = CdrInputStream(data)
    inp.read_octet()            # version (validated above)
    inp.read_octet()            # tag
    return _decode_generic(tag, inp)


def _decode_generic(tag: int, inp: CdrInputStream):
    """Reference CDR decoder for every non-hot tag (and the equivalence
    oracle the specialized decoders are property-tested against)."""
    if tag == _TAG_DATA:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        sender = inp.read_string()
        msg_id = _read_msg_id(inp)
        frag_index = inp.read_ulong()
        frag_count = inp.read_ulong()
        retransmit = inp.read_boolean()
        chunk = inp.read_octets()
        trace_id = inp.read_string()
        return DataMsg(ring_id, seq, sender, msg_id, frag_index,
                       frag_count, chunk, retransmit, trace_id)
    if tag == _TAG_PACKED:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        sender = inp.read_string()
        retransmit = inp.read_boolean()
        count = inp.read_ulong()
        payloads = []
        for _ in range(count):
            msg_id = _read_msg_id(inp)
            frag_index = inp.read_ulong()
            frag_count = inp.read_ulong()
            chunk = inp.read_octets()
            payloads.append(PackedPayload(msg_id, frag_index, frag_count,
                                          chunk, inp.read_string()))
        return PackedDataMsg(ring_id, seq, sender, tuple(payloads),
                             retransmit)
    if tag == _TAG_TOKEN:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        aru = inp.read_ulonglong()
        aru_id = inp.read_string()
        rtr = [inp.read_ulonglong() for _ in range(inp.read_ulong())]
        rotations = inp.read_ulonglong()
        ring_key = inp.read_ulong()
        commit_phase = inp.read_octet()
        return Token(ring_id, seq, aru, aru_id, rtr, rotations, ring_key,
                     commit_phase)
    if tag == _TAG_JOIN:
        sender = inp.read_string()
        ring_id_seen = inp.read_ulonglong()
        delivered_aru = inp.read_ulonglong()
        held = frozenset(inp.read_ulonglong()
                         for _ in range(inp.read_ulong()))
        fresh = inp.read_boolean()
        view_members = _read_members(inp)
        base_seen = inp.read_ulonglong()
        return JoinMsg(sender, ring_id_seen, delivered_aru, held, fresh,
                       view_members, base_seen)
    if tag == _TAG_FORM:
        ring_id = inp.read_ulonglong()
        leader = inp.read_string()
        members = _read_members(inp)
        flush_seq = inp.read_ulonglong()
        base_seq = inp.read_ulonglong()
        holders = {}
        for _ in range(inp.read_ulong()):
            seq = inp.read_ulonglong()
            holders[seq] = inp.read_string()
        fresh_members = _read_members(inp)
        return FormMsg(ring_id, leader, members, flush_seq, base_seq,
                       holders, fresh_members)
    if tag == _TAG_PROBE:
        ring_id = inp.read_ulonglong()
        sender = inp.read_string()
        members = _read_members(inp)
        return ProbeMsg(ring_id, sender, members)
    if tag == _TAG_BULK_FETCH:
        return BulkFetch(inp.read_string(), inp.read_string(),
                         inp.read_ulong(), inp.read_ulong())
    if tag == _TAG_BULK_PAGE:
        return BulkPage(inp.read_string(), inp.read_string(),
                        inp.read_ulong(), inp.read_ulong(),
                        inp.read_octets())
    if tag == _TAG_BULK_NACK:
        return BulkNack(inp.read_string(), inp.read_string(),
                        inp.read_string())
    if tag == _TAG_READFAST_REQ:
        return ReadFastRequest(inp.read_string(), inp.read_string(),
                               inp.read_ulonglong(), inp.read_string(),
                               inp.read_ulonglong(), inp.read_octets())
    if tag == _TAG_READFAST_REPLY:
        return ReadFastReply(inp.read_string(), inp.read_string(),
                             inp.read_ulonglong(), inp.read_ulonglong(),
                             inp.read_octets())
    if tag == _TAG_READFAST_NACK:
        return ReadFastNack(inp.read_string(), inp.read_string(),
                            inp.read_ulonglong(), inp.read_string())
    decode = _EXT_BY_TAG.get(tag)
    if decode is not None:
        return decode(inp)
    raise ProtocolError(f"unknown Totem frame tag {tag}")
