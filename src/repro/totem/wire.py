"""Binary wire codec for Totem protocol frames.

The live runtime's UDP transport needs a byte representation of every
frame the ring exchanges.  This module encodes the six Totem message
types — plus the out-of-band bulk-lane frames (:class:`BulkFetch`,
:class:`BulkPage`, :class:`BulkNack`) the recovery state transfer sends
point-to-point outside the total order — in CDR (reusing
:mod:`repro.giop.cdr`, the same marshalling the IIOP layer uses) behind
a one-octet format version, replacing the pickle encoding the live
transport started with: the codec is

* **safe** — decoding attacker-controlled bytes can only yield Totem
  message objects, never arbitrary Python objects;
* **versioned** — the leading octet rejects frames from an incompatible
  build instead of mis-parsing them;
* **compact** — a classic ``DataMsg`` costs its chunk plus ~40 bytes of
  header, close to the simulator's declared ``size_bytes`` and far below
  pickle's overhead.

Unknown tags and malformed bodies raise :class:`~repro.errors.ProtocolError`
(or the CDR layer's :class:`~repro.errors.UnmarshalError`); the transport
maps both onto dropped frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.totem.messages import (DataMsg, FormMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, ProbeMsg, Token)

#: Format version octet leading every encoded frame (bump on layout change).
#: v2: data frames and packed payloads carry a trailing trace-id string.
WIRE_VERSION = 2

_TAG_DATA = 1
_TAG_PACKED = 2
_TAG_TOKEN = 3
_TAG_JOIN = 4
_TAG_FORM = 5
_TAG_PROBE = 6
_TAG_BULK_FETCH = 7
_TAG_BULK_PAGE = 8
_TAG_BULK_NACK = 9

TotemFrame = object     # DataMsg | PackedDataMsg | Token | JoinMsg | ...


# ---------------------------------------------------------------------------
# Out-of-band bulk-lane frames (recovery state transfer, repro.core.bulk)
# ---------------------------------------------------------------------------

#: Declared wire overhead of one :class:`BulkPage` beyond its page bytes.
BULK_PAGE_HEADER = 48
#: Declared size of the fixed-layout control frames (fetch / nack).
BULK_CTRL_SIZE = 64


@dataclass(frozen=True)
class BulkFetch:
    """Target → sponsor: send me pages ``first_page..last_page`` (one
    stripe, or a retransmit of its missing subset) of session
    ``session_id``'s stashed snapshot."""

    session_id: str
    requester: str
    first_page: int
    last_page: int              # inclusive

    @property
    def size_bytes(self) -> int:
        return BULK_CTRL_SIZE

    @property
    def page_count(self) -> int:
        return self.last_page - self.first_page + 1


@dataclass(frozen=True)
class BulkPage:
    """Sponsor → target: one page of the snapshot, tagged with its CRC32
    so the receiver can verify it against the in-order manifest."""

    session_id: str
    sender: str
    index: int
    crc: int
    page: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.page) + BULK_PAGE_HEADER


@dataclass(frozen=True)
class BulkNack:
    """Sponsor → target: the fetch cannot be served.  ``reason`` is
    ``"unknown"`` (no such stash — the sponsor restarted or expired it;
    drop the sponsor) or ``"pending"`` (capture still in flight — retry
    the stripe after the watchdog)."""

    session_id: str
    sender: str
    reason: str = "unknown"

    @property
    def size_bytes(self) -> int:
        return BULK_CTRL_SIZE

#: Extension frame types (tags 64-255): embedders may register additional
#: payload classes; the core protocol keeps tags below 64.
_EXT_BY_CLASS: dict = {}
_EXT_BY_TAG: dict = {}


def register_wire_type(tag: int, cls, encode, decode) -> None:
    """Register an extension frame type.

    ``encode(out, obj)`` writes the body onto a :class:`CdrOutputStream`;
    ``decode(inp)`` rebuilds the object from a :class:`CdrInputStream`.
    Exact-class match only (no MRO walk): the codec must reproduce the
    precise type it was handed, because the transport dispatches received
    payloads by class.
    """
    if not 64 <= tag <= 255:
        raise ValueError(f"extension tag {tag} outside 64..255")
    _EXT_BY_CLASS[cls] = (tag, encode)
    _EXT_BY_TAG[tag] = decode


def _write_msg_id(out: CdrOutputStream, msg_id) -> None:
    out.write_string(msg_id[0])
    out.write_ulonglong(msg_id[1])


def _read_msg_id(inp: CdrInputStream):
    return (inp.read_string(), inp.read_ulonglong())


def _write_members(out: CdrOutputStream, members) -> None:
    out.write_ulong(len(members))
    for member in members:
        out.write_string(member)


def _read_members(inp: CdrInputStream):
    return tuple(inp.read_string() for _ in range(inp.read_ulong()))


def encode_frame_payload(msg) -> bytes:
    """Serialize one Totem frame (any of the six message types)."""
    out = CdrOutputStream()
    out.write_octet(WIRE_VERSION)
    extension = _EXT_BY_CLASS.get(type(msg))
    if extension is not None:
        tag, encode = extension
        out.write_octet(tag)
        encode(out, msg)
    elif isinstance(msg, DataMsg):
        out.write_octet(_TAG_DATA)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_string(msg.sender)
        _write_msg_id(out, msg.msg_id)
        out.write_ulong(msg.frag_index)
        out.write_ulong(msg.frag_count)
        out.write_boolean(msg.retransmit)
        out.write_octets(msg.chunk)
        out.write_string(msg.trace_id)
    elif isinstance(msg, PackedDataMsg):
        out.write_octet(_TAG_PACKED)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_string(msg.sender)
        out.write_boolean(msg.retransmit)
        out.write_ulong(len(msg.payloads))
        for payload in msg.payloads:
            _write_msg_id(out, payload.msg_id)
            out.write_ulong(payload.frag_index)
            out.write_ulong(payload.frag_count)
            out.write_octets(payload.chunk)
            out.write_string(payload.trace_id)
    elif isinstance(msg, Token):
        out.write_octet(_TAG_TOKEN)
        out.write_ulonglong(msg.ring_id)
        out.write_ulonglong(msg.seq)
        out.write_ulonglong(msg.aru)
        out.write_string(msg.aru_id)
        out.write_ulong(len(msg.rtr))
        for seq in msg.rtr:
            out.write_ulonglong(seq)
        out.write_ulonglong(msg.rotations)
        out.write_ulong(msg.ring_key)
        out.write_octet(msg.commit_phase)
    elif isinstance(msg, JoinMsg):
        out.write_octet(_TAG_JOIN)
        out.write_string(msg.sender)
        out.write_ulonglong(msg.ring_id_seen)
        out.write_ulonglong(msg.delivered_aru)
        out.write_ulong(len(msg.held))
        for seq in sorted(msg.held):
            out.write_ulonglong(seq)
        out.write_boolean(msg.fresh)
        _write_members(out, msg.view_members)
        out.write_ulonglong(msg.base_seen)
    elif isinstance(msg, FormMsg):
        out.write_octet(_TAG_FORM)
        out.write_ulonglong(msg.ring_id)
        out.write_string(msg.leader)
        _write_members(out, msg.members)
        out.write_ulonglong(msg.flush_seq)
        out.write_ulonglong(msg.base_seq)
        out.write_ulong(len(msg.holders))
        for seq in sorted(msg.holders):
            out.write_ulonglong(seq)
            out.write_string(msg.holders[seq])
        _write_members(out, msg.fresh_members)
    elif isinstance(msg, ProbeMsg):
        out.write_octet(_TAG_PROBE)
        out.write_ulonglong(msg.ring_id)
        out.write_string(msg.sender)
        _write_members(out, msg.members)
    elif isinstance(msg, BulkFetch):
        out.write_octet(_TAG_BULK_FETCH)
        out.write_string(msg.session_id)
        out.write_string(msg.requester)
        out.write_ulong(msg.first_page)
        out.write_ulong(msg.last_page)
    elif isinstance(msg, BulkPage):
        out.write_octet(_TAG_BULK_PAGE)
        out.write_string(msg.session_id)
        out.write_string(msg.sender)
        out.write_ulong(msg.index)
        out.write_ulong(msg.crc)
        out.write_octets(msg.page)
    elif isinstance(msg, BulkNack):
        out.write_octet(_TAG_BULK_NACK)
        out.write_string(msg.session_id)
        out.write_string(msg.sender)
        out.write_string(msg.reason)
    else:
        raise ProtocolError(
            f"cannot encode Totem frame {type(msg).__name__}")
    return out.getvalue()


def decode_frame_payload(data: bytes):
    """Inverse of :func:`encode_frame_payload`."""
    inp = CdrInputStream(data)
    version = inp.read_octet()
    if version != WIRE_VERSION:
        raise ProtocolError(f"unknown Totem wire version {version}")
    tag = inp.read_octet()
    if tag == _TAG_DATA:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        sender = inp.read_string()
        msg_id = _read_msg_id(inp)
        frag_index = inp.read_ulong()
        frag_count = inp.read_ulong()
        retransmit = inp.read_boolean()
        chunk = inp.read_octets()
        trace_id = inp.read_string()
        return DataMsg(ring_id, seq, sender, msg_id, frag_index,
                       frag_count, chunk, retransmit, trace_id)
    if tag == _TAG_PACKED:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        sender = inp.read_string()
        retransmit = inp.read_boolean()
        count = inp.read_ulong()
        payloads = []
        for _ in range(count):
            msg_id = _read_msg_id(inp)
            frag_index = inp.read_ulong()
            frag_count = inp.read_ulong()
            chunk = inp.read_octets()
            payloads.append(PackedPayload(msg_id, frag_index, frag_count,
                                          chunk, inp.read_string()))
        return PackedDataMsg(ring_id, seq, sender, tuple(payloads),
                             retransmit)
    if tag == _TAG_TOKEN:
        ring_id = inp.read_ulonglong()
        seq = inp.read_ulonglong()
        aru = inp.read_ulonglong()
        aru_id = inp.read_string()
        rtr = [inp.read_ulonglong() for _ in range(inp.read_ulong())]
        rotations = inp.read_ulonglong()
        ring_key = inp.read_ulong()
        commit_phase = inp.read_octet()
        return Token(ring_id, seq, aru, aru_id, rtr, rotations, ring_key,
                     commit_phase)
    if tag == _TAG_JOIN:
        sender = inp.read_string()
        ring_id_seen = inp.read_ulonglong()
        delivered_aru = inp.read_ulonglong()
        held = frozenset(inp.read_ulonglong()
                         for _ in range(inp.read_ulong()))
        fresh = inp.read_boolean()
        view_members = _read_members(inp)
        base_seen = inp.read_ulonglong()
        return JoinMsg(sender, ring_id_seen, delivered_aru, held, fresh,
                       view_members, base_seen)
    if tag == _TAG_FORM:
        ring_id = inp.read_ulonglong()
        leader = inp.read_string()
        members = _read_members(inp)
        flush_seq = inp.read_ulonglong()
        base_seq = inp.read_ulonglong()
        holders = {}
        for _ in range(inp.read_ulong()):
            seq = inp.read_ulonglong()
            holders[seq] = inp.read_string()
        fresh_members = _read_members(inp)
        return FormMsg(ring_id, leader, members, flush_seq, base_seq,
                       holders, fresh_members)
    if tag == _TAG_PROBE:
        ring_id = inp.read_ulonglong()
        sender = inp.read_string()
        members = _read_members(inp)
        return ProbeMsg(ring_id, sender, members)
    if tag == _TAG_BULK_FETCH:
        return BulkFetch(inp.read_string(), inp.read_string(),
                         inp.read_ulong(), inp.read_ulong())
    if tag == _TAG_BULK_PAGE:
        return BulkPage(inp.read_string(), inp.read_string(),
                        inp.read_ulong(), inp.read_ulong(),
                        inp.read_octets())
    if tag == _TAG_BULK_NACK:
        return BulkNack(inp.read_string(), inp.read_string(),
                        inp.read_string())
    decode = _EXT_BY_TAG.get(tag)
    if decode is not None:
        return decode(inp)
    raise ProtocolError(f"unknown Totem frame tag {tag}")
