"""Eternal's core: interception, replication, and recovery mechanisms.

This package is the paper's contribution.  Per node it runs:

* the **Interceptor** (:mod:`repro.core.interceptor`) — captures each
  replica ORB's IIOP bytes at its socket-level interface and diverts them
  to the Replication Mechanisms for multicasting (and rewrites GIOP
  request_ids for recovered client replicas, §4.2.1);
* the **Replication Mechanisms** (:mod:`repro.core.replication`) — map
  connections onto Totem multicast, enforce duplicate suppression with
  Eternal-generated operation identifiers, and route delivered messages to
  local replicas according to their replication style and role;
* the **Recovery Mechanisms** (:mod:`repro.core.recovery`) — logging of
  checkpoints and messages, enqueueing during recovery, and the
  synchronized ``get_state``/``set_state`` transfer of the three kinds of
  state (application-level, ORB/POA-level, infrastructure-level) at a
  single logical point in the total order (§5.1 steps i–vi).

System-wide (hosted on a manager node) run the **Replication Manager**,
**Resource Manager**, and **Evolution Manager** (:mod:`repro.core.managers`).
The :class:`~repro.core.system.EternalSystem` facade assembles a whole
simulated deployment.
"""

from repro.core.system import EternalSystem, GroupHandle, NodeStack
from repro.core.config import EternalConfig

__all__ = ["EternalSystem", "GroupHandle", "NodeStack", "EternalConfig"]
