"""Cross-ring invocation bridging for sharded deployments.

Placement (:mod:`repro.core.placement`) makes the common case local: a
client driver is deployed into the same Totem ring as the group it
drives, so its invocations never leave that ring's total order.  The
uncommon case — a proxy on ring A invoking a group placed on ring B —
still has to work.  The bridge below handles it without any new wire
protocol:

* Inside ring A the request is an ordinary :class:`IiopEnvelope`
  multicast; every member delivers it, finds no local binding for the
  target group, and hands it to its :class:`RingGatewayPort`.
* The port forwards only from the elected **gateway node** — the lowest
  live member of the installed ring view — so one ordered stream of
  deliveries produces one forward, not N.
* The :class:`GatewayBridge` (one per sharded facade, shared by all
  rings) suppresses duplicates per target ring with the interceptor's
  own operation identifiers (:class:`~repro.core.identifiers.
  DuplicateFilter` over ``envelope.operation_id`` — connection,
  request id, REQUEST/REPLY kind), then re-multicasts the envelope into
  the target ring through any live stack there.  Replies traverse the
  same path in reverse: a REPLY's target group is the *client's* group,
  unplaced on the serving ring, so it bridges back symmetrically.

Exactly-once at the target is therefore enforced twice: once at the
bridge (a re-forward after gateway failover, or a client
retransmission of an already-bridged request, is dropped before it
enters the target ring) and once by the target replicas' own duplicate
filters — the paper's §2.1 at-most-once guarantee is never delegated
to the bridge alone.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.core.envelope import IiopEnvelope
from repro.core.identifiers import DuplicateFilter
from repro.runtime.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replication import ReplicationMechanisms
    from repro.core.system import SystemCore


class RingGatewayPort:
    """One ring's view of the bridge (installed on every stack's
    mechanisms; see ``ReplicationMechanisms.gateway``)."""

    def __init__(self, bridge: "GatewayBridge", ring_name: str) -> None:
        self.bridge = bridge
        self.ring_name = ring_name

    def on_unplaced_iiop(self, envelope: IiopEnvelope,
                         mechanisms: "ReplicationMechanisms") -> None:
        """An ordered IIOP delivery found no local binding on this node.

        Most members simply ignore it (some other node of this ring hosts
        the group, or the group is foreign); only the elected gateway node
        of an installed view forwards foreign traffic to the bridge.
        """
        target = self.bridge.resolve_ring(envelope.target_group)
        if target is None or target == self.ring_name:
            return
        members = mechanisms.totem.members
        if not members or min(members) != mechanisms.node_id:
            return
        self.bridge.forward(self.ring_name, target, envelope)


class GatewayBridge:
    """Routes envelopes between rings with per-target duplicate
    suppression (see the module docstring)."""

    def __init__(self, resolve_ring: Callable[[str], Optional[str]],
                 *, tracer: Tracer = NULL_TRACER) -> None:
        self.resolve_ring = resolve_ring
        self.tracer = tracer
        self._systems: Dict[str, "SystemCore"] = {}
        # One filter per *target* ring, keyed on the interceptor's
        # operation ids.  It lives at the bridge — not on any node — so
        # it survives gateway-node churn within the source ring.
        self._filters: Dict[str, DuplicateFilter] = {}
        self.forwarded = 0
        self.duplicates = 0

    def register_ring(self, ring_name: str,
                      system: "SystemCore") -> RingGatewayPort:
        """Admit one ring; returns the port its stacks should install."""
        self._systems[ring_name] = system
        return RingGatewayPort(self, ring_name)

    def _injector(self, ring_name: str) -> Optional["ReplicationMechanisms"]:
        """A live stack of the target ring to multicast through (lowest
        node id for determinism)."""
        system = self._systems.get(ring_name)
        if system is None:
            return None
        for node_id in sorted(system.stacks):
            stack = system.stacks[node_id]
            if stack.process.alive and stack.mechanisms is not None:
                return stack.mechanisms
        return None

    def forward(self, source: str, target: str,
                envelope: IiopEnvelope) -> None:
        mechanisms = self._injector(target)
        if mechanisms is None:
            # Nobody alive to inject through: drop *without* recording the
            # operation id, so a client retransmission can succeed once
            # the target ring has members again.
            return
        shadow = self._filters.setdefault(target, DuplicateFilter())
        if shadow.seen_before(envelope.operation_id):
            self.duplicates += 1
            self.tracer.emit("gateway", "duplicate", source=source,
                             target=target, group=envelope.target_group,
                             request_id=envelope.request_id,
                             kind=envelope.kind.name)
            return
        self.forwarded += 1
        self.tracer.emit("gateway", "forward", source=source, target=target,
                         group=envelope.target_group,
                         request_id=envelope.request_id,
                         kind=envelope.kind.name,
                         trace=envelope.trace_id)
        mechanisms.multicast(envelope)
