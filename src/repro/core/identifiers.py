"""Eternal-generated operation identifiers for duplicate suppression.

"Eternal provides unique invocation (response) identifiers that enable the
Replication Mechanisms to ensure that such duplicate invocations
(responses) from a replicated client (server) are never delivered to their
target server (client) objects" (paper §2.1).

An operation identifier is ``(connection, request_id, kind)``:

* the *connection* is the logical client-group → server-group link (all
  replicas of a client share it, which is what makes their copies of one
  invocation recognizable as duplicates);
* the *request_id* is the GIOP request id the client-side ORBs assigned —
  identical across replicas because deterministic replicas drive
  deterministic ORBs (and because Eternal re-aligns a recovered ORB's ids,
  §4.2.1);
* the *kind* distinguishes the invocation from its response.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Distinguishes an invocation from its response in operation ids."""

    REQUEST = 0
    REPLY = 1


@dataclass(frozen=True, order=True)
class ConnectionKey:
    """The logical connection between two object groups."""

    client_group: str
    server_group: str

    def as_str(self) -> str:
        return f"{self.client_group}->{self.server_group}"

    @classmethod
    def from_str(cls, text: str) -> "ConnectionKey":
        client_group, _, server_group = text.partition("->")
        return cls(client_group, server_group)


def invocation_trace_id(connection: ConnectionKey, request_id: int) -> str:
    """The end-to-end trace id of one invocation round trip.

    Derived from the connection and wire-level request id alone, so every
    observation point — the client-side request capture, each member's
    ring delivery, the server-side reply capture — computes the same id
    independently and the trace costs **zero wire bytes**: both inputs
    already travel in the envelope.
    """
    return f"op:{connection.as_str()}#{request_id}"


@dataclass(frozen=True, order=True)
class OperationId:
    """Unique identity of one invocation or one response."""

    connection: ConnectionKey
    request_id: int
    kind: OpKind

    def matching_reply(self) -> "OperationId":
        """The identifier of the response to this invocation."""
        return OperationId(self.connection, self.request_id, OpKind.REPLY)


class DuplicateFilter:
    """At-most-once delivery filter over operation identifiers.

    Request ids on a connection are consecutive, so the filter keeps a
    contiguous watermark plus a sparse overflow set per (connection, kind);
    the set stays tiny because duplicates arrive close together in the
    total order.
    """

    def __init__(self) -> None:
        self._watermark: dict = {}   # (conn, kind) -> highest contiguous id
        self._sparse: dict = {}      # (conn, kind) -> set of ids beyond it

    def seen_before(self, op: OperationId) -> bool:
        """Record ``op``; True if it was already delivered (a duplicate)."""
        key = (op.connection, op.kind)
        watermark = self._watermark.get(key, -1)
        if op.request_id <= watermark:
            return True
        sparse = self._sparse.setdefault(key, set())
        if op.request_id in sparse:
            return True
        sparse.add(op.request_id)
        while (watermark + 1) in sparse:
            watermark += 1
            sparse.discard(watermark)
        self._watermark[key] = watermark
        return False

    def merge(self, other: "DuplicateFilter") -> None:
        """Union another filter into this one.

        Used when adopting transferred infrastructure-level state: a warm
        backup (or recovering replica) must keep remembering duplicates it
        filtered locally after the state was captured at the source.
        """
        for key, mark in other._watermark.items():
            local_mark = self._watermark.get(key, -1)
            sparse = self._sparse.setdefault(key, set())
            if mark > local_mark:
                # ids (local_mark, mark] are covered by the other watermark
                sparse.difference_update(range(local_mark + 1, mark + 1))
                local_mark = mark
            sparse.update(
                i for i in other._sparse.get(key, ()) if i > local_mark
            )
            while (local_mark + 1) in sparse:
                local_mark += 1
                sparse.discard(local_mark)
            self._watermark[key] = local_mark
        for key, ids in other._sparse.items():
            if key not in self._watermark:
                local = self._sparse.setdefault(key, set())
                local.update(ids)

    def capture(self) -> dict:
        """Serializable snapshot (part of infrastructure-level state)."""
        return {
            "watermark": {
                f"{conn.as_str()}|{kind.value}": mark
                for (conn, kind), mark in self._watermark.items()
            },
            "sparse": {
                f"{conn.as_str()}|{kind.value}": sorted(ids)
                for (conn, kind), ids in self._sparse.items() if ids
            },
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "DuplicateFilter":
        """Rebuild a filter from :meth:`capture` output."""
        instance = cls()
        for key_text, mark in snapshot.get("watermark", {}).items():
            conn_text, _, kind_text = key_text.rpartition("|")
            key = (ConnectionKey.from_str(conn_text), OpKind(int(kind_text)))
            instance._watermark[key] = mark
        for key_text, ids in snapshot.get("sparse", {}).items():
            conn_text, _, kind_text = key_text.rpartition("|")
            key = (ConnectionKey.from_str(conn_text), OpKind(int(kind_text)))
            instance._sparse[key] = set(ids)
        return instance
