"""Per-node view of object-group membership and roles.

Every node maintains its own :class:`GroupInfo` per group, updated *only*
from totally-ordered events (group-administration envelopes from the
Replication Manager, state-transfer completions, and Totem view changes,
which virtual synchrony orders consistently against the message stream).
All nodes therefore transition their views identically, without any shared
global state — the property that makes failover decisions deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ftcorba.properties import ReplicationStyle

ROLE_ACTIVE = "active"
ROLE_PRIMARY = "primary"
ROLE_BACKUP = "backup"


@dataclass
class GroupInfo:
    """One node's knowledge of one object group."""

    group_id: str
    type_id: str
    style: ReplicationStyle
    checkpoint_interval: float
    app_version: int = 0
    fault_monitoring_interval: float = 0.05
    max_log_messages: int = 0
    roles: Dict[str, str] = field(default_factory=dict)
    operational: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def member_nodes(self) -> List[str]:
        return sorted(self.roles)

    @property
    def primary_node(self) -> Optional[str]:
        for node_id, role in self.roles.items():
            if role == ROLE_PRIMARY:
                return node_id
        return None

    def role_of(self, node_id: str) -> Optional[str]:
        return self.roles.get(node_id)

    def executes(self, node_id: str) -> bool:
        """Does this member execute (and reply to) normal invocations?"""
        role = self.roles.get(node_id)
        return role in (ROLE_ACTIVE, ROLE_PRIMARY)

    def responds_to_recovery(self, node_id: str) -> bool:
        """Does this member answer a recovery get_state()?

        Active: every operational replica (their fabricated set_states are
        duplicate-suppressed).  Passive: the primary alone has current state.
        """
        if node_id not in self.operational:
            return False
        return self.executes(node_id)

    def operational_nodes(self) -> List[str]:
        return sorted(self.operational)

    def surviving_backups(self, lost: Set[str]) -> List[str]:
        return sorted(
            n for n, role in self.roles.items()
            if role == ROLE_BACKUP and n not in lost
        )

    # ------------------------------------------------------------------
    # Transitions (driven by totally-ordered events only)
    # ------------------------------------------------------------------

    def add_member(self, node_id: str, role: str,
                   operational: bool = False) -> None:
        self.roles[node_id] = role
        if operational:
            self.operational.add(node_id)
        else:
            self.operational.discard(node_id)

    def remove_member(self, node_id: str) -> None:
        self.roles.pop(node_id, None)
        self.operational.discard(node_id)

    def mark_operational(self, node_id: str) -> None:
        if node_id in self.roles:
            self.operational.add(node_id)

    def promote(self, node_id: str) -> None:
        current = self.primary_node
        if current is not None and current != node_id:
            self.roles[current] = ROLE_BACKUP
        if node_id in self.roles:
            self.roles[node_id] = ROLE_PRIMARY

    def handle_node_loss(self, lost: Set[str]) -> Optional[str]:
        """Apply a view change that lost ``lost`` nodes.

        Removes lost members; if the primary was lost, deterministically
        selects and promotes the new primary (first surviving backup in
        node-id order) and returns it; otherwise returns None.
        """
        lost_primary = self.primary_node in lost if self.primary_node else False
        promoted: Optional[str] = None
        if lost_primary:
            candidates = self.surviving_backups(lost)
            if candidates:
                promoted = candidates[0]
        for node_id in lost:
            self.remove_member(node_id)
        if promoted is not None:
            self.promote(promoted)
        return promoted
