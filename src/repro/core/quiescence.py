"""Quiescence: when is it safe to deliver an invocation to an object?

"To decide on the appropriate time to deliver the get_state() invocation,
the Eternal system must determine the moment that the object is quiescent"
(paper §5).  The full machinery in Eternal inspects thread activity and
collocated objects; our replicas are single-threaded POA dispatchers, so
quiescence reduces to: the replica is not executing an operation and is not
blocked mid-logical-operation on nested invocations it issued.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class QuiescenceMonitor:
    """Tracks one replica's activity and fires callbacks at quiescence."""

    def __init__(self) -> None:
        self._busy_until: Optional[float] = None
        self._nested_outstanding = 0
        self._waiters: List[Callable[[], None]] = []

    # -- activity transitions ------------------------------------------------

    def begin_operation(self, until: float) -> None:
        self._busy_until = until

    def end_operation(self) -> None:
        self._busy_until = None
        self._maybe_notify()

    def nested_issued(self) -> None:
        """The replica issued a nested invocation mid-operation."""
        self._nested_outstanding += 1

    def nested_completed(self) -> None:
        if self._nested_outstanding > 0:
            self._nested_outstanding -= 1
        self._maybe_notify()

    # -- queries ----------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._busy_until is not None

    def is_quiescent(self) -> bool:
        return self._busy_until is None and self._nested_outstanding == 0

    # -- waiting -----------------------------------------------------------------

    def when_quiescent(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once quiescent (immediately if already)."""
        if self.is_quiescent():
            callback()
        else:
            self._waiters.append(callback)

    def _maybe_notify(self) -> None:
        if not self.is_quiescent():
            return
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback()
