"""ORB/POA-level state: discovery, capture, and restoration (paper §4.2).

The ORB offers no hooks for its per-connection state, but that state is
visible *from outside*, in the IIOP byte streams:

* the client-side **request_id counter** is discovered by parsing every
  outgoing request (§4.2.1, via :func:`repro.giop.messages.peek_request_id`);
* the **client-server handshake** is discovered by watching delivered
  requests for negotiation ServiceContexts; the whole handshake request
  message is stored so it can later be replayed into a new server replica's
  ORB "ahead of any other IIOP request from the client" (§4.2.2).

:meth:`OrbStateTracker.capture` produces the blob piggybacked onto the
fabricated ``set_state()``; restoration happens in
:mod:`repro.core.recovery` (offset installation in the Interceptor plus
handshake injection).
"""

from __future__ import annotations

from typing import Dict

from repro.core.identifiers import ConnectionKey
from repro.giop.messages import RequestMessage, decode_message
from repro.giop.service_context import (
    CODE_SETS_ID,
    VENDOR_HANDSHAKE_ID,
    find_context,
)
from repro.giop.types import encode_any, decode_any, to_any


class OrbStateTracker:
    """Per-replica observer of the ORB/POA-level state visible on the wire."""

    def __init__(self) -> None:
        # client side: last request_id seen leaving this replica's ORB
        # (wire values, i.e. after any interceptor rewrite)
        self.client_request_ids: Dict[ConnectionKey, int] = {}
        # server side: the stored handshake request per connection
        self.handshakes: Dict[ConnectionKey, bytes] = {}

    # -- observation ------------------------------------------------------

    def observe_outgoing_request(self, connection: ConnectionKey,
                                 wire_request_id: int) -> None:
        """Record the request_id of an outgoing request (client side)."""
        current = self.client_request_ids.get(connection, -1)
        if wire_request_id > current:
            self.client_request_ids[connection] = wire_request_id

    def observe_delivered_request(self, connection: ConnectionKey,
                                  iiop_bytes: bytes) -> None:
        """Watch a request delivered to the local server replica; store it
        if it carries the client-server handshake for a new connection."""
        if connection in self.handshakes:
            return
        message = decode_message(iiop_bytes)
        if not isinstance(message, RequestMessage):
            return
        contexts = list(message.service_contexts)
        if (find_context(contexts, VENDOR_HANDSHAKE_ID) is not None
                or find_context(contexts, CODE_SETS_ID) is not None):
            self.handshakes[connection] = iiop_bytes

    # -- capture / restore -------------------------------------------------

    def capture(self) -> bytes:
        """Serialize for piggybacking onto a fabricated set_state()."""
        payload = {
            "request_ids": {
                conn.as_str(): rid
                for conn, rid in self.client_request_ids.items()
            },
            "handshakes": {
                conn.as_str(): data
                for conn, data in self.handshakes.items()
            },
        }
        return encode_any(to_any(payload))

    @classmethod
    def decode(cls, blob: bytes) -> "OrbStateTracker":
        """Rebuild a tracker from :meth:`capture` output."""
        tracker = cls()
        if not blob:
            return tracker
        payload = decode_any(blob).value
        for conn_text, rid in payload.get("request_ids", {}).items():
            tracker.client_request_ids[ConnectionKey.from_str(conn_text)] = rid
        for conn_text, data in payload.get("handshakes", {}).items():
            tracker.handshakes[ConnectionKey.from_str(conn_text)] = data
        return tracker
