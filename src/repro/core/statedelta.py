"""Page-level delta encoding of Checkpointable state.

The paper's recovery and checkpoint costs (Figure 6, §3.3) are linear in
the *total* application state size because every fabricated ``set_state()``
ships the whole encoded state.  This module chunks the encoded state into
fixed-size pages with per-page digests so a responder can ship only the
pages that changed since a checkpoint both ends already share (identified
by the app-state digest logged in the
:class:`~repro.core.msglog.CheckpointRecord`).

A delta is valid only against the exact base snapshot named by its
``base_digest``; receivers that cannot produce that base fall back to a
full snapshot (see :mod:`repro.core.recovery`).  Reconstruction always
yields the byte-identical full state, so the consistency auditor's
cross-replica digest comparisons are unaffected by the wire encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple
from zlib import crc32

from repro.errors import StateTransferError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.obs.audit import state_digest

#: Default page size: small enough that a localized mutation dirties few
#: pages, large enough that the 8-byte-per-page wire overhead stays < 1 %.
PAGE_SIZE = 1024

#: Wire-format version of the encoded delta body (bump on layout change).
DELTA_BODY_VERSION = 1


class DeltaMismatch(StateTransferError):
    """The receiver's base snapshot does not match the delta's base."""


def split_pages(blob: bytes, page_size: int = PAGE_SIZE) -> List[bytes]:
    """Chunk ``blob`` into ``page_size``-byte pages (last may be short)."""
    if page_size < 1:
        raise ValueError(f"page_size must be positive, got {page_size}")
    return [blob[i:i + page_size] for i in range(0, len(blob), page_size)]


def page_digests(blob: bytes, page_size: int = PAGE_SIZE) -> List[int]:
    """Per-page CRC32 digests (integrity tags, not the diffing mechanism:
    deltas are computed by direct byte comparison against the base)."""
    return [crc32(page) for page in split_pages(blob, page_size)]


@dataclass(frozen=True)
class StateDelta:
    """Changed pages of a new snapshot relative to a shared base snapshot."""

    base_digest: str            # state_digest of the base snapshot
    new_digest: str             # state_digest of the reconstructed snapshot
    new_length: int             # total byte length of the new snapshot
    page_size: int
    pages: Tuple[Tuple[int, int, bytes], ...]   # (index, crc32, page bytes)

    @property
    def total_pages(self) -> int:
        """Page count of the full new snapshot."""
        if self.new_length <= 0:
            return 0
        return -(-self.new_length // self.page_size)

    @property
    def pages_sent(self) -> int:
        return len(self.pages)

    @property
    def pages_skipped(self) -> int:
        return self.total_pages - self.pages_sent


def compute_delta(base: bytes, new: bytes,
                  page_size: int = PAGE_SIZE) -> StateDelta:
    """Diff ``new`` against ``base`` page by page.

    Pages are compared by content; a page of the new snapshot is shipped iff
    it differs from the base page at the same index (or the base has no page
    there — the snapshot grew).
    """
    base_pages = split_pages(base, page_size)
    changed: List[Tuple[int, int, bytes]] = []
    for index, page in enumerate(split_pages(new, page_size)):
        if index < len(base_pages) and base_pages[index] == page:
            continue
        changed.append((index, crc32(page), page))
    return StateDelta(
        base_digest=state_digest(base),
        new_digest=state_digest(new),
        new_length=len(new),
        page_size=page_size,
        pages=tuple(changed),
    )


def apply_delta(base: bytes, delta: StateDelta) -> bytes:
    """Reconstruct the full new snapshot from ``base`` plus ``delta``.

    Raises :class:`DeltaMismatch` when ``base`` is not the snapshot the
    delta was computed against, or when reconstruction fails the delta's
    integrity digests.
    """
    if state_digest(base) != delta.base_digest:
        raise DeltaMismatch(
            f"base snapshot digest {state_digest(base)} does not match the "
            f"delta's base {delta.base_digest}"
        )
    pages = split_pages(base, delta.page_size)
    total = delta.total_pages
    del pages[total:]
    while len(pages) < total:
        pages.append(b"")
    for index, tag, page in delta.pages:
        if not 0 <= index < total:
            raise DeltaMismatch(f"delta page index {index} outside the "
                                f"{total}-page snapshot")
        if crc32(page) != tag:
            raise DeltaMismatch(f"delta page {index} failed its CRC")
        pages[index] = page
    new = b"".join(pages)[:delta.new_length]
    if len(new) < delta.new_length:
        # The snapshot grew into pages the delta did not carry.
        raise DeltaMismatch(
            f"reconstructed {len(new)} bytes, expected {delta.new_length}"
        )
    if state_digest(new) != delta.new_digest:
        raise DeltaMismatch("reconstructed snapshot failed the delta's "
                            "content digest")
    return new


def encode_delta(delta: StateDelta) -> bytes:
    """Serialize a delta as the versioned CDR body of a ``StateSet``."""
    out = CdrOutputStream()
    out.write_octet(DELTA_BODY_VERSION)
    out.write_string(delta.base_digest)
    out.write_string(delta.new_digest)
    out.write_ulong(delta.new_length)
    out.write_ulong(delta.page_size)
    out.write_ulong(len(delta.pages))
    for index, tag, page in delta.pages:
        out.write_ulong(index)
        out.write_ulong(tag)
        out.write_octets(page)
    return out.getvalue()


def decode_delta(data: bytes) -> StateDelta:
    """Inverse of :func:`encode_delta`.

    Raises :class:`StateTransferError` for any malformed body (including
    truncation surfacing from the CDR layer), so receivers have a single
    exception type to map onto the full-transfer fallback.
    """
    try:
        inp = CdrInputStream(data)
        version = inp.read_octet()
        if version != DELTA_BODY_VERSION:
            raise StateTransferError(f"unknown delta body version {version}")
        base_digest = inp.read_string()
        new_digest = inp.read_string()
        new_length = inp.read_ulong()
        page_size = inp.read_ulong()
        if page_size < 1:
            raise StateTransferError(f"bad delta page size {page_size}")
        count = inp.read_ulong()
        pages = tuple(
            (inp.read_ulong(), inp.read_ulong(), inp.read_octets())
            for _ in range(count)
        )
    except UnmarshalError as exc:
        raise StateTransferError(f"malformed delta body: {exc}") from exc
    return StateDelta(base_digest, new_digest, new_length, page_size, pages)
