"""Leader-lease read fast path (LLFT-style application-aware relaxation).

The paper's mechanisms put *every* IIOP message through Totem's total
order — correct, but a full token rotation per read is a steep price for
operations that cannot change state.  Following the Low Latency Fault
Tolerance line of work (application-supplied ordering metadata), servants
may declare operations ``read_only`` (:func:`repro.orb.servant.operation`),
and this coordinator serves those point-to-point:

* the client-side interceptor diverts a read-only request to the target
  group's **leaseholder** — the lowest operational executing member in the
  current Totem ring — instead of multicasting it;
* the leaseholder executes it on its local replica (through the ordinary
  container FIFO, so the read is serialized against the ordered writes
  that replica is applying) and unicasts the reply straight back;
* everything else — writes, passive-style groups, replicated clients,
  connections whose handshake has not been ordered yet — stays on the
  total order, and any doubt (ring change, lease guard failure, timeout)
  falls back to it.

**Why the lease is safe.**  The lease *is* ring membership, bounded by
Totem's failure detectors.  A leaseholder partitioned from the survivors
stops receiving the token and declares token loss after
``token_timeout``; the survivors need a full gather + two-pass commit
token (> ``gather_timeout`` after the same silence) before a new ring can
order a write.  With ``token_timeout`` comparable to ``gather_timeout``
(the shipped configs keep a wide margin), the stale leaseholder has
stopped serving reads — every guard below re-checks ``totem.operational``
and the installed ``ring_id`` — before the new ring is operational, so no
fast read can return a value that a write ordered in a newer ring has
already overwritten.  Within one ring, the leaseholder serves reads
through the same replica FIFO that applies delivered writes, so every
read reflects a prefix of the total order that includes all writes whose
replies have been delivered: linearizable for the single-client groups
the fast path is gated to.

The auditor (:mod:`repro.obs.audit`) shadows the same rule: every
``lease.read_served`` event must fall inside the serving node's installed
ring window (strict mode flags violations).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.envelope import IiopEnvelope
from repro.core.identifiers import ConnectionKey
from repro.giop.messages import ReplyMessage, decode_message
from repro.orb.servant import read_only_operations
from repro.runtime.interfaces import TimerHandle
from repro.totem.wire import (
    ReadFastNack,
    ReadFastReply,
    ReadFastRequest,
)

#: Client-side pending fast read: fallback timer + the captured envelope
#: (re-multicast through the total order if the fast path goes quiet).
_Fetch = Tuple[Optional[TimerHandle], IiopEnvelope]


class ReadFastCoordinator:
    """Per-node fast-read machinery, attached to the Replication
    Mechanisms (constructed only when ``EternalConfig.read_lease``)."""

    def __init__(self, mechanisms) -> None:
        self.mech = mechanisms
        self.totem = mechanisms.totem
        self.endpoint = mechanisms.endpoint
        self.process = mechanisms.process
        self.node_id = mechanisms.node_id
        self.config = mechanisms.config
        self.tracer = mechanisms.tracer
        # (connection, wire request_id) -> (fallback timer, envelope)
        self._pending_fetch: Dict[Tuple[ConnectionKey, int], _Fetch] = {}
        # (group, conn string, wire request_id) -> (requester, ring served)
        self._pending_serve: Dict[Tuple[str, str, int], Tuple[str, int]] = {}
        self.endpoint.register(ReadFastRequest, self._on_request)
        self.endpoint.register(ReadFastReply, self._on_reply)
        self.endpoint.register(ReadFastNack, self._on_nack)
        mechanisms.on_view_event(self._on_view_event)
        self.process.on_crash(self._on_crash)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def try_fast_read(self, connection: ConnectionKey, wire_id: int,
                      operation: str, envelope: IiopEnvelope) -> bool:
        """Interceptor hook: divert this captured request to the fast path?

        Returns True when the request was taken (sent to the leaseholder,
        fallback armed); False routes it through the total order as usual.
        """
        leaseholder = self._leaseholder_for(connection, operation)
        if leaseholder is None:
            return False
        request = ReadFastRequest(
            group_id=connection.server_group,
            conn=connection.as_str(),
            request_id=wire_id,
            requester=self.node_id,
            ring_id=self.totem.ring_id,
            iiop_bytes=envelope.iiop_bytes,
        )
        if request.size_bytes > self.endpoint.mtu_payload:
            return False
        timer = self.process.call_after(
            self.config.read_lease_timeout,
            self._fallback, connection, wire_id, "timeout",
        )
        self._pending_fetch[(connection, wire_id)] = (timer, envelope)
        self.tracer.emit("lease", "read_fast", node=self.node_id,
                         group=connection.server_group,
                         conn=connection.as_str(), request_id=wire_id,
                         leaseholder=leaseholder,
                         ring_id=self.totem.ring_id)
        self._send(leaseholder, request)
        return True

    def _leaseholder_for(self, connection: ConnectionKey,
                         operation: str) -> Optional[str]:
        """The node to ask, or None when any fast-path gate fails."""
        totem = self.totem
        if not totem.operational:
            return None
        info = self.mech.groups.get(connection.server_group)
        if info is None or info.style.is_passive:
            # Passive backups lag the primary by up to a checkpoint
            # interval; keep the whole group on the total order.
            return None
        if operation not in read_only_operations(info.type_id):
            return None
        client_info = self.mech.groups.get(connection.client_group)
        if client_info is None:
            return None
        client_executors = [n for n in client_info.operational_nodes()
                            if client_info.executes(n)]
        if client_executors != [self.node_id]:
            # A replicated client must see one reply stream through the
            # total order, or its replicas' last-result state diverges.
            return None
        candidates = [n for n in info.operational_nodes()
                      if info.executes(n) and n in totem.members]
        if not candidates:
            return None
        return min(candidates)

    def _fallback(self, connection: ConnectionKey, wire_id: int,
                  reason: str) -> None:
        """Give up on the fast path for one read: re-issue it through the
        total order (idempotent — the read may execute twice)."""
        entry = self._pending_fetch.pop((connection, wire_id), None)
        if entry is None:
            return
        timer, envelope = entry
        self.process.scheduler.cancel(timer)
        self.tracer.emit("lease", "fallback", node=self.node_id,
                         conn=connection.as_str(), request_id=wire_id,
                         reason=reason)
        self.mech.multicast(envelope)

    def _on_reply(self, src: str, msg: ReadFastReply) -> None:
        connection = ConnectionKey.from_str(msg.conn)
        entry = self._pending_fetch.pop((connection, msg.request_id), None)
        if entry is not None:
            self.process.scheduler.cancel(entry[0])
        binding = self.mech.bindings.get(connection.client_group)
        if binding is None:
            return
        # Deliver even when the fallback already fired: the ordered copy's
        # reply will be discarded by the ORB as already answered (reads
        # are idempotent), and answering now is strictly faster.
        self.tracer.emit("lease", "read_reply", node=self.node_id,
                         conn=msg.conn, request_id=msg.request_id,
                         served_by=src)
        binding.interceptor.note_reply_delivered(connection, msg.request_id)
        data = binding.interceptor.rewrite_incoming_reply(
            connection, bytes(msg.iiop_bytes))
        from repro.core.replication import IOR_PORT
        binding.container.submit_reply(connection.server_group, IOR_PORT,
                                       data)

    def _on_nack(self, src: str, msg: ReadFastNack) -> None:
        connection = ConnectionKey.from_str(msg.conn)
        self.tracer.emit("lease", "nack", node=self.node_id,
                         conn=msg.conn, request_id=msg.request_id,
                         reason=msg.reason)
        self._fallback(connection, msg.request_id, f"nack:{msg.reason}")

    # ------------------------------------------------------------------
    # Server (leaseholder) side
    # ------------------------------------------------------------------

    def _on_request(self, src: str, msg: ReadFastRequest) -> None:
        refusal = self._serve_refusal(msg)
        if refusal is not None:
            self.tracer.emit("lease", "refused", node=self.node_id,
                             group=msg.group_id, request_id=msg.request_id,
                             reason=refusal)
            self._send(msg.requester, ReadFastNack(
                group_id=msg.group_id, conn=msg.conn,
                request_id=msg.request_id, reason=refusal))
            return
        binding = self.mech.bindings[msg.group_id]
        connection = ConnectionKey.from_str(msg.conn)
        key = (msg.group_id, msg.conn, msg.request_id)
        self._pending_serve[key] = (msg.requester, self.totem.ring_id)
        self.tracer.emit("lease", "read_served", node=self.node_id,
                         group=msg.group_id, conn=msg.conn,
                         request_id=msg.request_id,
                         ring_id=self.totem.ring_id)
        # Through the ordinary container FIFO: the read executes after
        # every ordered write already submitted to this replica.
        binding.container.submit_request(connection, bytes(msg.iiop_bytes))

    def _serve_refusal(self, msg: ReadFastRequest) -> Optional[str]:
        """Why this node cannot serve the read, or None when it can."""
        totem = self.totem
        if not totem.operational or totem.ring_id != msg.ring_id:
            return "ring_changed"
        binding = self.mech.bindings.get(msg.group_id)
        info = self.mech.groups.get(msg.group_id)
        if binding is None or info is None or not binding.operational:
            return "not_operational"
        if info.style.is_passive or not info.executes(self.node_id):
            return "not_leaseholder"
        if any(seq > totem.delivered_aru for seq in totem._held):
            # Ordered traffic is in flight that this member has received
            # but not yet delivered — a read now might miss a write the
            # ring has already sequenced.
            return "delivery_gap"
        connection = ConnectionKey.from_str(msg.conn)
        if connection not in binding.orb_state.handshakes:
            # The connection's handshake must be ordered (and therefore
            # replayable to every replica) before any traffic bypasses
            # the total order (§4.2.2).
            return "no_handshake"
        return None

    def intercept_reply(self, binding, connection: ConnectionKey,
                        data: bytes) -> bool:
        """Called by the mechanisms for every locally produced reply,
        *before* it is captured for multicast.  Returns True when the
        reply answers a pending fast read and was routed point-to-point
        (the ordered capture must then be skipped)."""
        if not self._pending_serve:
            return False
        message = decode_message(data)
        if not isinstance(message, ReplyMessage):
            return False
        key = (binding.group_id, connection.as_str(), message.request_id)
        entry = self._pending_serve.pop(key, None)
        if entry is None:
            return False
        requester, served_ring = entry
        reply = ReadFastReply(
            group_id=binding.group_id, conn=connection.as_str(),
            request_id=message.request_id, ring_id=served_ring,
            iiop_bytes=data,
        )
        if (not self.totem.operational
                or self.totem.ring_id != served_ring
                or reply.size_bytes > self.endpoint.mtu_payload):
            # The ring moved while the read executed (lease revoked), or
            # the reply cannot travel in one frame: make the client fall
            # back to the total order instead of answering.
            self._send(requester, ReadFastNack(
                group_id=binding.group_id, conn=connection.as_str(),
                request_id=message.request_id, reason="stale_reply"))
            return True
        self._send(requester, reply)
        return True

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _send(self, dst: str, frame) -> None:
        """Point-to-point fast-path frame (loopback short-circuits)."""
        if dst == self.node_id:
            self.endpoint.deliver(self.node_id, frame)
            return
        self.endpoint.unicast(dst, frame, frame.size_bytes, oob=True)

    def _on_view_event(self, view, lost, joined) -> None:
        """Any ring transition revokes the lease: outstanding serves are
        dropped (their replies would be nacked as stale anyway) and
        outstanding fetches fall back to the total order immediately."""
        self._pending_serve.clear()
        for connection, wire_id in list(self._pending_fetch):
            self._fallback(connection, wire_id, "ring_change")

    def _on_crash(self) -> None:
        for timer, _envelope in self._pending_fetch.values():
            self.process.scheduler.cancel(timer)
        self._pending_fetch.clear()
        self._pending_serve.clear()
