"""The Eternal Replication Manager, Resource Manager and Evolution Manager.

"The Eternal Replication Manager replicates each application object
according to user-specified fault tolerance properties and distributes the
replicas across the system.  The Eternal Resource Manager monitors the
system resources, and maintains the initial and the minimum number of
replicas.  The Eternal Evolution Manager exploits object replication to
support upgrades to the CORBA application objects." (paper §2)

In Eternal these managers are themselves replicated CORBA object
collections; in this reproduction they run unreplicated on a designated
manager node (a documented simplification — see DESIGN.md).  Crucially they
act on the system *only* by multicasting totally-ordered
:class:`~repro.core.envelope.GroupUpdate` envelopes, so every node applies
membership changes at the same logical point in the message stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.envelope import GroupUpdate
from repro.core.groupinfo import ROLE_ACTIVE, ROLE_BACKUP, ROLE_PRIMARY
from repro.core.replication import ReplicationMechanisms
from repro.errors import ObjectGroupError
from repro.ftcorba.fault_notifier import FaultNotifier, FaultReport
from repro.ftcorba.generic_factory import FactoryRegistry
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.totem.member import View


@dataclass
class ManagedGroup:
    """The Replication Manager's record of one group it administers."""

    group_id: str
    type_id: str
    properties: FTProperties
    app_version: int = 0
    assignments: Dict[str, str] = field(default_factory=dict)  # node -> role
    pending_replicas: int = 0          # replicas awaiting a usable node


class ResourceManager:
    """Tracks node liveness/load and places replicas."""

    def __init__(self, factories: FactoryRegistry) -> None:
        self._factories = factories
        self._alive: Set[str] = set()
        self._load: Dict[str, int] = {}

    def set_alive(self, nodes: Set[str]) -> None:
        self._alive = set(nodes)

    @property
    def alive_nodes(self) -> Set[str]:
        return set(self._alive)

    def note_placed(self, node_id: str) -> None:
        self._load[node_id] = self._load.get(node_id, 0) + 1

    def note_removed(self, node_id: str) -> None:
        if self._load.get(node_id, 0) > 0:
            self._load[node_id] -= 1

    def load_of(self, node_id: str) -> int:
        return self._load.get(node_id, 0)

    def pick_node(self, type_id: str, version: int,
                  exclude: Set[str]) -> Optional[str]:
        """Least-loaded alive node that can host (type, version) and is not
        excluded; ties break on node id for determinism."""
        candidates = [
            n for n in self._factories.nodes_supporting(type_id, version)
            if n in self._alive and n not in exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (self._load.get(n, 0), n))


class ReplicationManager:
    """Creates object groups and maintains their replica counts."""

    def __init__(
        self,
        mechanisms: ReplicationMechanisms,
        factories: FactoryRegistry,
        resource_manager: Optional[ResourceManager] = None,
        fault_notifier: Optional[FaultNotifier] = None,
    ) -> None:
        self.mechanisms = mechanisms
        self.factories = factories
        self.resources = resource_manager or ResourceManager(factories)
        self.notifier = fault_notifier or FaultNotifier()
        self.groups: Dict[str, ManagedGroup] = {}
        self._node_incarnations: Dict[str, int] = {}
        mechanisms.on_view_event(self._on_view_event)
        mechanisms.on_member_operational(self._on_member_operational)
        mechanisms.on_replica_fault(self._on_replica_fault)
        mechanisms.on_node_restarted(self._on_node_restarted)
        mechanisms.on_cold_seed(self._on_cold_seed)
        self.resources.set_alive({mechanisms.node_id})

    # ------------------------------------------------------------------
    # Group creation
    # ------------------------------------------------------------------

    def create_group(
        self,
        group_id: str,
        type_id: str,
        properties: FTProperties,
        nodes: Optional[List[str]] = None,
    ) -> ManagedGroup:
        """Deploy a new object group; returns its management record.

        ``nodes`` pins placement; otherwise the Resource Manager picks the
        ``initial_replicas`` least-loaded capable nodes.
        """
        if group_id in self.groups:
            raise ObjectGroupError(f"group {group_id!r} already exists")
        if nodes is None:
            nodes = []
            exclude: Set[str] = set()
            for _ in range(properties.initial_replicas):
                node = self.resources.pick_node(type_id, 0, exclude)
                if node is None:
                    break
                nodes.append(node)
                exclude.add(node)
                self.resources.note_placed(node)
        else:
            for node in nodes:
                self.resources.note_placed(node)
        if len(nodes) < properties.min_replicas:
            raise ObjectGroupError(
                f"cannot place {properties.min_replicas} replicas of "
                f"{type_id!r}: only {len(nodes)} capable nodes"
            )
        managed = ManagedGroup(group_id, type_id, properties)
        managed.pending_replicas = properties.initial_replicas - len(nodes)
        for index, node in enumerate(nodes):
            managed.assignments[node] = self._role_for(properties, index == 0)
        self.groups[group_id] = managed
        self._multicast_update(managed, action="create")
        return managed

    @staticmethod
    def _role_for(properties: FTProperties, first: bool) -> str:
        if properties.replication_style is ReplicationStyle.ACTIVE:
            return ROLE_ACTIVE
        return ROLE_PRIMARY if first else ROLE_BACKUP

    def _multicast_update(self, managed: ManagedGroup, *, action: str,
                          subject_node: str = "") -> None:
        info = self.mechanisms.groups.get(managed.group_id)
        operational = info.operational if info else set()
        members = tuple(
            (node, role,
             node in operational or action == "create")
            for node, role in sorted(managed.assignments.items())
        )
        self.mechanisms.multicast(GroupUpdate(
            group_id=managed.group_id,
            type_id=managed.type_id,
            style=managed.properties.replication_style.value,
            checkpoint_interval=managed.properties.checkpoint_interval,
            app_version=managed.app_version,
            members=members,
            action=action,
            subject_node=subject_node,
            fault_monitoring_interval=
                managed.properties.fault_monitoring_interval,
            max_log_messages=managed.properties.max_log_messages,
        ))

    # ------------------------------------------------------------------
    # Membership maintenance
    # ------------------------------------------------------------------

    def add_member(self, group_id: str, node_id: str,
                   role: Optional[str] = None) -> None:
        """Add a replica on ``node_id``; it will recover via state transfer."""
        managed = self._managed(group_id)
        if node_id in managed.assignments:
            raise ObjectGroupError(
                f"{node_id} already hosts a member of {group_id}"
            )
        if role is None:
            style = managed.properties.replication_style
            if style is ReplicationStyle.ACTIVE:
                role = ROLE_ACTIVE
            else:
                has_primary = ROLE_PRIMARY in managed.assignments.values()
                role = ROLE_BACKUP if has_primary else ROLE_PRIMARY
        managed.assignments[node_id] = role
        self.resources.note_placed(node_id)
        self._multicast_update(managed, action="add", subject_node=node_id)

    def remove_member(self, group_id: str, node_id: str) -> None:
        """Administratively remove a replica (also used by Evolution)."""
        managed = self._managed(group_id)
        if node_id not in managed.assignments:
            raise ObjectGroupError(f"{node_id} hosts no member of {group_id}")
        del managed.assignments[node_id]
        self.resources.note_removed(node_id)
        self._promote_if_needed(managed)
        self._multicast_update(managed, action="remove", subject_node=node_id)

    def _promote_if_needed(self, managed: ManagedGroup) -> None:
        style = managed.properties.replication_style
        if style is ReplicationStyle.ACTIVE or not managed.assignments:
            return
        if ROLE_PRIMARY not in managed.assignments.values():
            backups = sorted(n for n, r in managed.assignments.items()
                             if r == ROLE_BACKUP)
            if backups:
                managed.assignments[backups[0]] = ROLE_PRIMARY

    def _managed(self, group_id: str) -> ManagedGroup:
        managed = self.groups.get(group_id)
        if managed is None:
            raise ObjectGroupError(f"unknown group {group_id!r}")
        return managed

    # ------------------------------------------------------------------
    # Fault handling (view changes are the fault detector)
    # ------------------------------------------------------------------

    def _on_view_event(self, view: View, lost: Set[str],
                       joined: Set[str]) -> None:
        self.resources.set_alive(set(view.members))
        now = self.mechanisms.process.scheduler.now
        for node_id in sorted(lost):
            self.notifier.push_fault(FaultReport(now, node_id))
            self._handle_node_loss(node_id)
        # Joins trigger no placement here: every (re)built stack announces
        # itself with a NodeRestarted envelope, which is the single ordered
        # trigger for placement (see _on_node_restarted) — reacting to the
        # raw view join as well would race with that announcement.

    def _handle_node_loss(self, node_id: str) -> None:
        for managed in self.groups.values():
            if node_id not in managed.assignments:
                continue
            del managed.assignments[node_id]
            self.resources.note_removed(node_id)
            self._promote_if_needed(managed)
            self._multicast_update(managed, action="sync")
            self._restore_replica_count(managed)

    def _restore_replica_count(self, managed: ManagedGroup) -> None:
        missing = (managed.properties.initial_replicas
                   - len(managed.assignments))
        for _ in range(max(0, missing)):
            node = self.resources.pick_node(
                managed.type_id, managed.app_version,
                exclude=set(managed.assignments),
            )
            if node is None:
                managed.pending_replicas += 1
                continue
            self.add_member(managed.group_id, node)
        managed.pending_replicas = max(
            0, managed.properties.initial_replicas - len(managed.assignments)
        )

    def _place_pending(self, joined: List[str]) -> None:
        for managed in self.groups.values():
            while managed.pending_replicas > 0:
                node = self.resources.pick_node(
                    managed.type_id, managed.app_version,
                    exclude=set(managed.assignments),
                )
                if node is None:
                    break
                managed.pending_replicas -= 1
                self.add_member(managed.group_id, node)

    def _on_member_operational(self, group_id: str, node_id: str) -> None:
        # Hook point for observers; the manager itself needs no action —
        # operational marks propagate via the StateSet deliveries.
        pass

    def _on_node_restarted(self, envelope) -> None:
        """A node's stack (re)launched (possibly without ever leaving the
        ring): any members of the previous incarnation are gone — drop
        them and re-place, preferring the freshly returned node.

        Incarnation 0 (first boot) never drops: nothing could have been
        placed on a previous life, and the initial nodes' boot
        announcements may be ordered after the first group creations.
        """
        now = self.mechanisms.process.scheduler.now
        last_seen = self._node_incarnations.get(envelope.node_id, 0)
        if envelope.incarnation > 0 and envelope.incarnation > last_seen:
            had_members = any(envelope.node_id in managed.assignments
                              for managed in self.groups.values())
            if had_members:
                self.notifier.push_fault(FaultReport(now, envelope.node_id,
                                                     reason="restart"))
                self._handle_node_loss(envelope.node_id)
        self._node_incarnations[envelope.node_id] = max(
            envelope.incarnation, last_seen
        )
        self._place_pending([envelope.node_id])

    def _on_cold_seed(self, group_id: str, node_id: str) -> None:
        """A cold-boot seed elected itself from its durable journal — no
        live replica existed to recover from (see
        :meth:`repro.core.recovery.RecoveryMechanisms.handle_cold_seed`).
        Adopt the promotion into the management record; otherwise the next
        membership multicast would revert the seed to a backup."""
        managed = self.groups.get(group_id)
        if managed is None or node_id not in managed.assignments:
            return
        if managed.properties.replication_style is ReplicationStyle.ACTIVE:
            return
        for node, role in managed.assignments.items():
            if role == ROLE_PRIMARY and node != node_id:
                managed.assignments[node] = ROLE_BACKUP
        managed.assignments[node_id] = ROLE_PRIMARY

    def _on_replica_fault(self, fault) -> None:
        """A pull-monitor reported a hung replica on a live node: drop the
        member and restore the replica count (possibly on the same node —
        the process is healthy, only the replica object was faulty)."""
        managed = self.groups.get(fault.group_id)
        if managed is None or fault.node_id not in managed.assignments:
            return
        now = self.mechanisms.process.scheduler.now
        self.notifier.push_fault(FaultReport(
            now, fault.node_id, group_id=fault.group_id,
            reason=fault.reason,
        ))
        del managed.assignments[fault.node_id]
        self.resources.note_removed(fault.node_id)
        self._promote_if_needed(managed)
        self._multicast_update(managed, action="sync")
        self._restore_replica_count(managed)


class EvolutionManager:
    """Rolling upgrade of a replicated object to a new implementation
    version, exploiting replication: each replica is replaced in turn, and
    the recovery protocol transfers the (surviving replicas') state into
    the upgraded implementation (§2)."""

    def __init__(self, replication_manager: ReplicationManager) -> None:
        self.rm = replication_manager
        self.mechanisms = replication_manager.mechanisms
        self._active_upgrades: Dict[str, "._Upgrade"] = {}
        self.mechanisms.on_member_operational(self._on_member_operational)

    def upgrade(self, group_id: str, new_version: int,
                on_complete: Optional[Callable[[], None]] = None) -> None:
        """Begin a rolling upgrade of ``group_id`` to ``new_version``."""
        managed = self.rm._managed(group_id)
        if group_id in self._active_upgrades:
            raise ObjectGroupError(f"upgrade of {group_id!r} in progress")
        if len(managed.assignments) < 2:
            raise ObjectGroupError(
                "rolling upgrade requires at least 2 replicas (state must "
                "survive in an old replica while each node is replaced)"
            )
        plan = sorted(managed.assignments)
        upgrade = _Upgrade(group_id, new_version, plan, on_complete)
        self._active_upgrades[group_id] = upgrade
        # From here on, any replica created for this group (including fault
        # replacements) is built at the new version; the new implementation's
        # set_state() must accept the old implementation's state (the
        # application's migration contract).
        managed.app_version = new_version
        self._advance(upgrade)

    def _advance(self, upgrade: "_Upgrade") -> None:
        managed = self.rm._managed(upgrade.group_id)
        if not upgrade.remaining:
            del self._active_upgrades[upgrade.group_id]
            if upgrade.on_complete is not None:
                upgrade.on_complete()
            return
        node = upgrade.remaining[0]
        while node not in managed.assignments:
            # The node fell out (crashed) since the plan was made; skip it.
            upgrade.remaining.pop(0)
            if not upgrade.remaining:
                self._advance(upgrade)
                return
            node = upgrade.remaining[0]
        upgrade.waiting_for = node
        role = managed.assignments.get(node)
        self.rm.remove_member(upgrade.group_id, node)
        # Re-add at the new version; recovery pulls state from the old ones.
        self.rm.add_member(upgrade.group_id, node, role=role)

    def _on_member_operational(self, group_id: str, node_id: str) -> None:
        upgrade = self._active_upgrades.get(group_id)
        if upgrade is None or upgrade.waiting_for != node_id:
            return
        upgrade.remaining.pop(0)
        upgrade.waiting_for = None
        self._advance(upgrade)


class _Upgrade:
    """Book-keeping for one rolling upgrade."""

    def __init__(self, group_id: str, new_version: int, plan: List[str],
                 on_complete: Optional[Callable[[], None]]) -> None:
        self.group_id = group_id
        self.new_version = new_version
        self.remaining = list(plan)
        self.waiting_for: Optional[str] = None
        self.on_complete = on_complete
