"""Substrate-independent assembly of an Eternal deployment.

:class:`SystemCore` wires one protocol stack per node (host → transport →
Totem ring member → Replication/Recovery Mechanisms) plus the managers on
a designated manager node, without committing to a substrate.  Two
subclasses provide the world the stacks run in:

* :class:`repro.simnet.system.EternalSystem` — the deterministic
  discrete-event simulator (re-exported here for compatibility);
* :class:`repro.live.system.LiveSystem` — asyncio over real UDP sockets
  and the wall clock.

Typical use::

    system = EternalSystem(["n1", "n2", "n3"])
    system.register_factory("IDL:Counter:1.0", CounterServant)
    group = system.create_group("counter", "IDL:Counter:1.0",
                                FTProperties(initial_replicas=2))
    system.run_for(0.05)              # let the ring form and deploy
    ...
    system.kill_node("n2")            # fault injection
    system.restart_node("n2")         # re-launch; recovery synchronizes it
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import EternalConfig
from repro.core.managers import (
    EvolutionManager,
    ReplicationManager,
    ResourceManager,
)
from repro.core.replication import ReplicationMechanisms
from repro.errors import SimulationError, UnknownNode
from repro.ftcorba.fault_notifier import FaultNotifier
from repro.ftcorba.generic_factory import FactoryRegistry
from repro.ftcorba.properties import FTProperties
from repro.giop.ior import IOR
from repro.obs.exporters import export_chrome_trace, export_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import ProfilingConfig, SpanResourceProfiler
from repro.obs.telemetry import TelemetryConfig, TelemetryPlane
from repro.runtime.interfaces import Host, Transport
from repro.runtime.trace import Tracer
from repro.store.base import DurableStore
from repro.totem.config import TotemConfig
from repro.totem.member import TotemMember


@dataclass(frozen=True)
class SharedObservability:
    """One observability plane shared by the rings of a sharded facade.

    A multi-ring deployment runs one tracer, one metrics registry, one
    telemetry plane, and one profiler for the whole cluster; each ring's
    :class:`SystemCore` adopts the bundle (scoping its tracer view with
    ``ring=<name>``) instead of constructing its own.  The facade owns
    the bundle's lifecycle: clock binding, sampler start, teardown.
    """

    tracer: Tracer
    metrics: MetricsRegistry
    telemetry: TelemetryPlane
    profiler: SpanResourceProfiler


class NodeStack:
    """One node's live protocol stack (rebuilt from scratch on restart)."""

    def __init__(self, system: "SystemCore", process: Host) -> None:
        self.system = system
        self.process = process
        self.endpoint: Optional[Transport] = None
        self.totem: Optional[TotemMember] = None
        self.mechanisms: Optional[ReplicationMechanisms] = None
        self.build()
        process.on_restart(self.build)

    @property
    def node_id(self) -> str:
        return self.process.node_id

    def build(self) -> None:
        """(Re)construct the stack: a fresh transport, a fresh ring member
        (which joins the ring as a history-less member), and fresh empty
        mechanisms.  Replica re-placement is the Replication Manager's job."""
        system = self.system
        first_build = self.mechanisms is None
        self.endpoint = system._make_transport(self.process)
        self.totem = TotemMember(
            self.endpoint, system.totem_config,
            on_deliver=lambda origin, payload: None,   # mechanisms rebind
            tracer=system.tracer,
        )
        self.mechanisms = ReplicationMechanisms(
            self.totem,
            system.factories.factory_for(self.node_id),
            system.eternal_config,
            announce_epoch=(0 if first_build
                            else self.process.next_announce_epoch()),
            tracer=system.tracer,
            # The store outlives the stack, like a disk outlives a process:
            # cached at the system level, re-adopted on every rebuild.
            store=system._store_for(self.node_id),
        )
        if system.gateway_port is not None:
            # Sharded deployment: re-install the cross-ring gateway port on
            # every rebuild, so a restarted node resumes forwarding duty.
            self.mechanisms.gateway = system.gateway_port
        if self.node_id == system.manager_node:
            system._attach_managers(self.mechanisms)


class GroupHandle:
    """Convenience handle over one deployed object group."""

    def __init__(self, system: "SystemCore", group_id: str) -> None:
        self.system = system
        self.group_id = group_id

    def iogr(self) -> IOR:
        """The group's published reference (clients connect to this)."""
        info = self._info()
        from repro.ftcorba.object_group import GROUP_PORT
        from repro.orb.objectkey import make_key
        return IOR(
            type_id=info.type_id,
            host=self.group_id,
            port=GROUP_PORT,
            object_key=make_key("RootPOA", self.group_id.encode("ascii")),
        )

    def _info(self):
        for stack in self.system.stacks.values():
            if not stack.process.alive or stack.mechanisms is None:
                continue
            info = stack.mechanisms.groups.get(self.group_id)
            if info is not None:
                return info
        raise SimulationError(f"no live node knows group {self.group_id!r}")

    def operational_nodes(self) -> List[str]:
        return self._info().operational_nodes()

    def member_nodes(self) -> List[str]:
        return self._info().member_nodes

    def primary_node(self) -> Optional[str]:
        return self._info().primary_node

    def is_operational_on(self, node_id: str) -> bool:
        stack = self.system.stacks[node_id]
        if not stack.process.alive or stack.mechanisms is None:
            return False
        binding = stack.mechanisms.bindings.get(self.group_id)
        return binding is not None and binding.operational

    def servant_on(self, node_id: str):
        """The live servant instance on a node (test/bench introspection)."""
        stack = self.system.stacks[node_id]
        binding = stack.mechanisms.bindings.get(self.group_id)
        return binding.container.servant if binding else None

    def binding_on(self, node_id: str):
        stack = self.system.stacks[node_id]
        return stack.mechanisms.bindings.get(self.group_id)

    def connect_from(self, node_id: str):
        """A proxy to this group from a replica container hosted on
        ``node_id`` (any group's container on that node works — the proxy
        rides its ORB and Interceptor, so the invocations are ordered and
        deduplicated like all application traffic).

        Convenience for tests and interactive exploration; applications
        normally connect from inside their servants via
        ``self._eternal_container.connect(ior)``.
        """
        stack = self.system.stacks[node_id]
        for binding in stack.mechanisms.bindings.values():
            if binding.container.instantiated:
                return binding.container.connect(self.iogr())
        raise SimulationError(
            f"no instantiated replica container on {node_id!r} to "
            f"connect from"
        )


class SystemCore:
    """A complete deployment of the Eternal system over some substrate.

    Subclasses own the substrate (clock, hosts, transports, fault
    injection) and call :meth:`_init_core` then :meth:`_add_stack` per
    node; everything else — deployment, group handles, introspection,
    trace export — is shared.
    """

    # Subclasses must define: ``now`` (property), ``_make_transport``,
    # ``kill_node``, ``restart_node``, and a way to advance time
    # (``run_for``/``wait_for`` — synchronous in the simulator, ``async``
    # in the live runtime).

    def _init_core(
        self,
        node_ids: List[str],
        *,
        totem_config: Optional[TotemConfig],
        eternal_config: Optional[EternalConfig],
        manager_node: Optional[str],
        keep_trace_records: bool,
        telemetry: Optional[TelemetryConfig] = None,
        profiling: Optional[ProfilingConfig] = None,
        store_factory: Optional[Callable[[str], "DurableStore"]] = None,
        shared_observability: Optional[SharedObservability] = None,
        ring_name: str = "",
    ) -> None:
        if not node_ids:
            raise SimulationError("need at least one node")
        #: Shard identity of this (sub-)system in a multi-ring deployment
        #: ("" for the classic single-ring case); health/top group per-ring
        #: stats by it via ``stack.system.ring_name``.
        self.ring_name = ring_name
        if shared_observability is not None:
            # A ring of a sharded facade: adopt the facade's plane.  The
            # scoped tracer stamps every record with this ring's name;
            # clock binding, sampler start, and teardown stay with the
            # facade, which owns the bundle.
            shared = shared_observability
            self.tracer = (shared.tracer.scoped(ring=ring_name)
                           if ring_name else shared.tracer)
            self.metrics = shared.metrics
            self.telemetry = shared.telemetry
            self.profiler = shared.profiler
        else:
            self.tracer = Tracer(keep_records=keep_trace_records)
            self.tracer.bind_clock(lambda: self.now)
            # The metrics registry rides the trace stream: every completed
            # span becomes a latency sample, with or without record
            # retention.
            self.metrics = MetricsRegistry()
            self.metrics.bind(self.tracer)
            # The telemetry plane (flight recorder + metrics history) rides
            # the same stream; the subclass constructor sets
            # ``self.scheduler`` before calling _init_core, so the sampler
            # can start immediately.
            self.telemetry = TelemetryPlane(
                telemetry or TelemetryConfig(),
                tracer=self.tracer, metrics=self.metrics,
                clock=lambda: self.now,
            )
            self.telemetry.bind_system(self)
            if self.telemetry.enabled:
                self.telemetry.start_sampler(self.scheduler)
            # Span-scoped resource attribution (CPU/alloc per phase) is a
            # third subscriber on the same stream; inert — never
            # subscribed — unless its config enables it, so the default
            # hot path pays nothing.
            self.profiler = SpanResourceProfiler(
                profiling or ProfilingConfig(), metrics=self.metrics,
            ).attach(self.tracer)
        self.totem_config = totem_config or TotemConfig()
        self.eternal_config = eternal_config or EternalConfig()
        self.factories = FactoryRegistry()
        self.manager_node = manager_node or node_ids[0]
        self.fault_notifier = FaultNotifier()
        self.replication_manager: Optional[ReplicationManager] = None
        self.evolution_manager: Optional[EvolutionManager] = None
        self.resource_manager = ResourceManager(self.factories)
        self.auditor = None    # set by attach_auditor()
        # Cross-ring gateway port (sharded facades set this right after
        # construction; NodeStack.build installs it on every mechanisms
        # instance, including rebuilds after a restart).
        self.gateway_port = None
        # Durable stores persist at the system level — a node's journal
        # survives any number of kill/restart cycles of its process, the
        # way a disk survives a power cycle.  ``store_factory(node_id)``
        # creates one per node lazily; None means fully volatile (the
        # pre-store behaviour).
        self.store_factory = store_factory
        self.stores: Dict[str, "DurableStore"] = {}
        self.stacks: Dict[str, NodeStack] = {}

    def _add_stack(self, process: Host) -> NodeStack:
        stack = NodeStack(self, process)
        self.stacks[process.node_id] = stack
        return stack

    def _store_for(self, node_id: str) -> Optional["DurableStore"]:
        if self.store_factory is None:
            return None
        store = self.stores.get(node_id)
        if store is None:
            store = self.store_factory(node_id)
            store.bind_tracer(self.tracer, node_id)
            self.stores[node_id] = store
        return store

    def close_stores(self) -> None:
        for store in self.stores.values():
            store.close()

    def _make_transport(self, process: Host) -> Transport:
        """Build the substrate's transport for one host (called on every
        stack build, including rebuilds after a restart)."""
        raise NotImplementedError

    def _attach_managers(self, mechanisms: ReplicationMechanisms) -> None:
        """(Re)bind the managers to the manager node's current stack."""
        previous = self.replication_manager
        self.replication_manager = ReplicationManager(
            mechanisms, self.factories, self.resource_manager,
            self.fault_notifier,
        )
        if previous is not None:
            self.replication_manager.groups = previous.groups
        self.evolution_manager = EvolutionManager(self.replication_manager)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def register_factory(self, type_id: str, factory: Callable,
                         *, version: int = 0,
                         nodes: Optional[List[str]] = None) -> None:
        """Make ``factory`` available for creating replicas of ``type_id``
        (on all nodes by default)."""
        target_nodes = nodes if nodes is not None else list(self.stacks)
        self.factories.register_everywhere(target_nodes, type_id, factory,
                                           version)

    def create_group(self, group_id: str, type_id: str,
                     properties: Optional[FTProperties] = None,
                     nodes: Optional[List[str]] = None) -> GroupHandle:
        """Deploy a replicated object group; returns its handle.

        The deployment becomes effective when the GroupUpdate envelope is
        delivered (let the system run briefly)."""
        self.replication_manager.create_group(
            group_id, type_id, properties or FTProperties(), nodes
        )
        return GroupHandle(self, group_id)

    # ------------------------------------------------------------------
    # Time and faults (substrate-specific)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        raise NotImplementedError

    def kill_node(self, node_id: str) -> None:
        raise NotImplementedError

    def restart_node(self, node_id: str) -> None:
        raise NotImplementedError

    def hang_replica(self, group_id: str, node_id: str) -> None:
        """Inject a replica-hang fault: the servant stops completing
        operations while its process stays alive.  Detected by the
        pull-based fault monitor at the group's fault monitoring interval."""
        binding = self.stack(node_id).mechanisms.bindings.get(group_id)
        if binding is None or binding.container.servant is None:
            raise SimulationError(
                f"no live replica of {group_id!r} on {node_id!r}"
            )
        binding.container.servant._hung_for_test = True
        self.tracer.emit("fault", "replica_hang", node=node_id,
                         group=group_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def attach_auditor(self, auditor=None):
        """Subscribe an online consistency auditor to this system's trace
        stream (see :mod:`repro.obs.audit`).  Creates one bound to the
        system's metrics registry unless an instance is supplied."""
        if auditor is None:
            from repro.obs.audit import ConsistencyAuditor
            auditor = ConsistencyAuditor(metrics=self.metrics)
        self.auditor = auditor.bind(self.tracer)
        if self.telemetry.enabled:
            # A consistency violation is exactly when the recent past
            # matters: findings trigger a flight-recorder dump.
            self.auditor.on_finding = self.telemetry.flight.record_finding
        return self.auditor

    def stack(self, node_id: str) -> NodeStack:
        try:
            return self.stacks[node_id]
        except KeyError:
            raise UnknownNode(node_id) from None

    def mechanisms(self, node_id: str) -> ReplicationMechanisms:
        return self.stack(node_id).mechanisms

    def export_trace(self, path: str, *, fmt: str = "chrome") -> int:
        """Export the retained trace to ``path``.

        ``fmt="chrome"`` writes Chrome ``trace_event`` JSON (open in
        ``chrome://tracing`` or Perfetto); ``fmt="jsonl"`` writes one JSON
        object per record.  Returns the number of events/records written
        (requires the system to have been built with
        ``keep_trace_records=True``).
        """
        if fmt == "chrome":
            return export_chrome_trace(self.tracer.records, path)
        if fmt == "jsonl":
            return export_jsonl(self.tracer.records, path)
        raise ValueError(f"unknown trace format {fmt!r}")

    def ring_formed(self) -> bool:
        """True when every live node's ring member is operational in the
        same view."""
        live = [s for s in self.stacks.values() if s.process.alive]
        if not live:
            return False
        views = {s.totem.ring_id for s in live}
        return (len(views) == 1
                and all(s.totem.operational for s in live)
                and all(set(s.totem.members) ==
                        {t.node_id for t in live} for s in live))


def __getattr__(name):
    # Lazy re-export: EternalSystem moved to repro.simnet.system, but a lot
    # of call sites (and the strict_audit fixture) import it from here.
    # Importing it eagerly would be circular (simnet.system imports this
    # module), hence PEP 562.
    if name == "EternalSystem":
        from repro.simnet.system import EternalSystem
        return EternalSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
