"""Tunables of the Eternal mechanisms (and ablation switches).

The two ``sync_*`` flags exist for the ablation benchmarks: disabling them
reproduces the failure modes the paper uses to motivate ORB/POA-level state
synchronization (Figure 4's request_id mismatch, §4.2.2's lost handshake).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EternalConfig:
    """Per-deployment mechanism parameters."""

    reply_processing_delay: float = 10e-6
    """Simulated client-side cost of processing one delivered reply."""

    state_capture_bps: float = 400e6
    """Simulated get_state/set_state serialization rate (bytes/second):
    capturing or assigning S bytes of state costs S / rate seconds of
    replica CPU time, in addition to the operation's base duration."""

    cold_start_delay: float = 0.020
    """Simulated process-launch time for a cold-passive backup."""

    recovery_retry_timeout: float = 1.0
    """A joining replica re-announces itself if not synchronized in time."""

    sync_orb_request_ids: bool = True
    """Transfer and re-align GIOP request_id counters during recovery
    (§4.2.1).  Disabling reproduces Figure 4's inconsistency."""

    sync_handshake: bool = True
    """Store and replay the client-server handshake message into a new
    server replica's ORB (§4.2.2).  Disabling reproduces the discarded
    requests failure."""

    sync_infra_state: bool = True
    """Piggyback infrastructure-level state (duplicate filters, outstanding
    invocations) during recovery (§4.3)."""

    delta_state_transfer: bool = True
    """Ship ``set_state()`` bodies as page-level deltas against the
    receiver's last committed checkpoint whenever both ends share the base
    (negotiated by checkpoint digest); fall back to the full snapshot
    otherwise.  Disabling restores the paper's always-full transfers
    (checkpoint cost linear in total state size)."""

    delta_page_size: int = 1024
    """Page granularity of delta state transfer (bytes)."""

    bulk_lane: bool = True
    """Move large recovery state transfers out of the Totem total order:
    the fabricated ``set_state()`` carries only a page manifest (per-page
    CRCs plus the whole-state digest) and the pages themselves travel
    point-to-point over the transport's out-of-band unicast lane, striped
    across all up-to-date replicas.  The paper's atomic assignment is
    preserved — state is applied only at the sync point, and only after
    every page verifies against the in-order digest.  Disabling restores
    the paper's fully in-order transfers (recovery latency linear in
    state size, Figure 6)."""

    bulk_min_bytes: int = 64 * 1024
    """Smallest full-snapshot recovery transfer that engages the bulk
    lane; smaller states (and page deltas) stay in the total order, where
    one small message is cheaper than a fetch round-trip."""

    bulk_stripe_width: int = 4
    """Maximum number of sponsor replicas a session stripes page ranges
    across."""

    bulk_retransmit_timeout: float = 0.05
    """Per-stripe watchdog: a sponsor whose stripe made no progress for
    this long is re-fetched (and dropped after ``bulk_max_retries``)."""

    bulk_max_retries: int = 3
    """Fruitless re-fetches of one sponsor's stripe before the session
    drops the sponsor and restripes over the survivors."""

    bulk_burst_pages: int = 32
    """Pages a sponsor sends back-to-back before yielding (paces the
    live transport's socket buffers; the simulator's link serializes
    regardless)."""

    bulk_burst_interval: float = 0.0005
    """Pause between a sponsor's page bursts (seconds)."""

    bulk_store_ttl: float = 5.0
    """How long a sponsor retains a stashed snapshot for out-of-band
    serving after announcing its manifest."""

    cold_boot_window: float = 0.5
    """How long a restarting replica with a durable store waits for a live
    responder (or a better-covered peer) before claiming the cold-boot
    seed role for its group (see :class:`repro.core.envelope.ColdSeed`).
    Trades restart latency against the chance of seeding from a journal
    that misses a peer's longer tail."""

    request_retransmit_interval: float = 0.5
    """How often a client-side replica re-multicasts a two-way request
    that is still awaiting its reply.  A request ordered while its target
    group had no live members (the window a cold boot recovers from) is
    dropped by everyone and would otherwise hang a reply-clocked client
    forever; the retransmission is idempotent because delivered duplicates
    are suppressed by every replica's duplicate filter.  A request is only
    re-sent once it has been outstanding for two consecutive ticks.  0
    disables retransmission (the paper's behaviour)."""

    max_log_length: int = 10_000
    """Deployment-wide bound on a warm-passive message log: the primary
    forces an early checkpoint when a group's log exceeds this between
    periodic timers.  A group's own ``FTProperties.max_log_messages``
    (when non-zero) takes precedence; 0 disables the deployment default
    (unbounded logs, the paper's behaviour)."""

    read_lease: bool = False
    """Leader-lease read fast path (LLFT-style application-aware
    relaxation): operations the servant declares ``read_only`` are served
    point-to-point by the ring leader among the target group's replicas,
    bypassing the total order, for as long as that leader's ring
    membership is current.  Lease safety rides on Totem's membership
    timeouts: a partitioned leaseholder's token-loss timeout fires before
    the survivors can complete ring formation, so the lease is revoked
    before a new ring can order conflicting writes.  Off by default (the
    paper's pure total-order behaviour)."""

    read_lease_timeout: float = 0.25
    """Client-side fallback: a fast-path read unanswered for this long is
    re-issued through the total order (idempotent — read_only operations
    may execute twice)."""

    def __post_init__(self) -> None:
        if self.state_capture_bps <= 0:
            raise ValueError("state_capture_bps must be positive")
        if self.cold_start_delay < 0:
            raise ValueError("cold_start_delay must be non-negative")
        if self.delta_page_size < 1:
            raise ValueError("delta_page_size must be positive")
        if self.bulk_min_bytes < 1:
            raise ValueError("bulk_min_bytes must be positive")
        if self.bulk_stripe_width < 1:
            raise ValueError("bulk_stripe_width must be positive")
        if self.bulk_retransmit_timeout <= 0:
            raise ValueError("bulk_retransmit_timeout must be positive")
        if self.bulk_max_retries < 1:
            raise ValueError("bulk_max_retries must be positive")
        if self.bulk_burst_pages < 1:
            raise ValueError("bulk_burst_pages must be positive")
        if self.bulk_burst_interval < 0:
            raise ValueError("bulk_burst_interval must be non-negative")
        if self.bulk_store_ttl <= 0:
            raise ValueError("bulk_store_ttl must be positive")
        if self.cold_boot_window <= 0:
            raise ValueError("cold_boot_window must be positive")
        if self.request_retransmit_interval < 0:
            raise ValueError(
                "request_retransmit_interval must be non-negative")
        if self.max_log_length < 0:
            raise ValueError("max_log_length must be non-negative")
        if self.read_lease_timeout <= 0:
            raise ValueError("read_lease_timeout must be positive")
