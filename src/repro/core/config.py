"""Tunables of the Eternal mechanisms (and ablation switches).

The two ``sync_*`` flags exist for the ablation benchmarks: disabling them
reproduces the failure modes the paper uses to motivate ORB/POA-level state
synchronization (Figure 4's request_id mismatch, §4.2.2's lost handshake).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EternalConfig:
    """Per-deployment mechanism parameters."""

    reply_processing_delay: float = 10e-6
    """Simulated client-side cost of processing one delivered reply."""

    state_capture_bps: float = 400e6
    """Simulated get_state/set_state serialization rate (bytes/second):
    capturing or assigning S bytes of state costs S / rate seconds of
    replica CPU time, in addition to the operation's base duration."""

    cold_start_delay: float = 0.020
    """Simulated process-launch time for a cold-passive backup."""

    recovery_retry_timeout: float = 1.0
    """A joining replica re-announces itself if not synchronized in time."""

    sync_orb_request_ids: bool = True
    """Transfer and re-align GIOP request_id counters during recovery
    (§4.2.1).  Disabling reproduces Figure 4's inconsistency."""

    sync_handshake: bool = True
    """Store and replay the client-server handshake message into a new
    server replica's ORB (§4.2.2).  Disabling reproduces the discarded
    requests failure."""

    sync_infra_state: bool = True
    """Piggyback infrastructure-level state (duplicate filters, outstanding
    invocations) during recovery (§4.3)."""

    delta_state_transfer: bool = True
    """Ship ``set_state()`` bodies as page-level deltas against the
    receiver's last committed checkpoint whenever both ends share the base
    (negotiated by checkpoint digest); fall back to the full snapshot
    otherwise.  Disabling restores the paper's always-full transfers
    (checkpoint cost linear in total state size)."""

    delta_page_size: int = 1024
    """Page granularity of delta state transfer (bytes)."""

    def __post_init__(self) -> None:
        if self.state_capture_bps <= 0:
            raise ValueError("state_capture_bps must be positive")
        if self.cold_start_delay < 0:
            raise ValueError("cold_start_delay must be non-negative")
        if self.delta_page_size < 1:
            raise ValueError("delta_page_size must be positive")
