"""The Eternal Replication Mechanisms (one instance per node).

The mechanisms sit between the Totem ring member below and the local
replica containers above.  They

* multicast every captured IIOP message (wrapped in an envelope carrying
  its Eternal operation identifier);
* on delivery, suppress duplicates with the per-replica
  :class:`~repro.core.identifiers.DuplicateFilter`;
* route surviving messages according to each local replica's replication
  style and role (active and primary replicas execute; backups log;
  recovering replicas enqueue);
* maintain the node's :class:`~repro.core.groupinfo.GroupInfo` views from
  totally-ordered administration events and Totem view changes, and hand
  recovery-protocol envelopes to the Recovery Mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import EternalConfig
from repro.core.container import ReplicaContainer
from repro.core.envelope import (
    ColdSeed,
    Envelope,
    GroupUpdate,
    IiopEnvelope,
    NodeRestarted,
    ReplicaFault,
    ReplicaJoin,
    StateGet,
    StateSet,
    decode_envelope,
    encode_envelope,
)
from repro.core.groupinfo import (
    GroupInfo,
    ROLE_ACTIVE,
    ROLE_BACKUP,
    ROLE_PRIMARY,
)
from repro.core.identifiers import ConnectionKey, OpKind
from repro.core.infra_state import InfraState
from repro.core.interceptor import Interceptor
from repro.core.msglog import MessageLog
from repro.core.orb_state import OrbStateTracker
from repro.errors import ReplicationError
from repro.ftcorba.generic_factory import GenericFactory
from repro.ftcorba.properties import ReplicationStyle
from repro.giop.ior import IOR
from repro.runtime.timers import PeriodicTimer
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.store.base import DurableStore, GroupStore
from repro.totem.member import TotemMember, View

# Replica status values
STATUS_OPERATIONAL = "operational"
STATUS_RECOVERING = "recovering"


@dataclass
class ReplicaBinding:
    """Everything one node keeps for one locally hosted replica."""

    group_id: str
    container: ReplicaContainer
    interceptor: Interceptor
    infra: InfraState
    orb_state: OrbStateTracker
    log: MessageLog
    status: str = STATUS_RECOVERING
    delivery_position: int = 0
    enqueued: List[Tuple[int, IiopEnvelope]] = field(default_factory=list)
    sync_point_seen: bool = False      # the recovery get_state() passed by
    pending_transfer: Optional[str] = None
    active_span: Optional[str] = None  # root span of the in-flight recovery
    store: Optional[GroupStore] = None  # durable journal (repro.store)
    store_position: int = -1           # -1 no store, else last durable pos

    @property
    def operational(self) -> bool:
        return self.status == STATUS_OPERATIONAL


class ReplicationMechanisms:
    """Per-node replication machinery (paper §2's Replication Mechanisms,
    working together with the Recovery Mechanisms of
    :mod:`repro.core.recovery`)."""

    def __init__(
        self,
        totem: TotemMember,
        factory: GenericFactory,
        config: EternalConfig,
        *,
        announce_epoch: int = 0,
        tracer: Tracer = NULL_TRACER,
        store: Optional[DurableStore] = None,
    ) -> None:
        from repro.core.recovery import RecoveryMechanisms

        self.totem = totem
        self.endpoint = totem.endpoint
        self.process = totem.endpoint.process
        self.node_id = totem.node_id
        self.factory = factory
        self.config = config
        self.tracer = tracer
        self.store = store
        self.groups: Dict[str, GroupInfo] = {}
        self.bindings: Dict[str, ReplicaBinding] = {}
        self.recovery = RecoveryMechanisms(self)
        self.readfast = None
        self.fault_detector = None    # created when the first group arrives
        # Sharded deployments install a RingGatewayPort here so ordered
        # IIOP deliveries with no local binding can bridge to the ring
        # that owns the target group (see repro.core.gateway).
        self.gateway = None
        self._checkpoint_timers: Dict[str, PeriodicTimer] = {}
        self._retransmit_timer: Optional[PeriodicTimer] = None
        self._retransmit_seen: Set[Tuple[str, ConnectionKey, int]] = set()
        self._view_listeners: List[Callable[[View, Set[str], Set[str]], None]] = []
        self._operational_listeners: List[Callable[[str, str], None]] = []
        self._replica_fault_listeners: List[Callable[[ReplicaFault], None]] = []
        self._node_restart_listeners: List[Callable[[NodeRestarted], None]] = []
        self._cold_seed_listeners: List[Callable[[str, str], None]] = []
        self._node_incarnations: Dict[str, int] = {}
        self._known_view_members: Set[str] = set()
        totem.on_deliver = self._on_deliver
        totem.on_view_change = self._on_view_change
        self.process.on_crash(self._on_crash)
        if config.read_lease:
            from repro.core.readfast import ReadFastCoordinator
            self.readfast = ReadFastCoordinator(self)
        # Announce this (fresh, empty) stack in the total order.  A fast
        # restart may never leave the ring view, so membership alone cannot
        # reveal that our previous incarnation's replicas are gone; and the
        # announcement is the Replication Manager's single, race-free
        # trigger for (re)placing replicas on this node.  Epoch 0 marks the
        # very first boot (nothing to drop); rebuilds announce ever-larger
        # epochs.
        self.announce_epoch = announce_epoch
        self.multicast(NodeRestarted(self.node_id, announce_epoch))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def multicast(self, envelope: Envelope) -> None:
        """Encode and reliably totally-order-multicast an envelope."""
        self.totem.multicast(encode_envelope(envelope),
                             trace_id=getattr(envelope, "trace_id", ""))

    # ------------------------------------------------------------------
    # Observers (managers subscribe here)
    # ------------------------------------------------------------------

    def on_view_event(self, fn: Callable[[View, Set[str], Set[str]], None]) -> None:
        """Subscribe to (view, lost_nodes, joined_nodes) events."""
        self._view_listeners.append(fn)

    def on_member_operational(self, fn: Callable[[str, str], None]) -> None:
        """Subscribe to (group_id, node_id) becoming operational."""
        self._operational_listeners.append(fn)

    def on_replica_fault(self, fn: Callable[[ReplicaFault], None]) -> None:
        """Subscribe to delivered replica-fault reports."""
        self._replica_fault_listeners.append(fn)

    def notify_member_operational(self, group_id: str, node_id: str) -> None:
        for fn in list(self._operational_listeners):
            fn(group_id, node_id)

    def on_cold_seed(self, fn: Callable[[str, str], None]) -> None:
        """Subscribe to (group_id, node_id) winning a cold-boot election."""
        self._cold_seed_listeners.append(fn)

    def notify_cold_seed(self, group_id: str, node_id: str) -> None:
        for fn in list(self._cold_seed_listeners):
            fn(group_id, node_id)

    # ------------------------------------------------------------------
    # Delivery from Totem
    # ------------------------------------------------------------------

    def _on_crash(self) -> None:
        for timer in self._checkpoint_timers.values():
            timer.stop()
        self._checkpoint_timers.clear()
        self._stop_retransmit_timer()
        if self.store is not None:
            # Drop file handles without flushing, as SIGKILL would; the
            # journal on disk is what the next incarnation finds.
            self.store.handle_crash()

    def _on_deliver(self, origin: str, payload: bytes) -> None:
        envelope = decode_envelope(payload)
        if isinstance(envelope, IiopEnvelope):
            self._handle_iiop(envelope)
        elif isinstance(envelope, GroupUpdate):
            self._handle_group_update(envelope)
        elif isinstance(envelope, ReplicaJoin):
            self.recovery.handle_replica_join(envelope)
        elif isinstance(envelope, StateGet):
            self.recovery.handle_state_get(envelope)
        elif isinstance(envelope, StateSet):
            self.recovery.handle_state_set(envelope)
        elif isinstance(envelope, ReplicaFault):
            self._handle_replica_fault(envelope)
        elif isinstance(envelope, NodeRestarted):
            self._handle_node_restarted(envelope)
        elif isinstance(envelope, ColdSeed):
            self.recovery.handle_cold_seed(envelope)
        else:  # pragma: no cover - decode_envelope is exhaustive
            raise ReplicationError(f"unroutable envelope {envelope!r}")

    # ------------------------------------------------------------------
    # IIOP routing
    # ------------------------------------------------------------------

    def _handle_iiop(self, envelope: IiopEnvelope) -> None:
        binding = self.bindings.get(envelope.target_group)
        if binding is None:
            if self.gateway is not None:
                self.gateway.on_unplaced_iiop(envelope, self)
            return
        binding.delivery_position += 1
        if binding.status == STATUS_RECOVERING:
            # §5.1: before the sync point the new replica's state transfer
            # will already include these messages' effects — drop them; from
            # the get_state() marker onwards, enqueue for delivery after
            # set_state() completes.
            if binding.sync_point_seen:
                # The delivery position rides along so the post-recovery
                # drain journals each message at its true position.
                binding.enqueued.append((binding.delivery_position,
                                         envelope))
                self.tracer.emit("replication", "enqueued",
                                 node=self.node_id,
                                 group=envelope.target_group)
            return
        self.route_iiop(binding, envelope)

    def route_iiop(self, binding: ReplicaBinding,
                   envelope: IiopEnvelope,
                   position: Optional[int] = None) -> None:
        """Duplicate-filter and dispatch one IIOP envelope to a local
        replica.  ``position`` is the envelope's delivery position when
        draining the recovery queue (whose entries were assigned theirs at
        enqueue time); fresh deliveries default to the binding's current
        one."""
        if position is None:
            position = binding.delivery_position
        if binding.infra.duplicates.seen_before(envelope.operation_id):
            self.tracer.emit("replication", "duplicate", node=self.node_id,
                             group=binding.group_id,
                             request_id=envelope.request_id,
                             kind=envelope.kind.name)
            return
        group = self.groups[binding.group_id]
        executes = group.executes(self.node_id)
        if binding.store is not None:
            # Journal write-ahead of execution: the message is durable
            # before its effects exist, so a crash replays it rather than
            # losing it.
            binding.store.append_message(position,
                                         encode_envelope(envelope))
            binding.store_position = max(binding.store_position, position)
        if group.style.is_passive:
            binding.log.append(position, envelope)
        # Bounded log: the checkpoint initiator forces an early checkpoint
        # when the volatile log (passive) or the durable journal's
        # unreclaimed tail (any style with a store) outgrows the limit (the
        # in-flight guard in initiate_checkpoint prevents a storm while one
        # completes).  A group's own FTProperties bound wins; otherwise the
        # deployment-wide EternalConfig.max_log_length applies (0 in either
        # position means unbounded at that level).
        log_bound = group.max_log_messages or self.config.max_log_length
        if log_bound:
            volatile_over = (group.style.is_passive
                             and binding.log.log_length >= log_bound)
            durable_over = (binding.store is not None
                            and binding.store.pending_messages >= log_bound)
            if ((volatile_over or durable_over)
                    and self.recovery.checkpoint_initiator(group)
                    == self.node_id):
                self.recovery.initiate_checkpoint(binding.group_id)
        if envelope.kind is OpKind.REQUEST:
            # Watch for the client-server handshake: Eternal stores it so
            # it can be replayed into a future new replica's ORB (§4.2.2).
            binding.orb_state.observe_delivered_request(
                envelope.connection, envelope.iiop_bytes
            )
            if executes:
                self._note_delivered(binding, envelope)
                binding.container.submit_request(envelope.connection,
                                                 envelope.iiop_bytes)
        else:
            if executes:
                self._note_delivered(binding, envelope)
                self._deliver_reply(binding, envelope)
            else:
                # Non-executing members (backups) only track bookkeeping.
                binding.infra.record_reply_delivered(envelope.connection,
                                                     envelope.request_id)

    def _note_delivered(self, binding: ReplicaBinding,
                        envelope: IiopEnvelope) -> None:
        """An operation survived duplicate suppression and is being handed
        to the servant — the event the auditor shadows for at-most-once."""
        self.tracer.emit("replication", "delivered", node=self.node_id,
                         group=binding.group_id,
                         conn=envelope.connection.as_str(),
                         request_id=envelope.request_id,
                         kind=envelope.kind.name,
                         trace=envelope.trace_id)

    def _deliver_reply(self, binding: ReplicaBinding,
                       envelope: IiopEnvelope) -> None:
        binding.interceptor.note_reply_delivered(envelope.connection,
                                                 envelope.request_id)
        data = binding.interceptor.rewrite_incoming_reply(
            envelope.connection, envelope.iiop_bytes
        )
        connection = envelope.connection
        request_id = envelope.request_id
        binding.container.submit_reply(
            connection.server_group, IOR_PORT, data,
            on_executed=lambda: binding.infra.record_reply_delivered(
                connection, request_id
            ),
        )

    # ------------------------------------------------------------------
    # Group administration
    # ------------------------------------------------------------------

    def _handle_group_update(self, envelope: GroupUpdate) -> None:
        style = ReplicationStyle(envelope.style)
        info = self.groups.get(envelope.group_id)
        previously_operational = set(info.operational) if info else set()
        previous_role = info.role_of(self.node_id) if info else None
        new_info = GroupInfo(
            group_id=envelope.group_id,
            type_id=envelope.type_id,
            style=style,
            checkpoint_interval=envelope.checkpoint_interval,
            app_version=envelope.app_version,
            fault_monitoring_interval=envelope.fault_monitoring_interval,
            max_log_messages=envelope.max_log_messages,
        )
        for node_id, role, operational in envelope.members:
            # Union-merge operational marks: a recovery set_state may have
            # been ordered between the manager composing this update and
            # its delivery here.
            already = node_id in previously_operational
            new_info.add_member(node_id, role,
                                operational=operational or already)
        self.groups[envelope.group_id] = new_info
        info = new_info

        if envelope.action == "create":
            local_role = info.role_of(self.node_id)
            if local_role is not None:
                if self.store is not None:
                    # A create is a fresh deployment: whatever journal a
                    # previous deployment of this group id left behind is
                    # superseded, never replayed into the new incarnation.
                    self.store.reset_group(envelope.group_id)
                binding = self._create_binding(info, local_role,
                                               envelope.app_version)
                binding.status = STATUS_OPERATIONAL
                if info.executes(self.node_id):
                    self.process.call_after(
                        0.0, binding.container.start_application
                    )
        elif envelope.action == "add":
            if envelope.subject_node == self.node_id:
                binding = self._create_binding(
                    info, info.role_of(self.node_id) or ROLE_BACKUP,
                    envelope.app_version,
                )
                binding.status = STATUS_RECOVERING
                # Disk rung of the recovery ladder: adopt the durable
                # checkpoint + message tail before asking the network.
                self.recovery.prepare_from_store(binding)
                self.recovery.announce_join(binding)
        elif envelope.action == "remove":
            if envelope.subject_node == self.node_id:
                self._destroy_binding(envelope.group_id)
        # An administrative promotion (e.g. the Evolution Manager removing
        # the primary) must put the promoted backup through failover just
        # like a crash-driven promotion.
        binding = self.bindings.get(envelope.group_id)
        if (binding is not None and binding.operational
                and previous_role == ROLE_BACKUP
                and info.role_of(self.node_id) == ROLE_PRIMARY):
            self.recovery.begin_failover(envelope.group_id)
        self._sync_checkpoint_timer(info)

    def _create_binding(self, info: GroupInfo, role: str,
                        app_version: int) -> ReplicaBinding:
        if info.group_id in self.bindings:
            self._destroy_binding(info.group_id)
        servant = None
        cold_backup = (info.style is ReplicationStyle.COLD_PASSIVE
                       and role == ROLE_BACKUP)
        if not cold_backup:
            servant = self.factory.create_object(info.type_id, app_version)
        infra = InfraState(style=info.style.value, role=role)
        orb_state = OrbStateTracker()
        binding = ReplicaBinding(
            group_id=info.group_id,
            container=None,           # set just below
            interceptor=None,
            infra=infra,
            orb_state=orb_state,
            log=MessageLog(info.group_id),
        )
        if self.store is not None:
            binding.store = self.store.group(
                info.group_id, page_size=self.config.delta_page_size)
            binding.store_position = 0
        interceptor = Interceptor(
            self.node_id, info.group_id,
            self.multicast_iiop, infra, orb_state, tracer=self.tracer,
        )
        container = ReplicaContainer(
            self.process, info.group_id, servant, self.config,
            on_reply_produced=lambda conn, data, b=binding:
                self._on_reply_produced(b, conn, data),
            tracer=self.tracer,
        )
        container.orb.set_client_transport(interceptor.capture_client_request)
        if self.readfast is not None:
            interceptor.fast_path = self.readfast.try_fast_read
        binding.container = container
        binding.interceptor = interceptor
        self.bindings[info.group_id] = binding
        self._ensure_retransmit_timer()
        self.tracer.emit("replication", "binding_created",
                         node=self.node_id, group=info.group_id, role=role)
        self._sync_fault_detector()
        return binding

    def multicast_iiop(self, envelope: IiopEnvelope) -> None:
        self.multicast(envelope)

    # ------------------------------------------------------------------
    # Unanswered-request retransmission
    # ------------------------------------------------------------------

    def _ensure_retransmit_timer(self) -> None:
        if (self._retransmit_timer is not None
                or self.config.request_retransmit_interval <= 0):
            return
        self._retransmit_timer = PeriodicTimer(
            self.process.scheduler, self.config.request_retransmit_interval,
            self._retransmit_tick,
        )

    def _retransmit_tick(self) -> None:
        """Re-multicast two-way requests that have gone unanswered for two
        consecutive ticks.

        A request ordered while its target group had no live members (the
        window a cold boot recovers from) was dropped by everyone; only
        the issuing replica can put it back on the wire.  Re-sent copies
        that *were* delivered are suppressed by every replica's duplicate
        filter, so retransmission is idempotent."""
        stale = {}
        for binding in self.bindings.values():
            for envelope in binding.interceptor.open_requests():
                stale[(binding.group_id, envelope.connection,
                       envelope.request_id)] = envelope
        for key, envelope in stale.items():
            if key in self._retransmit_seen:
                self.tracer.emit("interceptor", "retransmit",
                                 node=self.node_id, group=key[0],
                                 conn=envelope.connection.as_str(),
                                 request_id=envelope.request_id)
                self.multicast(envelope)
        self._retransmit_seen = set(stale)

    def _stop_retransmit_timer(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.stop()
            self._retransmit_timer = None
        self._retransmit_seen = set()

    def _on_reply_produced(self, binding: ReplicaBinding,
                           connection: ConnectionKey, data: bytes) -> None:
        group = self.groups.get(binding.group_id)
        if group is None or not group.executes(self.node_id):
            return
        if (self.readfast is not None
                and self.readfast.intercept_reply(binding, connection, data)):
            # The reply answers a lease-served read: it went back
            # point-to-point and must not enter the total order.
            return
        binding.interceptor.capture_server_reply(connection, data)

    def _destroy_binding(self, group_id: str) -> None:
        binding = self.bindings.pop(group_id, None)
        if binding is not None:
            self.tracer.emit("replication", "binding_destroyed",
                             node=self.node_id, group=group_id)

    # ------------------------------------------------------------------
    # Replica faults (pull monitoring, FT-CORBA fault detection)
    # ------------------------------------------------------------------

    def _handle_replica_fault(self, envelope: ReplicaFault) -> None:
        info = self.groups.get(envelope.group_id)
        if info is None or envelope.node_id not in info.roles:
            return
        self.tracer.emit("replication", "replica_fault", node=self.node_id,
                         group=envelope.group_id, faulty=envelope.node_id)
        promoted = info.handle_node_loss({envelope.node_id})
        if envelope.node_id == self.node_id:
            self._destroy_binding(envelope.group_id)
            if self.fault_detector is not None:
                self.fault_detector.forget(envelope.group_id)
        if promoted == self.node_id:
            self.recovery.begin_failover(envelope.group_id)
        self._sync_checkpoint_timer(info)
        for fn in list(self._replica_fault_listeners):
            fn(envelope)

    def _handle_node_restarted(self, envelope: NodeRestarted) -> None:
        stale_members = (
            envelope.node_id != self.node_id
            # Incarnation 0 is the node's very first boot: nothing could
            # have been placed on a previous life, so there is nothing to
            # drop (and the boot announcements of the initial nodes may be
            # ordered after the first group creations).
            and envelope.incarnation > 0
            and envelope.incarnation > self._node_incarnations.get(
                envelope.node_id, 0)
        )
        self._node_incarnations[envelope.node_id] = max(
            envelope.incarnation,
            self._node_incarnations.get(envelope.node_id, 0),
        )
        if stale_members:
            touched = False
            for info in self.groups.values():
                if envelope.node_id not in info.roles:
                    continue
                touched = True
                promoted = info.handle_node_loss({envelope.node_id})
                if promoted == self.node_id:
                    self.recovery.begin_failover(info.group_id)
                self._sync_checkpoint_timer(info)
            if touched:
                self.tracer.emit("replication", "node_restart_cleanup",
                                 node=self.node_id,
                                 restarted=envelope.node_id)
        for fn in list(self._node_restart_listeners):
            fn(envelope)

    def on_node_restarted(self, fn: Callable[[NodeRestarted], None]) -> None:
        """Subscribe to delivered node-restart announcements."""
        self._node_restart_listeners.append(fn)

    def _sync_fault_detector(self) -> None:
        """Run one pull-monitor per node at the tightest fault monitoring
        interval among the locally hosted groups."""
        from repro.core.fault_detector import ReplicaFaultDetector
        local_groups = [self.groups[g] for g in self.bindings
                        if g in self.groups]
        if not local_groups:
            return
        interval = min(
            getattr(info, "fault_monitoring_interval", 0.05)
            for info in local_groups
        )
        if self.fault_detector is None:
            self.fault_detector = ReplicaFaultDetector(self, interval)

    # ------------------------------------------------------------------
    # Checkpoint timers (passive styles, §3.3)
    # ------------------------------------------------------------------

    def _sync_checkpoint_timer(self, info: GroupInfo) -> None:
        """The checkpoint initiator's node runs the periodic state-retrieval
        timer: the primary for passive styles, and — only when a durable
        store needs feeding — the lowest operational executor for active
        ones (see :meth:`RecoveryMechanisms.checkpoint_initiator`)."""
        should_run = (
            info.group_id in self.bindings
            and self.recovery.checkpoint_initiator(info) == self.node_id
        )
        timer = self._checkpoint_timers.get(info.group_id)
        if should_run and timer is None:
            self._checkpoint_timers[info.group_id] = PeriodicTimer(
                self.process.scheduler, info.checkpoint_interval,
                lambda gid=info.group_id: self.recovery.initiate_checkpoint(gid),
            )
        elif not should_run and timer is not None:
            timer.stop()
            del self._checkpoint_timers[info.group_id]

    # ------------------------------------------------------------------
    # View changes (fault detection via the ring membership)
    # ------------------------------------------------------------------

    def _on_view_change(self, view: View) -> None:
        if (self.totem.last_install_was_fresh
                and (self.groups or self.bindings)):
            # We lost the primary-component vote in a partition merge: our
            # ring history — and therefore our replicas' consistency — is
            # gone.  Reset and announce, so the Replication Manager
            # re-places and re-synchronizes our replicas from the canonical
            # side's state.
            self._reset_after_history_loss()
        current = set(view.members)
        previous = self._known_view_members or current
        lost = previous - current
        joined = current - previous
        self._known_view_members = current
        if lost:
            self._apply_node_loss(lost)
        for fn in list(self._view_listeners):
            fn(view, lost, joined)

    def _reset_after_history_loss(self) -> None:
        self.tracer.emit("replication", "history_lost", node=self.node_id,
                         groups=sorted(self.groups))
        for group_id in list(self.bindings):
            self._destroy_binding(group_id)
        self.groups.clear()
        for timer in self._checkpoint_timers.values():
            timer.stop()
        self._checkpoint_timers.clear()
        self._stop_retransmit_timer()
        from repro.core.recovery import RecoveryMechanisms
        self.recovery = RecoveryMechanisms(self)
        epoch = self.process.next_announce_epoch()
        self.announce_epoch = epoch
        self.multicast(NodeRestarted(self.node_id, epoch))

    def _apply_node_loss(self, lost: Set[str]) -> None:
        for info in self.groups.values():
            promoted = info.handle_node_loss(lost)
            if promoted is not None:
                self.tracer.emit("replication", "promote",
                                 node=self.node_id, group=info.group_id,
                                 new_primary=promoted)
                if promoted == self.node_id:
                    self.recovery.begin_failover(info.group_id)
                self._sync_checkpoint_timer(info)


IOR_PORT = 2809
