"""Logging of checkpoints and messages (paper §3.3).

"Eternal logs each checkpoint and the ordered messages that follow that
checkpoint, until the next checkpoint (which overwrites the previous
checkpoint) occurs."

Each node hosting a member of a passively replicated group keeps one
:class:`MessageLog` for the group.  The checkpoint records all three kinds
of state (the fabricated set_state's app state plus the piggybacked
ORB/POA-level and infrastructure-level blobs).  Log positions are the
node-local delivery indices of the group's totally-ordered message stream;
a checkpoint taken at the position of its ``get_state()`` marker prunes all
earlier messages (garbage collection of the log).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.envelope import IiopEnvelope


@dataclass(frozen=True)
class CheckpointRecord:
    """One logged checkpoint: the three kinds of state at a log position."""

    transfer_id: str
    position: int
    app_state: bytes
    orb_state: bytes
    infra_state: bytes

    @property
    def digest(self) -> str:
        """Content digest over all three state blobs, for cross-replica
        comparison by the consistency auditor."""
        from repro.obs.audit import state_digest
        return state_digest(self.app_state, self.orb_state,
                            self.infra_state)

    @property
    def app_digest(self) -> str:
        """Digest of the application-state blob alone — the identity a
        page-level delta transfer is negotiated against (the base both ends
        must share, see :mod:`repro.core.statedelta`).  Cached: the blob is
        immutable and the digest is consulted on every checkpoint."""
        cached = self.__dict__.get("_app_digest")
        if cached is None:
            from repro.obs.audit import state_digest
            cached = state_digest(self.app_state)
            object.__setattr__(self, "_app_digest", cached)
        return cached


class MessageLog:
    """Checkpoint + ordered messages since, for one group at one node."""

    def __init__(self, group_id: str) -> None:
        self.group_id = group_id
        self.checkpoint: Optional[CheckpointRecord] = None
        self._messages: List[Tuple[int, IiopEnvelope]] = []
        self._pending_get_positions: Dict[str, int] = {}
        self.checkpoints_taken = 0

    # -- recording -----------------------------------------------------------

    def mark_get_position(self, transfer_id: str, position: int) -> None:
        """Record where a checkpoint's get_state() sits in the total order;
        the checkpoint that returns for it covers everything up to here."""
        self._pending_get_positions[transfer_id] = position

    def append(self, position: int, envelope: IiopEnvelope) -> None:
        """Log one ordered message delivered to the group."""
        self._messages.append((position, envelope))

    def commit_checkpoint(self, transfer_id: str, app_state: bytes,
                          orb_state: bytes, infra_state: bytes) -> CheckpointRecord:
        """Install the checkpoint for ``transfer_id``; overwrites the
        previous checkpoint and prunes messages it covers."""
        position = self._pending_get_positions.pop(transfer_id, -1)
        record = CheckpointRecord(transfer_id, position, app_state,
                                  orb_state, infra_state)
        self.checkpoint = record
        self._messages = [(p, e) for p, e in self._messages if p > position]
        self.checkpoints_taken += 1
        return record

    def restore(self, checkpoint: Optional[CheckpointRecord],
                messages: List[Tuple[int, IiopEnvelope]]) -> None:
        """Adopt a durable checkpoint and message tail read back from the
        node's journal (:mod:`repro.store`) — the disk rung of the cold
        restart ladder.  Replaces any volatile contents; ``messages`` must
        be position-ordered and past the checkpoint, which is exactly what
        :meth:`repro.store.base.GroupStore.load` reconstructs."""
        self.checkpoint = checkpoint
        self._messages = list(messages)
        self._pending_get_positions.clear()

    # -- replay ---------------------------------------------------------------

    def messages_since_checkpoint(self) -> List[IiopEnvelope]:
        """The ordered messages to replay on a new primary (§3.3)."""
        base = self.checkpoint.position if self.checkpoint else -1
        return [e for p, e in self._messages if p > base]

    @property
    def log_length(self) -> int:
        return len(self._messages)

    def clear(self) -> None:
        self.checkpoint = None
        self._messages.clear()
        self._pending_get_positions.clear()
