"""Consistent-hashing placement of object groups onto Totem rings.

One Totem ring bounds aggregate throughput at one token rotation, so a
sharded deployment runs many independent rings and needs a stable answer
to "which ring owns this object group?".  :class:`HashRing` provides it:
each shard is planted at ``virtual_nodes`` pseudo-random points on a
64-bit hash circle, and a key is owned by the first shard point at or
after the key's own hash (wrapping).  Virtual nodes smooth the load
across shards, and the classic consistent-hashing property holds:
adding or removing one shard remaps only the keys that fall into the
arcs its points cover — about ``K/N`` of them — while every other
key keeps its owner (no global reshuffle, no cross-ring state
migration for unaffected groups).

The structure is deterministic (pure blake2b of shard names and keys,
no process-seeded randomness), so every node of every ring — and the
client-side routers — derive identical placements independently.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError


class PlacementError(ReproError):
    """Raised for invalid placement operations (empty ring, dup shard)."""


def _point(data: str) -> int:
    """A stable 64-bit position on the hash circle."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hashing circle mapping keys to shard names.

    ``virtual_nodes`` is the number of points each shard plants; more
    points flatten the per-shard load spread at the cost of a larger
    sorted table (lookup stays O(log(shards x points)) via bisect).
    """

    def __init__(self, shards: Iterable[str] = (),
                 *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise PlacementError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        self._shards: List[str] = []
        self._points: List[int] = []       # sorted circle positions
        self._owners: List[str] = []       # shard at self._points[i]
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def add_shard(self, shard: str) -> None:
        if shard in self._shards:
            raise PlacementError(f"shard {shard!r} already on the ring")
        self._shards.append(shard)
        for index in range(self.virtual_nodes):
            point = _point(f"{shard}#{index}")
            at = bisect.bisect_left(self._points, point)
            # Collisions across 64-bit points are practically impossible;
            # break one deterministically on shard name anyway.
            if at < len(self._points) and self._points[at] == point \
                    and self._owners[at] < shard:
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, shard)

    def remove_shard(self, shard: str) -> None:
        if shard not in self._shards:
            raise PlacementError(f"shard {shard!r} not on the ring")
        self._shards.remove(shard)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != shard]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def owner_of(self, key: str) -> str:
        """The shard owning ``key`` (deterministic; O(log points))."""
        if not self._points:
            raise PlacementError("ring has no shards")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):
            at = 0                         # wrap past the highest point
        return self._owners[at]

    def distribution(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (includes empty shards)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.owner_of(key)] += 1
        return counts
