"""Replica-level fault detection (FT-CORBA pull monitoring).

Crash faults of whole processes are detected by the Totem membership
protocol (a dead node falls out of the ring).  But FT-CORBA also requires
detecting *replica* faults on a live host — an object that hangs or
livelocks while its process keeps answering the network.  The FT-CORBA
standard uses pull-based monitoring: a Fault Detector periodically invokes
``is_alive()`` on each monitored object at the user-specified *fault
monitoring interval* (one of the §2 fault tolerance properties).

:class:`ReplicaFaultDetector` runs on every node, polls each locally
hosted replica, and multicasts a :class:`ReplicaFault` envelope when a
replica misses ``SUSPECT_AFTER`` consecutive polls — the report travels in
the total order, so all nodes (and the Replication Manager) learn of the
fault at the same logical point.  The Replication Manager reacts exactly
as for a crash: the member is removed and a replacement is placed.

The simulator injects this fault class via :meth:`EternalSystem.hang_replica`
(the servant stops completing operations without the process dying).
"""

from __future__ import annotations

from typing import Dict, Set, TYPE_CHECKING

from repro.core.envelope import ReplicaFault
from repro.runtime.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replication import ReplicaBinding, ReplicationMechanisms

SUSPECT_AFTER = 3
"""Consecutive failed liveness polls before a replica is reported faulty."""


class ReplicaFaultDetector:
    """Per-node pull-based monitor over the locally hosted replicas."""

    def __init__(self, mechanisms: "ReplicationMechanisms",
                 interval: float) -> None:
        self.mechanisms = mechanisms
        self.node_id = mechanisms.node_id
        self.tracer = mechanisms.tracer
        self._strikes: Dict[str, int] = {}
        self._reported: Set[str] = set()
        self._timer = PeriodicTimer(
            mechanisms.process.scheduler, interval, self._poll
        )
        mechanisms.process.on_crash(self._timer.stop)

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------

    def _poll(self) -> None:
        if not self.mechanisms.process.alive:
            return
        for group_id, binding in list(self.mechanisms.bindings.items()):
            if group_id in self._reported:
                continue
            if self._is_alive(binding):
                if self._strikes.get(group_id, 0) > 0:
                    # A suspicion evaporated before reaching the report
                    # threshold — a false positive of the pull monitor.
                    self.tracer.emit("fault_detector", "refuted",
                                     node=self.node_id, group=group_id,
                                     strikes=self._strikes[group_id])
                self._strikes[group_id] = 0
                continue
            strikes = self._strikes.get(group_id, 0) + 1
            self._strikes[group_id] = strikes
            self.tracer.emit("fault_detector", "suspect",
                             node=self.node_id, group=group_id,
                             strikes=strikes)
            if strikes >= SUSPECT_AFTER:
                self._report(group_id)

    def _is_alive(self, binding: "ReplicaBinding") -> bool:
        """Pull-based liveness: a healthy replica either has an empty work
        queue or is making progress through it.

        A *hung* replica shows a characteristic signature: work is queued
        but the executed-operations counter has stopped advancing.
        """
        container = binding.container
        if not container.instantiated:
            return True            # cold backups are not executing by design
        servant = container.servant
        if getattr(servant, "_hung_for_test", False):
            return False
        if container.queue_depth == 0:
            return True
        progressed = (container.operations_executed
                      != getattr(binding, "_last_ops_seen", -1))
        binding._last_ops_seen = container.operations_executed
        return progressed

    def _report(self, group_id: str) -> None:
        self._reported.add(group_id)
        self.tracer.emit("fault_detector", "report", node=self.node_id,
                         group=group_id)
        self.mechanisms.multicast(ReplicaFault(group_id, self.node_id))

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-group suspicion state (rendered by the health exposition)."""
        groups = set(self._strikes) | self._reported
        groups.update(self.mechanisms.bindings)
        return {
            group_id: {
                "strikes": self._strikes.get(group_id, 0),
                "reported": int(group_id in self._reported),
            }
            for group_id in sorted(groups)
        }

    def forget(self, group_id: str) -> None:
        """Clear history (the replica was replaced)."""
        self._strikes.pop(group_id, None)
        self._reported.discard(group_id)
