"""The Eternal Recovery Mechanisms (paper §3.3, §4, §5).

Implements, per node:

* the **state-transfer protocol** of §5.1 — a fabricated ``get_state()``
  marker multicast into the total order defines the synchronization point;
  every operational responder executes it at quiescence and multicasts a
  fabricated ``set_state()`` carrying the application-level state with the
  ORB/POA-level and infrastructure-level state piggybacked; duplicate
  set_states are suppressed; at the new replica the three kinds of state
  are assigned in order (application, ORB/POA, infrastructure) before any
  enqueued normal message is delivered;
* **enqueueing** of normal invocations/responses delivered to a replica
  that is being recovered, and their replay once it is operational;
* **logging of checkpoints and messages** for the passive styles, with the
  checkpoint overwriting its predecessor and pruning the log (§3.3);
* **failover** — promotion of a backup, cold launch if necessary, state
  restoration from the logged checkpoint, and replay of the logged
  messages, all concurrent with normal operation of other objects.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.core.bulk import BulkLane, build_manifest, decode_manifest, \
    encode_manifest
from repro.core.envelope import (
    ColdSeed,
    IiopEnvelope,
    ReplicaJoin,
    StateGet,
    StateSet,
    TransferPurpose,
    decode_envelope,
)
from repro.core.groupinfo import GroupInfo, ROLE_BACKUP, ROLE_PRIMARY
from repro.core.identifiers import OpKind
from repro.core.infra_state import InfraState
from repro.core.msglog import CheckpointRecord
from repro.core.orb_state import OrbStateTracker
from repro.core.statedelta import (
    DeltaMismatch,
    apply_delta,
    compute_delta,
    decode_delta,
    encode_delta,
)
from repro.errors import ProtocolError, StateTransferError, StoreCorruptError
from repro.ftcorba.object_group import elect_cold_seed
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.audit import state_digest
from repro.obs.spans import SpanEmitter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replication import ReplicaBinding, ReplicationMechanisms

STATUS_OPERATIONAL = "operational"
STATUS_RECOVERING = "recovering"


class BoundedIdSet:
    """A seen-ids set with FIFO eviction.

    Handled-transfer-id sets must not grow for the life of a node.
    Duplicate protocol messages for one transfer arrive close together in
    the total order (they come from responders answering the same GET), so
    evicting ids thousands of transfers old cannot re-admit a duplicate.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._seen: set = set()
        self._order: list = []

    def add(self, item: str) -> bool:
        """Record ``item``; returns True if it was new."""
        if item in self._seen:
            return False
        self._seen.add(item)
        self._order.append(item)
        if len(self._order) > self._capacity:
            oldest = self._order.pop(0)
            self._seen.discard(oldest)
        return True

    def __contains__(self, item: str) -> bool:
        return item in self._seen

    def __len__(self) -> int:
        return len(self._seen)


class RecoveryMechanisms:
    """Per-node recovery machinery, colocated with the Replication
    Mechanisms (they share group views and replica bindings)."""

    def __init__(self, mechanisms: "ReplicationMechanisms") -> None:
        self.mechanisms = mechanisms
        self.node_id = mechanisms.node_id
        self.tracer = mechanisms.tracer
        self.spans = SpanEmitter(mechanisms.tracer, node_id=self.node_id)
        self.config = mechanisms.config
        self._handled_gets = BoundedIdSet()
        self._handled_sets = BoundedIdSet()
        # Out-of-band bulk lane: responder-side snapshot stash plus the
        # target-side striped fetch sessions (see repro.core.bulk).
        self.bulk = BulkLane(mechanisms.process, mechanisms.endpoint,
                             mechanisms.config, mechanisms.tracer,
                             mechanisms.node_id)
        self._transfer_counter = itertools.count(1)
        self._pending_checkpoints: Set[str] = set()
        # Groups for which this node has asked for a full re-checkpoint
        # after failing to apply a delta-encoded one (cleared on commit).
        self._resync_requested: Set[str] = set()
        # Duplicate-filter snapshots taken at each GET's delivery position
        # (the synchronization point), keyed by transfer id.
        self._filter_snapshots: dict = {}
        # Cold-boot election state (whole-dead groups, repro.store):
        # per group, the durable coverage each peer advertised in its join
        # announcement, with the local time it was last seen — stale bids
        # from candidates that died mid-election must not win forever.
        self._cold_bids: Dict[str, Dict[str, Tuple[int, float]]] = {}
        self._cold_windows: Set[str] = set()

    # ------------------------------------------------------------------
    # Durable store (the disk rung of the restart ladder)
    # ------------------------------------------------------------------

    def prepare_from_store(self, binding: "ReplicaBinding") -> None:
        """Adopt the node's durable checkpoint and journaled message tail
        into the volatile log *before* announcing the join.

        This is what makes restart cost proportional to missed work: the
        subsequent :meth:`announce_join` advertises the restored
        checkpoint's digest, so a responder sharing the base ships only
        the changed pages — and if the whole group is dead, the restored
        log makes this node a cold-boot candidate.

        A journal that fails its integrity checks is quarantined (wiped)
        and the replica falls back to a full network recovery, exactly as
        if it had no store."""
        if binding.store is None:
            return
        span_id = self._new_transfer_id("store", binding.group_id)
        self.spans.start("recovery.store.load", span_id=span_id,
                         node=self.node_id, group=binding.group_id)
        try:
            stored = binding.store.load()
            messages = []
            for position, raw in stored.messages:
                decoded = decode_envelope(raw)
                if not isinstance(decoded, IiopEnvelope):
                    raise StoreCorruptError(
                        f"journaled message at position {position} decodes "
                        f"to {type(decoded).__name__}"
                    )
                messages.append((position, decoded))
        except (StoreCorruptError, ProtocolError) as exc:
            self.tracer.emit("store", "corrupt", node=self.node_id,
                             group=binding.group_id,
                             reason=type(exc).__name__, detail=str(exc))
            binding.store.reset()
            binding.store_position = 0
            self.spans.end(span_id, outcome="corrupt")
            return
        binding.log.restore(stored.checkpoint, messages)
        binding.store_position = max(0, stored.last_position)
        # Keep local log positions monotonic across incarnations: new
        # deliveries must sort after everything the journal already holds,
        # or the position-keyed prune/dedup rules would conflate eras.
        binding.delivery_position = max(binding.delivery_position,
                                        stored.last_position)
        self.tracer.emit("store", "restored", node=self.node_id,
                         group=binding.group_id,
                         has_checkpoint=stored.checkpoint is not None,
                         messages=len(messages),
                         last_position=stored.last_position)
        self.spans.end(span_id, messages=len(messages),
                       has_checkpoint=stored.checkpoint is not None)

    # ------------------------------------------------------------------
    # Join announcement (the recovering side starts here)
    # ------------------------------------------------------------------

    def _new_transfer_id(self, kind: str, group_id: str) -> str:
        """Globally unique transfer id.

        The node's announce epoch is baked in: a rebuilt or reset stack
        restarts its counter, and without the epoch its ids would collide
        with ids the *previous* incarnation already used — which sit in
        every survivor's handled-sets and would silently swallow the new
        protocol messages.
        """
        epoch = getattr(self.mechanisms, "announce_epoch", 0)
        return (f"{kind}:{group_id}:{self.node_id}:e{epoch}:"
                f"{next(self._transfer_counter)}")

    def announce_join(self, binding: "ReplicaBinding",
                      *, with_base: bool = True,
                      with_bulk: bool = True) -> None:
        """Multicast this node's new replica into the total order; the
        delivery position of the ReplicaJoin starts the §5.1 protocol.

        When this node already holds a committed checkpoint for the group,
        its app-state digest is announced so responders sharing that base
        may answer with a page-level delta; ``with_base=False`` forces a
        full-snapshot transfer (used when a delta could not be applied).
        ``with_bulk=False`` suppresses the out-of-band bulk lane, forcing
        the bytes through the total order (the last-resort fallback after
        a failed bulk session)."""
        if binding.pending_transfer is not None:
            # A superseded attempt may still hold an out-of-band session.
            self.bulk.abort_session(binding.pending_transfer)
        transfer_id = self._new_transfer_id("rec", binding.group_id)
        binding.pending_transfer = transfer_id
        binding.sync_point_seen = False
        binding.active_span = transfer_id
        self.spans.start("recovery.total", span_id=transfer_id,
                         node=self.node_id, group=binding.group_id)
        self.spans.start("recovery.announce",
                         span_id=f"{transfer_id}/announce",
                         parent=transfer_id, node=self.node_id,
                         group=binding.group_id)
        self.tracer.emit("recovery", "join_announced", node=self.node_id,
                         group=binding.group_id, transfer=transfer_id)
        base_digest = ""
        if (with_base and self.config.delta_state_transfer
                and binding.log.checkpoint is not None):
            base_digest = binding.log.checkpoint.app_digest
        self.mechanisms.multicast(
            ReplicaJoin(binding.group_id, self.node_id, transfer_id,
                        base_digest=base_digest,
                        bulk_ok=with_bulk and self.config.bulk_lane,
                        store_position=binding.store_position)
        )
        self._arm_retry(binding, transfer_id)

    def _arm_retry(self, binding: "ReplicaBinding", transfer_id: str) -> None:
        def retry() -> None:
            if (binding.status == STATUS_RECOVERING
                    and binding.pending_transfer == transfer_id
                    and self.mechanisms.bindings.get(binding.group_id) is binding):
                self.tracer.emit("recovery", "retry", node=self.node_id,
                                 group=binding.group_id)
                # Close the superseded attempt's spans before re-announcing.
                self.spans.end(f"{transfer_id}/announce", outcome="retry")
                self.spans.end(transfer_id, outcome="retry")
                self.announce_join(binding)
        self.mechanisms.process.call_after(
            self.config.recovery_retry_timeout, retry
        )

    def handle_replica_join(self, envelope: ReplicaJoin) -> None:
        """All nodes see the join; operational responders fabricate the
        get_state() invocation (duplicates collapse at GET delivery)."""
        info = self.mechanisms.groups.get(envelope.group_id)
        binding = self.mechanisms.bindings.get(envelope.group_id)
        if info is None or binding is None:
            return
        self._note_cold_bid(envelope)
        if envelope.node_id == self.node_id:
            # Our own announcement came back: if nobody can answer it and
            # we hold a journal, start bidding for the cold-seed role.
            self._maybe_arm_cold_window(info, binding)
            return
        if binding.operational and info.responds_to_recovery(self.node_id):
            self.mechanisms.multicast(StateGet(
                group_id=envelope.group_id,
                transfer_id=envelope.transfer_id,
                purpose=TransferPurpose.RECOVERY,
                initiator=self.node_id,
                target_node=envelope.node_id,
                base_digest=envelope.base_digest,
                bulk_ok=envelope.bulk_ok,
            ))

    # ------------------------------------------------------------------
    # Cold-boot election (whole-dead groups, repro.store)
    # ------------------------------------------------------------------

    def _has_responder(self, info: GroupInfo) -> bool:
        return any(info.responds_to_recovery(node)
                   for node in info.member_nodes)

    def _note_cold_bid(self, envelope: ReplicaJoin) -> None:
        """Every join announcement doubles as a cold-boot bid: it carries
        how far the announcer's durable store covers the group
        (``store_position``; -1 = no store, never a candidate)."""
        if envelope.store_position < 0:
            return
        bids = self._cold_bids.setdefault(envelope.group_id, {})
        bids[envelope.node_id] = (envelope.store_position,
                                  self.mechanisms.process.scheduler.now)

    def _maybe_arm_cold_window(self, info: GroupInfo,
                               binding: "ReplicaBinding") -> None:
        if (binding.store is None
                or binding.status != STATUS_RECOVERING
                or self._has_responder(info)
                or binding.group_id in self._cold_windows):
            return
        self._cold_windows.add(binding.group_id)
        self.tracer.emit("store", "cold_window_armed", node=self.node_id,
                         group=binding.group_id,
                         store_position=binding.store_position)
        self.mechanisms.process.call_after(
            self.config.cold_boot_window,
            self._cold_window_expired, binding,
        )

    def _cold_window_expired(self, binding: "ReplicaBinding") -> None:
        group_id = binding.group_id
        self._cold_windows.discard(group_id)
        info = self.mechanisms.groups.get(group_id)
        if (info is None
                or self.mechanisms.bindings.get(group_id) is not binding
                or binding.status != STATUS_RECOVERING
                or binding.store is None):
            return
        if self._has_responder(info):
            return  # a live responder appeared; the normal ladder proceeds
        # Elect among the *fresh* bids: a better-covered candidate that
        # died mid-election must not block the group forever.  The horizon
        # covers two full announce-retry rounds, so any live candidate has
        # re-announced (and re-bid) within it.
        now = self.mechanisms.process.scheduler.now
        horizon = 2 * (self.config.cold_boot_window
                       + self.config.recovery_retry_timeout)
        fresh = {node: position
                 for node, (position, seen)
                 in self._cold_bids.get(group_id, {}).items()
                 if now - seen <= horizon}
        fresh[self.node_id] = binding.store_position
        winner = elect_cold_seed(fresh)
        if winner != self.node_id:
            best_position = fresh[winner]
            # The better candidate claims the seat; our announce retry will
            # recover from it once it is operational.  (If it is dead, its
            # bid ages out and the retry re-arms the window.)
            self.tracer.emit("store", "cold_window_lost", node=self.node_id,
                             group=group_id, winner=winner,
                             winner_position=best_position)
            return
        seed_id = self._new_transfer_id("seed", group_id)
        self.tracer.emit("store", "cold_seed_claimed", node=self.node_id,
                         group=group_id,
                         store_position=binding.store_position)
        self.mechanisms.multicast(ColdSeed(
            group_id, self.node_id, seed_id, binding.store_position,
        ))

    def handle_cold_seed(self, envelope: ColdSeed) -> None:
        """A candidate claimed the seed role; its delivery in the total
        order is the group's rebirth point (first claim wins — a live
        responder appearing first makes the claim stale)."""
        info = self.mechanisms.groups.get(envelope.group_id)
        if info is None:
            return
        binding = self.mechanisms.bindings.get(envelope.group_id)
        if self._has_responder(info):
            self.tracer.emit("store", "cold_seed_stale", node=self.node_id,
                             group=envelope.group_id, seed=envelope.node_id)
            return
        self._cold_bids.pop(envelope.group_id, None)
        self._cold_windows.discard(envelope.group_id)
        self.tracer.emit("store", "cold_seed", node=self.node_id,
                         group=envelope.group_id, seed=envelope.node_id,
                         store_position=envelope.store_position)
        if info.style.is_passive:
            info.promote(envelope.node_id)
        info.mark_operational(envelope.node_id)
        self.mechanisms.notify_cold_seed(envelope.group_id,
                                         envelope.node_id)
        if (envelope.node_id == self.node_id and binding is not None
                and binding.status == STATUS_RECOVERING):
            self._begin_seed_restore(info, binding, envelope)
        else:
            self.mechanisms.notify_member_operational(envelope.group_id,
                                                      envelope.node_id)
            self.mechanisms._sync_checkpoint_timer(info)

    def _begin_seed_restore(self, info: GroupInfo,
                            binding: "ReplicaBinding",
                            envelope: ColdSeed) -> None:
        """The seed restores itself from its own journal: newest durable
        checkpoint, then local log replay — no network rung at all."""
        if binding.pending_transfer is not None:
            # Supersede the (unanswerable) network transfer in flight.
            self.bulk.abort_session(binding.pending_transfer)
            self.spans.end(f"{binding.pending_transfer}/announce",
                           outcome="cold_seed")
            self.spans.end(binding.pending_transfer, outcome="cold_seed")
        binding.pending_transfer = envelope.transfer_id
        binding.sync_point_seen = True      # enqueue everything from now on
        binding.active_span = envelope.transfer_id
        # Opens the auditor's quiesced window: the journal restore applies
        # set_state (and replays executions) with no network transfer.
        self.tracer.emit("recovery", "cold_seed_restore", node=self.node_id,
                         group=binding.group_id,
                         transfer=envelope.transfer_id)
        self.spans.start("recovery.coldboot", span_id=envelope.transfer_id,
                         node=self.node_id, group=binding.group_id,
                         style=info.style.value,
                         has_checkpoint=binding.log.checkpoint is not None)
        self.spans.start("recovery.store.restore",
                         span_id=f"{envelope.transfer_id}/restore",
                         parent=envelope.transfer_id, node=self.node_id,
                         group=binding.group_id,
                         messages=binding.log.log_length)
        if info.style.is_passive:
            binding.infra.role = ROLE_PRIMARY
        if not binding.container.instantiated:
            # Cold passive: launch the backup process first (§3.3).
            servant = self.mechanisms.factory.create_object(
                info.type_id, info.app_version
            )
            self.mechanisms.process.call_after(
                self.config.cold_start_delay,
                self._seed_with_servant, binding, servant,
            )
            return
        self._seed_restore(binding)

    def _seed_with_servant(self, binding: "ReplicaBinding",
                           servant) -> None:
        binding.container.install_servant(servant)
        self._seed_restore(binding)

    def _seed_restore(self, binding: "ReplicaBinding") -> None:
        checkpoint = binding.log.checkpoint
        if checkpoint is None:
            # The group died before any durable checkpoint: re-run the
            # application from its deterministic initial state and replay
            # the whole journaled log over it.
            binding.container.start_application()
            self._seed_replay(binding)
            return
        binding.container.submit_set_state(
            checkpoint.app_state,
            lambda: self._seed_apply_piggyback(binding, checkpoint),
        )

    def _seed_apply_piggyback(self, binding: "ReplicaBinding",
                              checkpoint: CheckpointRecord) -> None:
        infra = InfraState.decode(checkpoint.infra_state)
        self._apply_orb_state(binding, checkpoint.orb_state, infra)
        if self.config.sync_infra_state:
            binding.infra.adopt(infra, keep_role=True)
        binding.container.resume_application()
        self._seed_replay(binding)

    def _seed_replay(self, binding: "ReplicaBinding") -> None:
        """Replay the journaled messages past the checkpoint, then go
        operational — the group is alive again, and every other replica
        recovers from this one over the ordinary network ladder."""
        replayed = binding.log.messages_since_checkpoint()
        root_span = binding.active_span
        replay_span = None
        if root_span is not None:
            self.spans.end(f"{root_span}/restore")
            replay_span = self.spans.start(
                "recovery.store.replay", span_id=f"{root_span}/replay",
                parent=root_span, node=self.node_id,
                group=binding.group_id, messages=len(replayed),
            )
        self.tracer.emit("store", "seed_replay", node=self.node_id,
                         group=binding.group_id, messages=len(replayed))
        for envelope in replayed:
            if envelope.kind is OpKind.REQUEST:
                binding.container.submit_request(envelope.connection,
                                                 envelope.iiop_bytes)
            else:
                self.mechanisms._deliver_reply(binding, envelope)
        if replay_span is not None:
            self.spans.end(replay_span)
        self._become_operational(binding, resume=False)

    # ------------------------------------------------------------------
    # get_state (§5.1 steps i-iii)
    # ------------------------------------------------------------------

    def handle_state_get(self, envelope: StateGet) -> None:
        if envelope.transfer_id in self._handled_gets:
            return
        self._handled_gets.add(envelope.transfer_id)
        info = self.mechanisms.groups.get(envelope.group_id)
        binding = self.mechanisms.bindings.get(envelope.group_id)
        if info is None or binding is None:
            return
        # The GET's position bounds what the matching checkpoint covers.
        binding.log.mark_get_position(envelope.transfer_id,
                                      binding.delivery_position)
        if (envelope.purpose is TransferPurpose.RECOVERY
                and envelope.target_node == self.node_id
                and binding.status == STATUS_RECOVERING):
            # Step (i) at the new replica: the logged get_state() marks the
            # synchronization point; normal messages enqueue from here on.
            binding.sync_point_seen = True
            binding.pending_transfer = envelope.transfer_id
            self.spans.end(f"{envelope.transfer_id}/announce")
            self.tracer.emit("recovery", "sync_point", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id)
            return
        if binding.operational and info.responds_to_recovery(self.node_id):
            # Steps (i)-(iii) at an existing replica: deliver get_state()
            # through the replica's queue (so it waits for quiescence) and
            # fabricate the set_state() from its return value.  The
            # duplicate filter is snapshotted *now*, at the GET's position
            # in the total order: messages ordered after the GET must not
            # appear as already-seen in the transferred state.
            self._filter_snapshots[envelope.transfer_id] = \
                binding.infra.duplicates.capture()
            if (envelope.purpose is TransferPurpose.RECOVERY
                    and envelope.bulk_ok and self.config.bulk_lane):
                # A bulk fetch may race the (quiescence-gated) capture:
                # mark the transfer pending so early fetches are NACKed
                # "pending" (retry) instead of "unknown" (drop sponsor).
                self.bulk.store.note_pending(envelope.transfer_id)
            self.spans.start(
                "recovery.capture",
                span_id=f"{envelope.transfer_id}/capture@{self.node_id}",
                parent=envelope.transfer_id, node=self.node_id,
                group=envelope.group_id,
            )
            binding.container.submit_get_state(
                envelope.transfer_id,
                lambda transfer_id, app_state, app_digest, e=envelope:
                    self._complete_get(e, app_state, app_digest),
            )

    def _complete_get(self, envelope: StateGet, app_state: bytes,
                      app_digest: str) -> None:
        binding = self.mechanisms.bindings.get(envelope.group_id)
        if binding is None or not binding.operational:
            return
        orb_blob = binding.orb_state.capture()
        infra_blob = binding.infra.capture(
            duplicates_override=self._filter_snapshots.pop(
                envelope.transfer_id, None
            )
        )
        self.spans.end(f"{envelope.transfer_id}/capture@{self.node_id}",
                       app_bytes=len(app_state))
        # Every responder captured its state independently at the same
        # total-order position; the digests must agree (audited online).
        self.tracer.emit("audit", "state_digest", node=self.node_id,
                         group=envelope.group_id,
                         transfer=envelope.transfer_id, role="responder",
                         digest=app_digest)
        wire_state, app_delta = self._encode_app_state(binding, envelope,
                                                       app_state)
        app_manifest = False
        if (envelope.purpose is TransferPurpose.RECOVERY
                and envelope.bulk_ok and self.config.bulk_lane
                and not app_delta
                and len(wire_state) >= self.config.bulk_min_bytes):
            # Large full snapshot for a bulk-capable joiner: keep only the
            # page manifest in the total order, stash the bytes for
            # out-of-band serving.  (Deltas and small snapshots stay
            # in-order — one small message beats a fetch round-trip.)
            page_size = self.config.delta_page_size
            self.bulk.store.stash(envelope.transfer_id, envelope.group_id,
                                  wire_state, page_size)
            manifest = build_manifest(wire_state, page_size)
            wire_state = encode_manifest(manifest)
            app_manifest = True
            self.tracer.emit("bulk", "manifest_sent", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             pages=manifest.page_count,
                             state_bytes=manifest.total_length,
                             manifest_bytes=len(wire_state))
        else:
            self.tracer.add("bulk.inorder.bytes", len(wire_state))
        self.spans.start(
            "recovery.xfer",
            span_id=f"{envelope.transfer_id}/xfer@{self.node_id}",
            parent=envelope.transfer_id, node=self.node_id,
            group=envelope.group_id, app_bytes=len(wire_state),
            piggyback_bytes=len(orb_blob) + len(infra_blob),
        )
        self.tracer.emit("recovery", "set_state_multicast",
                         node=self.node_id, group=envelope.group_id,
                         app_bytes=len(wire_state),
                         piggyback_bytes=len(orb_blob) + len(infra_blob))
        self.mechanisms.multicast(StateSet(
            group_id=envelope.group_id,
            transfer_id=envelope.transfer_id,
            purpose=envelope.purpose,
            source_node=self.node_id,
            target_node=envelope.target_node,
            app_state=wire_state,
            orb_state=orb_blob,
            infra_state=infra_blob,
            app_delta=app_delta,
            app_manifest=app_manifest,
        ))
        if envelope.purpose is TransferPurpose.CHECKPOINT:
            self._pending_checkpoints.discard(envelope.transfer_id)

    def _encode_app_state(self, binding: "ReplicaBinding",
                          envelope: StateGet,
                          app_state: bytes) -> "tuple":
        """Choose the ``StateSet`` body: a page-level delta against the
        base named by the GET (iff this responder holds that exact base and
        the delta actually saves bytes), else the full snapshot."""
        if not (self.config.delta_state_transfer and envelope.base_digest):
            return app_state, False
        checkpoint = binding.log.checkpoint
        if (checkpoint is None
                or checkpoint.app_digest != envelope.base_digest):
            self.tracer.emit("delta", "full_sent", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             reason="base_mismatch",
                             full_bytes=len(app_state))
            return app_state, False
        delta = compute_delta(checkpoint.app_state, app_state,
                              self.config.delta_page_size)
        encoded = encode_delta(delta)
        if len(encoded) >= len(app_state):
            self.tracer.emit("delta", "full_sent", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             reason="delta_not_smaller",
                             full_bytes=len(app_state))
            return app_state, False
        self.tracer.emit("delta", "delta_sent", node=self.node_id,
                         group=envelope.group_id,
                         transfer=envelope.transfer_id,
                         pages_sent=delta.pages_sent,
                         pages_skipped=delta.pages_skipped,
                         wire_bytes=len(encoded),
                         full_bytes=len(app_state))
        return encoded, True

    # ------------------------------------------------------------------
    # set_state (§5.1 steps iv-vi)
    # ------------------------------------------------------------------

    def handle_state_set(self, envelope: StateSet) -> None:
        if envelope.transfer_id in self._handled_sets:
            return  # duplicate fabricated set_state (other responders)
        self._handled_sets.add(envelope.transfer_id)
        # The winning set_state has arrived: the wire-transfer span ends at
        # its first delivery (the shared open-span set dedups later nodes).
        self.spans.end(
            f"{envelope.transfer_id}/xfer@{envelope.source_node}",
            app_bytes=len(envelope.app_state),
        )
        info = self.mechanisms.groups.get(envelope.group_id)
        if info is None:
            return
        binding = self.mechanisms.bindings.get(envelope.group_id)
        if envelope.app_manifest:
            self._handle_manifest_set(info, binding, envelope)
            return
        full_app = self._reconstruct_app_state(binding, envelope)
        if envelope.purpose is TransferPurpose.CHECKPOINT:
            self._handle_checkpoint_set(info, binding, envelope, full_app)
            return
        # RECOVERY: the SET's delivery position is the logical point at
        # which the group regards the target as synchronized.
        info.mark_operational(envelope.target_node)
        if envelope.target_node == self.node_id and binding is not None \
                and binding.status == STATUS_RECOVERING:
            if full_app is None:
                # The delta's base no longer matches this node's checkpoint
                # (e.g. a checkpoint landed between announce and SET):
                # restart the protocol asking for a full snapshot.
                self.tracer.emit("recovery", "delta_fallback_reannounce",
                                 node=self.node_id,
                                 group=envelope.group_id,
                                 transfer=envelope.transfer_id)
                self.spans.end(envelope.transfer_id,
                               outcome="delta_fallback")
                self.announce_join(binding, with_base=False)
                return
            self._apply_recovery_set(binding, envelope, full_app)
        else:
            if binding is not None and full_app is not None:
                self._align_checkpoint(binding, envelope, full_app)
            self.mechanisms.notify_member_operational(
                envelope.group_id, envelope.target_node
            )

    def _handle_manifest_set(self, info, binding, envelope: StateSet) -> None:
        """A ``set_state()`` whose body is a page manifest: the sync-point
        semantics are unchanged (the SET's delivery position is where the
        group regards the target as synchronized) but the bytes travel
        out-of-band, so only the target — which fetches and verifies them
        — applies state or commits a checkpoint."""
        if envelope.purpose is not TransferPurpose.RECOVERY:
            # The bulk lane never engages for checkpoints; a manifest
            # checkpoint is a protocol error from a newer/foreign sender.
            self.tracer.emit("bulk", "manifest_ignored", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id)
            return
        info.mark_operational(envelope.target_node)
        if envelope.target_node == self.node_id and binding is not None \
                and binding.status == STATUS_RECOVERING:
            self._begin_bulk_fetch(info, binding, envelope)
        else:
            self.mechanisms.notify_member_operational(
                envelope.group_id, envelope.target_node
            )

    def _begin_bulk_fetch(self, info, binding: "ReplicaBinding",
                          envelope: StateSet) -> None:
        """Target side: decode the in-order manifest and stripe the page
        fetches across the up-to-date sponsors."""
        try:
            manifest = decode_manifest(envelope.app_state)
        except StateTransferError as exc:
            self.tracer.emit("bulk", "manifest_bad", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             reason=type(exc).__name__)
            self.spans.end(envelope.transfer_id, outcome="bulk_fallback")
            self.announce_join(binding, with_bulk=False)
            return
        sponsors = [node for node in info.member_nodes
                    if node != self.node_id
                    and info.responds_to_recovery(node)]
        self.spans.start(
            "recovery.bulk", span_id=f"{envelope.transfer_id}/bulk",
            parent=envelope.transfer_id, node=self.node_id,
            group=envelope.group_id, pages=manifest.page_count,
            app_bytes=manifest.total_length, sponsors=len(sponsors),
        )
        self.bulk.start_session(
            envelope.transfer_id, envelope.group_id, manifest, sponsors,
            lambda blob, b=binding, e=envelope:
                self._bulk_fetch_done(b, e, blob),
        )

    def _bulk_fetch_done(self, binding: "ReplicaBinding",
                         envelope: StateSet, full_app) -> None:
        """The out-of-band session finished (every page verified) or
        failed (sponsors exhausted / digest mismatch)."""
        if (binding.status != STATUS_RECOVERING
                or binding.pending_transfer != envelope.transfer_id
                or self.mechanisms.bindings.get(binding.group_id)
                is not binding):
            return      # superseded by a retry or re-announce
        if full_app is None:
            self.spans.end(f"{envelope.transfer_id}/bulk", outcome="failed")
            self.tracer.emit("recovery", "bulk_fallback_reannounce",
                             node=self.node_id, group=envelope.group_id,
                             transfer=envelope.transfer_id)
            self.spans.end(envelope.transfer_id, outcome="bulk_fallback")
            self.announce_join(binding, with_bulk=False)
            return
        self.spans.end(f"{envelope.transfer_id}/bulk",
                       app_bytes=len(full_app))
        self._apply_recovery_set(binding, envelope, full_app)

    def _reconstruct_app_state(self, binding, envelope: StateSet):
        """Recover the full app-state snapshot from the ``StateSet`` body.

        Returns the snapshot bytes, or ``None`` when the body is a delta
        this node cannot apply (no base checkpoint, or the base diverged) —
        callers fall back to requesting a full transfer."""
        if not envelope.app_delta:
            return envelope.app_state
        checkpoint = binding.log.checkpoint if binding is not None else None
        if checkpoint is None:
            self.tracer.emit("delta", "fallback", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             reason="no_base_checkpoint")
            return None
        try:
            delta = decode_delta(envelope.app_state)
            full_app = apply_delta(checkpoint.app_state, delta)
        except StateTransferError as exc:
            self.tracer.emit("delta", "fallback", node=self.node_id,
                             group=envelope.group_id,
                             transfer=envelope.transfer_id,
                             reason=type(exc).__name__)
            return None
        self.tracer.emit("delta", "delta_applied", node=self.node_id,
                         group=envelope.group_id,
                         transfer=envelope.transfer_id,
                         pages_sent=delta.pages_sent,
                         pages_skipped=delta.pages_skipped,
                         wire_bytes=len(envelope.app_state),
                         full_bytes=len(full_app))
        return full_app

    def _align_checkpoint(self, binding: "ReplicaBinding",
                          envelope: StateSet, full_app: bytes) -> None:
        """Commit a recovery transfer's state as this node's checkpoint.

        Every node holding the binding logs the reconstructed snapshot (plus
        the piggybacked blobs) under the transfer id, so all delta bases in
        the group stay aligned after a recovery — and the next failover
        restores from this fresher checkpoint.  The audit digest is emitted
        under the same ``<transfer>/commit`` key at every committing node;
        the records are identical by construction."""
        committed = binding.log.commit_checkpoint(
            envelope.transfer_id, full_app,
            envelope.orb_state, envelope.infra_state,
        )
        self._persist_checkpoint(binding, committed)
        self.tracer.emit("recovery", "checkpoint_aligned",
                         node=self.node_id, group=envelope.group_id,
                         app_bytes=len(full_app))
        self.tracer.emit("audit", "state_digest", node=self.node_id,
                         group=envelope.group_id,
                         transfer=f"{envelope.transfer_id}/commit",
                         role="checkpoint", digest=committed.digest)

    def _persist_checkpoint(self, binding: "ReplicaBinding",
                            record: CheckpointRecord) -> None:
        """Journal a committed checkpoint (and let the store reclaim the
        messages it covers)."""
        if binding.store is None:
            return
        binding.store.commit_checkpoint(record)
        binding.store_position = max(binding.store_position,
                                     record.position, 0)

    def _handle_checkpoint_set(self, info, binding, envelope: StateSet,
                               full_app) -> None:
        if binding is None:
            return
        if full_app is None:
            # Cannot reconstruct this checkpoint from the delta: ask the
            # group for a fresh full checkpoint so this node regains a base.
            self._request_checkpoint_resync(envelope.group_id)
            return
        committed = binding.log.commit_checkpoint(
            envelope.transfer_id, full_app,
            envelope.orb_state, envelope.infra_state,
        )
        self._persist_checkpoint(binding, committed)
        self._resync_requested.discard(envelope.group_id)
        self.tracer.emit("recovery", "checkpoint_logged", node=self.node_id,
                         group=envelope.group_id,
                         app_bytes=len(full_app))
        # All nodes log the same checkpoint: compare the committed records
        # (all three state blobs) under their own key, separate from the
        # responders' app-state-only capture digests.
        committed = binding.log.checkpoint
        if committed is not None:
            self.tracer.emit("audit", "state_digest", node=self.node_id,
                             group=envelope.group_id,
                             transfer=f"{envelope.transfer_id}/commit",
                             role="checkpoint", digest=committed.digest)
        # Warm backups synchronize to every checkpoint (§3).
        if (info.style is ReplicationStyle.WARM_PASSIVE
                and info.role_of(self.node_id) == ROLE_BACKUP
                and binding.status == STATUS_OPERATIONAL
                and binding.container.instantiated):
            binding.container.submit_set_state(
                full_app,
                lambda b=binding, e=envelope: self._apply_piggyback(b, e),
            )

    def _request_checkpoint_resync(self, group_id: str) -> None:
        """Multicast a full-snapshot checkpoint GET for the whole group
        (at most one outstanding per group per node)."""
        if group_id in self._resync_requested:
            return
        self._resync_requested.add(group_id)
        transfer_id = self._new_transfer_id("ckpt", group_id)
        self.tracer.emit("delta", "resync_requested", node=self.node_id,
                         group=group_id, transfer=transfer_id)
        self.mechanisms.multicast(StateGet(
            group_id=group_id,
            transfer_id=transfer_id,
            purpose=TransferPurpose.CHECKPOINT,
            initiator=self.node_id,
        ))

    def _apply_recovery_set(self, binding: "ReplicaBinding",
                            envelope: StateSet, full_app: bytes) -> None:
        self.tracer.emit("recovery", "recovery_set_received",
                         node=self.node_id, group=binding.group_id,
                         app_bytes=len(full_app))
        # What the target received must match what the responders captured
        # — the digest is taken over the *reconstructed* snapshot, so a
        # delta-encoded transfer is audited end to end.
        self.tracer.emit("audit", "state_digest", node=self.node_id,
                         group=binding.group_id,
                         transfer=envelope.transfer_id, role="target",
                         digest=state_digest(full_app))
        apply_span = self.spans.start(
            "recovery.apply", span_id=f"{envelope.transfer_id}/apply",
            parent=envelope.transfer_id, node=self.node_id,
            group=binding.group_id, app_bytes=len(full_app),
        )
        if not binding.container.instantiated:
            # A new cold-passive backup: its "state" is the logged
            # checkpoint; it will be launched only at failover.
            binding.log.mark_get_position(envelope.transfer_id, 0)
            self._align_checkpoint(binding, envelope, full_app)
            self.spans.end(apply_span, checkpoint_only=True)
            self._become_operational(binding, resume=False)
            return
        self._align_checkpoint(binding, envelope, full_app)
        binding.container.submit_set_state(
            full_app,
            lambda: self._finish_recovery(binding, envelope),
        )

    def _finish_recovery(self, binding: "ReplicaBinding",
                         envelope: StateSet) -> None:
        # Assignment order per §4.3: application state is already in (the
        # set_state just completed); now ORB/POA-level, then infrastructure.
        self.spans.end(f"{envelope.transfer_id}/apply")
        assign_span = self.spans.start(
            "recovery.assign", span_id=f"{envelope.transfer_id}/assign",
            parent=envelope.transfer_id, node=self.node_id,
            group=binding.group_id,
        )
        infra = InfraState.decode(envelope.infra_state)
        self._apply_orb_state(binding, envelope.orb_state, infra)
        if self.config.sync_infra_state:
            binding.infra.adopt(infra, keep_role=True)
        self.spans.end(assign_span)
        self._become_operational(binding, resume=True)

    def _apply_piggyback(self, binding: "ReplicaBinding",
                         envelope: StateSet) -> None:
        """Warm backup: absorb the checkpoint's piggybacked state."""
        infra = InfraState.decode(envelope.infra_state)
        self._apply_orb_state(binding, envelope.orb_state, infra)
        if self.config.sync_infra_state:
            binding.infra.adopt(infra, keep_role=True)

    def _apply_orb_state(self, binding: "ReplicaBinding", orb_blob: bytes,
                         infra: InfraState) -> None:
        """Restore ORB/POA-level state from outside the ORB (§4.2)."""
        captured = OrbStateTracker.decode(orb_blob)
        if self.config.sync_orb_request_ids:
            for conn, last_id in captured.client_request_ids.items():
                awaiting = infra.awaiting.get(conn)
                # The replica will re-issue its in-flight invocations first
                # (in order), so the rewrite offset aligns the recovered
                # ORB's fresh counter with the oldest awaited id; with
                # nothing in flight, with the next unused id.
                offset = min(awaiting) if awaiting else last_id + 1
                binding.interceptor.set_request_id_offset(conn, offset)
                binding.orb_state.client_request_ids[conn] = last_id
        if self.config.sync_handshake:
            for conn, handshake in captured.handshakes.items():
                # Artificially inject the stored client handshake into the
                # new server replica's ORB ahead of any client request; the
                # "response" stays inside Eternal and is discarded (§4.2.2).
                binding.container.orb.decode_request(conn.as_str(), handshake)
                binding.orb_state.handshakes.setdefault(conn, handshake)
                self.tracer.emit("recovery", "handshake_replayed",
                                 node=self.node_id, group=binding.group_id,
                                 conn=conn.as_str())

    def _become_operational(self, binding: "ReplicaBinding",
                            *, resume: bool) -> None:
        binding.status = STATUS_OPERATIONAL
        binding.sync_point_seen = False
        binding.pending_transfer = None
        root_span = binding.active_span
        binding.active_span = None
        if resume:
            binding.container.resume_application()
        drain_span = None
        if root_span is not None:
            drain_span = self.spans.start(
                "recovery.drain", span_id=f"{root_span}/drain",
                parent=root_span, node=self.node_id,
                group=binding.group_id, drained=len(binding.enqueued),
            )
        self._drain(binding)
        if drain_span is not None:
            self.spans.end(drain_span)
            self.spans.end(root_span, outcome="operational")
        self.tracer.emit("recovery", "recovered", node=self.node_id,
                         group=binding.group_id)
        info = self.mechanisms.groups.get(binding.group_id)
        if info is not None:
            info.mark_operational(self.node_id)
            self.mechanisms._sync_checkpoint_timer(info)
        self.mechanisms.notify_member_operational(binding.group_id,
                                                  self.node_id)

    def _drain(self, binding: "ReplicaBinding") -> None:
        """Step (vi): deliver the enqueued messages, in order."""
        while binding.enqueued:
            position, envelope = binding.enqueued.pop(0)
            self.mechanisms.route_iiop(binding, envelope, position)

    # ------------------------------------------------------------------
    # Periodic checkpointing (§3.3)
    # ------------------------------------------------------------------

    def checkpoint_initiator(self, info: GroupInfo) -> Optional[str]:
        """Which node fabricates this group's periodic checkpoints.

        The primary for the passive styles (§3.3).  Active replication
        needs no checkpoints in the paper — but a durable store must be
        fed, so with a store configured the lowest operational executor
        initiates; without one, nobody does (``None``), preserving the
        paper's behaviour."""
        if info.style.is_passive:
            return info.primary_node
        if self.mechanisms.store is None:
            return None
        candidates = sorted(node for node in info.operational
                            if info.executes(node))
        return candidates[0] if candidates else None

    def initiate_checkpoint(self, group_id: str) -> None:
        """Timer tick on the initiator's node: fabricate a checkpoint
        get_state() unless one is still in flight."""
        info = self.mechanisms.groups.get(group_id)
        binding = self.mechanisms.bindings.get(group_id)
        if info is None or binding is None or not binding.operational:
            return
        if self.checkpoint_initiator(info) != self.node_id:
            return
        pending = [t for t in self._pending_checkpoints
                   if t.startswith(f"ckpt:{group_id}:")]
        if pending:
            return
        transfer_id = self._new_transfer_id("ckpt", group_id)
        self._pending_checkpoints.add(transfer_id)
        # Name the previous checkpoint as the delta base: every node holding
        # the binding committed an identical record, so the responder can
        # ship only the pages that changed since the last checkpoint.
        base_digest = ""
        if self.config.delta_state_transfer and binding.log.checkpoint:
            base_digest = binding.log.checkpoint.app_digest
        self.tracer.emit("recovery", "checkpoint_initiated",
                         node=self.node_id, group=group_id)
        self.mechanisms.multicast(StateGet(
            group_id=group_id,
            transfer_id=transfer_id,
            purpose=TransferPurpose.CHECKPOINT,
            initiator=self.node_id,
            base_digest=base_digest,
        ))

    # ------------------------------------------------------------------
    # Failover (§3.2, §3.3)
    # ------------------------------------------------------------------

    def begin_failover(self, group_id: str) -> None:
        """This node's backup was promoted: restore state from the logged
        checkpoint, replay the logged messages, then go operational."""
        info = self.mechanisms.groups.get(group_id)
        binding = self.mechanisms.bindings.get(group_id)
        if info is None or binding is None:
            return
        binding.infra.role = ROLE_PRIMARY
        binding.status = STATUS_RECOVERING
        binding.sync_point_seen = True      # enqueue everything from now on
        failover_id = self._new_transfer_id("fo", group_id)
        binding.active_span = failover_id
        self.spans.start("failover.total", span_id=failover_id,
                         node=self.node_id, group=group_id,
                         style=info.style.value)
        self.spans.start("failover.restore",
                         span_id=f"{failover_id}/restore",
                         parent=failover_id, node=self.node_id,
                         group=group_id,
                         has_checkpoint=binding.log.checkpoint is not None)
        self.tracer.emit("recovery", "failover_begin", node=self.node_id,
                         group=group_id,
                         style=info.style.value,
                         log_length=binding.log.log_length,
                         has_checkpoint=binding.log.checkpoint is not None)
        if not binding.container.instantiated:
            # Cold passive: launch the backup process first (§3.3).
            servant = self.mechanisms.factory.create_object(
                info.type_id, info.app_version
            )
            self.mechanisms.process.call_after(
                self.config.cold_start_delay,
                self._failover_with_servant, binding, servant,
            )
            return
        self._failover_restore(binding)

    def _failover_with_servant(self, binding: "ReplicaBinding",
                               servant) -> None:
        binding.container.install_servant(servant)
        self._failover_restore(binding)

    def _failover_restore(self, binding: "ReplicaBinding") -> None:
        checkpoint = binding.log.checkpoint
        if checkpoint is None:
            # The primary failed before the first checkpoint: the fresh
            # servant is at the deterministic initial state; re-run the
            # application from the start and replay the whole log.
            binding.container.start_application()
            self._failover_replay(binding)
            return
        binding.container.submit_set_state(
            checkpoint.app_state,
            lambda: self._failover_apply_piggyback(binding, checkpoint),
        )

    def _failover_apply_piggyback(self, binding: "ReplicaBinding",
                                  checkpoint: CheckpointRecord) -> None:
        infra = InfraState.decode(checkpoint.infra_state)
        self._apply_orb_state(binding, checkpoint.orb_state, infra)
        if self.config.sync_infra_state:
            binding.infra.adopt(infra, keep_role=True)
        binding.infra.role = ROLE_PRIMARY
        binding.container.resume_application()
        self._failover_replay(binding)

    def _failover_replay(self, binding: "ReplicaBinding") -> None:
        """Deliver the logged messages (since the checkpoint) to the new
        primary before allowing it to become operational (§3.3)."""
        replayed = binding.log.messages_since_checkpoint()
        root_span = binding.active_span
        replay_span = None
        if root_span is not None:
            self.spans.end(f"{root_span}/restore")
            replay_span = self.spans.start(
                "failover.replay", span_id=f"{root_span}/replay",
                parent=root_span, node=self.node_id,
                group=binding.group_id, messages=len(replayed),
            )
        self.tracer.emit("recovery", "failover_replay", node=self.node_id,
                         group=binding.group_id, messages=len(replayed))
        for envelope in replayed:
            if envelope.kind is OpKind.REQUEST:
                binding.container.submit_request(envelope.connection,
                                                 envelope.iiop_bytes)
            else:
                self.mechanisms._deliver_reply(binding, envelope)
        if replay_span is not None:
            self.spans.end(replay_span)
        self._become_operational(binding, resume=False)
