"""Out-of-band bulk lane for recovery state transfer.

The paper's §5.1 protocol moves every byte of a fabricated ``set_state()``
through the Totem total order, so recovery time grows linearly with state
size (Figure 6) and fault-free traffic stalls behind the transfer.  The
paper's actual contribution, though, is *where* state is assigned — at the
sync point, atomically — not *how* the bytes travel.  This module keeps
only the sync markers in the total order and moves the bytes out-of-band:

* the fabricated ``set_state()`` carries a :class:`PageManifest` — the
  per-page CRC32s, total length, and whole-state digest of the snapshot —
  instead of the snapshot itself;
* every responder stashes its captured snapshot in a :class:`BulkStore`
  keyed by the transfer id (snapshots are captured at the same total-order
  position, so they are byte-identical across responders — the online
  auditor checks exactly this);
* the joining replica runs a :class:`BulkSession` that stripes page-range
  fetches across all up-to-date sponsors over ``Transport.unicast(...,
  oob=True)``, verifies each page against the manifest, re-fetches stalled
  stripes, restripes to survivors when a sponsor dies, and only when every
  page verifies hands the reassembled snapshot back to the recovery
  mechanisms for the paper's atomic assignment at the sync point.

Degraded-mode ordering: stalled stripe -> retransmit; sponsor exhausted ->
drop and restripe over survivors; no sponsors left (or manifest digest
mismatch) -> the session fails and recovery re-announces asking for the
classic in-order full transfer.  The bulk lane is therefore strictly an
optimization: correctness never depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.core.statedelta import PAGE_SIZE, page_digests, split_pages
from repro.errors import StateTransferError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.obs.audit import state_digest
from repro.totem.wire import BulkFetch, BulkNack, BulkPage

#: Wire-format version of the encoded manifest body (bump on layout change).
MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# Page manifest: the only state-transfer payload left in the total order
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PageManifest:
    """Integrity summary of one snapshot: everything a joining replica
    needs to fetch, verify, and reassemble the bytes out-of-band."""

    state_digest: str           # whole-snapshot digest (repro.obs.audit)
    total_length: int           # byte length of the snapshot
    page_size: int
    page_crcs: Tuple[int, ...]  # CRC32 of each page, in order

    @property
    def page_count(self) -> int:
        return len(self.page_crcs)


def build_manifest(blob: bytes, page_size: int = PAGE_SIZE) -> PageManifest:
    """Summarize ``blob`` as a :class:`PageManifest`."""
    return PageManifest(
        state_digest=state_digest(blob),
        total_length=len(blob),
        page_size=page_size,
        page_crcs=tuple(page_digests(blob, page_size)),
    )


def encode_manifest(manifest: PageManifest) -> bytes:
    """Serialize a manifest as the versioned CDR body of a ``StateSet``."""
    out = CdrOutputStream()
    out.write_octet(MANIFEST_VERSION)
    out.write_string(manifest.state_digest)
    out.write_ulong(manifest.total_length)
    out.write_ulong(manifest.page_size)
    out.write_ulong(len(manifest.page_crcs))
    for tag in manifest.page_crcs:
        out.write_ulong(tag)
    return out.getvalue()


def decode_manifest(data: bytes) -> PageManifest:
    """Inverse of :func:`encode_manifest`.

    Raises :class:`StateTransferError` for any malformed body, so the
    receiver has a single exception type to map onto the in-order
    fallback.
    """
    try:
        inp = CdrInputStream(data)
        version = inp.read_octet()
        if version != MANIFEST_VERSION:
            raise StateTransferError(
                f"unknown manifest body version {version}")
        digest = inp.read_string()
        total_length = inp.read_ulong()
        page_size = inp.read_ulong()
        if page_size < 1:
            raise StateTransferError(f"bad manifest page size {page_size}")
        count = inp.read_ulong()
        crcs = tuple(inp.read_ulong() for _ in range(count))
    except UnmarshalError as exc:
        raise StateTransferError(f"malformed manifest body: {exc}") from exc
    expected = -(-total_length // page_size) if total_length else 0
    if count != expected:
        raise StateTransferError(
            f"manifest carries {count} page CRCs for a {total_length}-byte "
            f"snapshot of {page_size}-byte pages (expected {expected})"
        )
    return PageManifest(digest, total_length, page_size, crcs)


def _runs(indices: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted index sequence into inclusive (first, last) runs."""
    runs: List[Tuple[int, int]] = []
    for index in indices:
        if runs and index == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], index)
        else:
            runs.append((index, index))
    return runs


# ---------------------------------------------------------------------------
# Responder side: the snapshot stash
# ---------------------------------------------------------------------------

@dataclass
class _StoreEntry:
    group_id: str
    pages: List[bytes]
    crcs: List[int]
    expiry: Any = None          # TimerHandle


class BulkStore:
    """Responder-side stash of captured snapshots, served page by page.

    A snapshot is stashed under its transfer id the moment the responder's
    in-order manifest is multicast, and expires after
    ``bulk_store_ttl`` — by then the target has either fetched it or
    fallen back to the in-order path.  Fetches for a transfer the store
    only knows as *pending* (capture still in flight behind quiescence)
    are NACKed ``"pending"`` so the target's watchdog retries instead of
    dropping the sponsor.
    """

    def __init__(self, lane: "BulkLane") -> None:
        self.lane = lane
        self._entries: Dict[str, _StoreEntry] = {}
        self._pending: Dict[str, Any] = {}      # session_id -> TimerHandle

    def __len__(self) -> int:
        return len(self._entries)

    def note_pending(self, session_id: str) -> None:
        """Record that a capture for ``session_id`` is in flight, so early
        fetches are NACKed ``"pending"`` rather than ``"unknown"``."""
        if session_id in self._entries or session_id in self._pending:
            return
        self._pending[session_id] = self.lane.host.call_after(
            self.lane.config.bulk_store_ttl, self._expire_pending, session_id,
        )

    def _expire_pending(self, session_id: str) -> None:
        self._pending.pop(session_id, None)

    def stash(self, session_id: str, group_id: str, blob: bytes,
              page_size: int) -> None:
        """Stash ``blob`` for out-of-band serving under ``session_id``."""
        handle = self._pending.pop(session_id, None)
        if handle is not None:
            handle.cancel()
        old = self._entries.get(session_id)
        if old is not None and old.expiry is not None:
            old.expiry.cancel()
        entry = _StoreEntry(
            group_id=group_id,
            pages=split_pages(blob, page_size),
            crcs=page_digests(blob, page_size),
        )
        entry.expiry = self.lane.host.call_after(
            self.lane.config.bulk_store_ttl, self._expire, session_id,
        )
        self._entries[session_id] = entry
        self.lane.tracer.emit("bulk", "stash", node=self.lane.node_id,
                              group=group_id, transfer=session_id,
                              pages=len(entry.pages), bytes=len(blob))

    def _expire(self, session_id: str) -> None:
        entry = self._entries.pop(session_id, None)
        if entry is not None:
            self.lane.tracer.emit("bulk", "stash_expired",
                                  node=self.lane.node_id,
                                  group=entry.group_id, transfer=session_id)

    def discard(self, session_id: str) -> None:
        entry = self._entries.pop(session_id, None)
        if entry is not None and entry.expiry is not None:
            entry.expiry.cancel()
        handle = self._pending.pop(session_id, None)
        if handle is not None:
            handle.cancel()

    # -- serving -------------------------------------------------------

    def handle_fetch(self, src: str, fetch: BulkFetch) -> None:
        entry = self._entries.get(fetch.session_id)
        if entry is None:
            reason = ("pending" if fetch.session_id in self._pending
                      else "unknown")
            nack = BulkNack(fetch.session_id, self.lane.node_id, reason)
            self.lane.tracer.emit("bulk", "nack", node=self.lane.node_id,
                                  transfer=fetch.session_id, dst=src,
                                  reason=reason)
            self.lane.unicast(fetch.requester, nack)
            return
        first = max(0, fetch.first_page)
        last = min(fetch.last_page, len(entry.pages) - 1)
        if first > last:
            nack = BulkNack(fetch.session_id, self.lane.node_id, "unknown")
            self.lane.unicast(fetch.requester, nack)
            return
        self.lane.tracer.emit("bulk", "fetch_served", node=self.lane.node_id,
                              group=entry.group_id,
                              transfer=fetch.session_id, dst=src,
                              first=first, last=last)
        self._send_burst(fetch.session_id, fetch.requester, first, last)

    def _send_burst(self, session_id: str, dst: str,
                    index: int, last: int) -> None:
        entry = self._entries.get(session_id)
        if entry is None:
            return                      # expired mid-serve; target retries
        burst_end = min(last, index + self.lane.config.bulk_burst_pages - 1)
        sent_bytes = 0
        for i in range(index, burst_end + 1):
            frame = BulkPage(session_id, self.lane.node_id, i,
                             entry.crcs[i], entry.pages[i])
            self.lane.unicast(dst, frame)
            sent_bytes += frame.size_bytes
        self.lane.tracer.emit("bulk", "pages_sent", node=self.lane.node_id,
                              group=entry.group_id, transfer=session_id,
                              dst=dst, count=burst_end - index + 1,
                              bytes=sent_bytes)
        if burst_end < last:
            self.lane.host.call_after(
                self.lane.config.bulk_burst_interval,
                self._send_burst, session_id, dst, burst_end + 1, last,
            )


# ---------------------------------------------------------------------------
# Target side: one striped fetch session
# ---------------------------------------------------------------------------

class BulkSession:
    """One joining replica's out-of-band fetch of one manifest's pages.

    Pages are striped across up to ``bulk_stripe_width`` sponsors; a
    watchdog re-fetches each sponsor's missing pages when its stripe
    stalls, drops the sponsor after ``bulk_max_retries`` fruitless
    retries (or an ``"unknown"`` NACK), restripes the remainder over the
    survivors, and fails the session — triggering the caller's in-order
    fallback — when no sponsor remains.
    """

    def __init__(
        self,
        lane: "BulkLane",
        session_id: str,
        group_id: str,
        manifest: PageManifest,
        sponsors: Sequence[str],
        callback: Callable[[Optional[bytes]], None],
    ) -> None:
        self.lane = lane
        self.session_id = session_id
        self.group_id = group_id
        self.manifest = manifest
        self.callback = callback
        self.active = True
        self._pages: Dict[int, bytes] = {}
        self._missing = set(range(manifest.page_count))
        self._sponsors = [s for s in sponsors if s != lane.node_id]
        self._assigned: Dict[str, set] = {}
        self._progress: Dict[str, int] = {}     # pages held at last watchdog
        self._retries: Dict[str, int] = {}
        self._watchdog: Any = None
        self.retransmits = 0
        self.restripes = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self.lane.tracer.emit(
            "bulk", "session_start", node=self.lane.node_id,
            group=self.group_id, transfer=self.session_id,
            pages=self.manifest.page_count, bytes=self.manifest.total_length,
            sponsors=len(self._sponsors),
        )
        if not self.manifest.page_count:
            self._complete()
            return
        if not self._sponsors:
            self._fail("no_sponsors")
            return
        self._stripe(self._sponsors)
        self._arm_watchdog()

    def _cancel_watchdog(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None

    def abort(self) -> None:
        """Deactivate without invoking the callback (superseded attempt)."""
        self.active = False
        self._cancel_watchdog()

    @property
    def stripes_in_flight(self) -> int:
        return sum(1 for pages in self._assigned.values() if pages)

    # -- striping ------------------------------------------------------

    def _stripe(self, sponsors: Sequence[str]) -> None:
        """Partition the missing pages into contiguous stripes, one per
        sponsor (capped at ``bulk_stripe_width``), and fetch each."""
        width = min(len(sponsors), self.lane.config.bulk_stripe_width)
        chosen = list(sponsors[:width])
        missing = sorted(self._missing)
        self._assigned = {s: set() for s in chosen}
        chunk = -(-len(missing) // width)
        for slot, sponsor in enumerate(chosen):
            part = missing[slot * chunk:(slot + 1) * chunk]
            self._assigned[sponsor].update(part)
            self._progress[sponsor] = len(self._pages)
            self._retries.setdefault(sponsor, 0)
            self._fetch(sponsor, part)

    def _fetch(self, sponsor: str, indices: Sequence[int]) -> None:
        for first, last in _runs(sorted(indices)):
            self.lane.tracer.emit(
                "bulk", "stripe_sent", node=self.lane.node_id,
                group=self.group_id, transfer=self.session_id,
                sponsor=sponsor, first=first, last=last,
            )
            self.lane.unicast(sponsor, BulkFetch(
                self.session_id, self.lane.node_id, first, last))

    # -- incoming frames -----------------------------------------------

    def handle_page(self, src: str, frame: BulkPage) -> None:
        if not self.active:
            return
        index = frame.index
        if index not in self._missing:
            return                      # duplicate or late retransmit
        if (index >= self.manifest.page_count
                or crc32(frame.page) != self.manifest.page_crcs[index]
                or frame.crc != self.manifest.page_crcs[index]):
            # A corrupt page never reaches the application: drop it and
            # let the watchdog re-fetch — the session survives.
            self.lane.tracer.emit("bulk", "page_crc_bad",
                                  node=self.lane.node_id,
                                  group=self.group_id,
                                  transfer=self.session_id,
                                  sponsor=src, index=index)
            return
        self._pages[index] = frame.page
        self._missing.discard(index)
        if not self._missing:
            self._complete()

    def handle_nack(self, src: str, nack: BulkNack) -> None:
        if not self.active:
            return
        if nack.reason == "pending":
            # Capture still in flight behind quiescence: let the watchdog
            # retry without burning this sponsor's retry budget.
            self._retries[src] = 0
            return
        self._drop_sponsor(src, reason=f"nack_{nack.reason}")

    # -- watchdog ------------------------------------------------------

    def _arm_watchdog(self) -> None:
        self._watchdog = self.lane.host.call_after(
            self.lane.config.bulk_retransmit_timeout, self._on_watchdog,
        )

    def _on_watchdog(self) -> None:
        if not self.active:
            return
        held = len(self._pages)
        for sponsor in list(self._assigned):
            outstanding = self._assigned[sponsor] & self._missing
            if not outstanding:
                continue
            if held > self._progress.get(sponsor, 0):
                # Pages arrived since the last tick; keep waiting.  (Held
                # count is a global proxy: good enough, since a stalled
                # sponsor stays stalled across ticks while others finish.)
                self._progress[sponsor] = held
                self._retries[sponsor] = 0
                continue
            self._retries[sponsor] = self._retries.get(sponsor, 0) + 1
            if self._retries[sponsor] > self.lane.config.bulk_max_retries:
                self._drop_sponsor(sponsor, reason="retries_exhausted")
                if not self.active:
                    return
                continue
            self.retransmits += 1
            self.lane.tracer.emit("bulk", "retransmit",
                                  node=self.lane.node_id,
                                  group=self.group_id,
                                  transfer=self.session_id,
                                  sponsor=sponsor,
                                  outstanding=len(outstanding),
                                  attempt=self._retries[sponsor])
            self._fetch(sponsor, outstanding)
        if self.active and self._missing:
            self._arm_watchdog()

    def _drop_sponsor(self, sponsor: str, *, reason: str) -> None:
        dropped = self._assigned.pop(sponsor, None)
        if dropped is None:
            return
        self._retries.pop(sponsor, None)
        self._progress.pop(sponsor, None)
        if sponsor in self._sponsors:
            self._sponsors.remove(sponsor)
        self.lane.tracer.emit("bulk", "sponsor_dropped",
                              node=self.lane.node_id, group=self.group_id,
                              transfer=self.session_id, sponsor=sponsor,
                              reason=reason)
        if not self._sponsors:
            self._fail("sponsors_exhausted")
            return
        self.restripes += 1
        self.lane.tracer.emit("bulk", "restripe", node=self.lane.node_id,
                              group=self.group_id, transfer=self.session_id,
                              survivors=len(self._sponsors),
                              missing=len(self._missing))
        self._stripe(self._sponsors)

    # -- completion ----------------------------------------------------

    def _complete(self) -> None:
        self.active = False
        self._cancel_watchdog()
        blob = b"".join(
            self._pages[i] for i in range(self.manifest.page_count)
        )[:self.manifest.total_length]
        if (len(blob) != self.manifest.total_length
                or state_digest(blob) != self.manifest.state_digest):
            # Per-page CRCs passed but the whole-state digest did not:
            # never assign unverified state — fall back to in-order.
            self._fail_now("digest_mismatch")
            return
        self.lane.tracer.emit("bulk", "session_complete",
                              node=self.lane.node_id, group=self.group_id,
                              transfer=self.session_id,
                              bytes=len(blob), retransmits=self.retransmits,
                              restripes=self.restripes)
        self.lane.finish_session(self.session_id)
        self.callback(blob)

    def _fail(self, reason: str) -> None:
        self.active = False
        self._cancel_watchdog()
        self._fail_now(reason)

    def _fail_now(self, reason: str) -> None:
        self.active = False
        self.lane.tracer.emit("bulk", "session_failed",
                              node=self.lane.node_id, group=self.group_id,
                              transfer=self.session_id, reason=reason,
                              missing=len(self._missing))
        self.lane.finish_session(self.session_id)
        self.callback(None)


# ---------------------------------------------------------------------------
# Facade wired into the Recovery Mechanisms
# ---------------------------------------------------------------------------

class BulkLane:
    """Per-node bulk-lane endpoint: one responder-side :class:`BulkStore`
    plus the target-side :class:`BulkSession` registry, attached to the
    transport's out-of-band unicast lane."""

    def __init__(self, host, endpoint, config, tracer, node_id: str) -> None:
        self.host = host
        self.endpoint = endpoint
        self.config = config
        self.tracer = tracer
        self.node_id = node_id
        self.store = BulkStore(self)
        self.sessions: Dict[str, BulkSession] = {}
        endpoint.register(BulkFetch, self._on_fetch)
        endpoint.register(BulkPage, self._on_page)
        endpoint.register(BulkNack, self._on_nack)

    # -- outgoing ------------------------------------------------------

    def unicast(self, dst: str, frame: Any) -> None:
        """Send one bulk frame out-of-band, counting its bytes."""
        self.tracer.add("bulk.oob.bytes", frame.size_bytes)
        self.endpoint.unicast(dst, frame, frame.size_bytes, oob=True)

    # -- sessions ------------------------------------------------------

    def start_session(
        self,
        session_id: str,
        group_id: str,
        manifest: PageManifest,
        sponsors: Sequence[str],
        callback: Callable[[Optional[bytes]], None],
    ) -> BulkSession:
        self.abort_session(session_id)
        session = BulkSession(self, session_id, group_id, manifest,
                              sponsors, callback)
        self.sessions[session_id] = session
        session.start()
        return session

    def abort_session(self, session_id: str) -> None:
        session = self.sessions.pop(session_id, None)
        if session is not None:
            session.abort()

    def abort_all(self) -> None:
        for session_id in list(self.sessions):
            self.abort_session(session_id)

    def finish_session(self, session_id: str) -> None:
        self.sessions.pop(session_id, None)

    # -- incoming ------------------------------------------------------

    def _on_fetch(self, src: str, frame: BulkFetch) -> None:
        self.store.handle_fetch(src, frame)

    def _on_page(self, src: str, frame: BulkPage) -> None:
        session = self.sessions.get(frame.session_id)
        if session is not None:
            session.handle_page(src, frame)

    def _on_nack(self, src: str, frame: BulkNack) -> None:
        session = self.sessions.get(frame.session_id)
        if session is not None:
            session.handle_nack(src, frame)

    # -- health --------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time gauges for :mod:`repro.obs.health`."""
        return {
            "sessions_active": sum(
                1 for s in self.sessions.values() if s.active),
            "stripes_in_flight": sum(
                s.stripes_in_flight for s in self.sessions.values()
                if s.active),
            "store_entries": len(self.store),
        }
