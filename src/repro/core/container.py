"""The replica container: one servant + its own ORB + execution timing.

A container hosts one replica of one object group on one node: it activates
the servant under the group's canonical object key, owns the replica's ORB
("each replica has its own ORB", §4.2), and runs the FIFO work queue that
serializes operation execution — which is also where quiescence is decided:
a ``get_state()`` marker waits its turn in the queue, so the state it
captures reflects exactly the messages ordered before it.

The container knows nothing about replication; the Replication/Recovery
Mechanisms decide *what* enters the queue and what happens to produced
replies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import EternalConfig
from repro.core.identifiers import ConnectionKey
from repro.core.quiescence import QuiescenceMonitor
from repro.errors import StateTransferError
from repro.ftcorba.checkpointable import (
    GET_STATE,
    SET_STATE,
    Checkpointable,
    STATE_OP_BASE_DURATION,
)
from repro.giop.ior import IOR
from repro.giop.messages import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
    encode_message,
)
from repro.giop.types import decode_any, encode_any, to_any
from repro.obs.spans import SpanEmitter
from repro.orb.orb import Orb
from repro.orb.proxy import ObjectProxy
from repro.runtime.interfaces import Host
from repro.runtime.trace import NULL_TRACER, Tracer

# Produced replies are handed here: (connection, reply_bytes)
ReplySink = Callable[[ConnectionKey, bytes], None]

_RECOVERY_CONN = "eternal-recovery"


class ReplicaContainer:
    """Hosts one replica: servant, ORB, and the serialized work queue."""

    def __init__(
        self,
        process: Host,
        group_id: str,
        servant: Optional[Checkpointable],
        config: EternalConfig,
        *,
        on_reply_produced: ReplySink,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.process = process
        self.group_id = group_id
        self.config = config
        self.tracer = tracer
        self._spans = SpanEmitter(tracer, node_id=process.node_id)
        self.on_reply_produced = on_reply_produced
        self.quiescence = QuiescenceMonitor()
        self.orb = Orb(f"{process.node_id}:{group_id}", host=group_id)
        self.servant: Optional[Checkpointable] = None
        self._queue: List[Tuple] = []
        self._executing = False
        self._recovery_request_counter = 0
        self.operations_executed = 0
        if servant is not None:
            self.install_servant(servant)

    # ------------------------------------------------------------------
    # Servant lifecycle
    # ------------------------------------------------------------------

    @property
    def instantiated(self) -> bool:
        """False for a cold-passive backup that has not been launched."""
        return self.servant is not None

    def install_servant(self, servant: Checkpointable) -> None:
        """Activate (or replace, for cold launch / evolution) the servant
        under the group's canonical object key."""
        self.servant = servant
        # Client-capable servants reach other objects through the container
        # (which wires their ORB's transport to the Interceptor).
        servant._eternal_container = self
        poa = self.orb._poas.get("RootPOA") or self.orb.create_poa("RootPOA")
        object_id = self.group_id.encode("ascii")
        if object_id in poa._active:
            poa.deactivate_object(object_id)
        poa.activate_object(servant, object_id)

    def start_application(self) -> None:
        """Give the servant its initial kick (pure clients start sending)."""
        start = getattr(self.servant, "start", None)
        if callable(start):
            start()

    def resume_application(self) -> None:
        """After recovery: let the servant re-issue its in-flight work.

        Contract for replicated clients: re-issue every logically
        outstanding invocation, in original order, before any new one —
        that keeps the recovered ORB's request_ids aligned with the
        interceptor's rewrite offset.
        """
        resume = getattr(self.servant, "resume", None)
        if callable(resume):
            resume()

    # ------------------------------------------------------------------
    # Client-side plumbing for the servant
    # ------------------------------------------------------------------

    def connect(self, ior: IOR) -> ObjectProxy:
        """Servant-facing: obtain a proxy to another (replicated) object."""
        return self.orb.connect(ior)

    # ------------------------------------------------------------------
    # Work queue
    # ------------------------------------------------------------------

    def submit_request(self, connection: ConnectionKey,
                       iiop_bytes: bytes) -> None:
        """Queue a delivered invocation for execution."""
        self._queue.append(("request", connection, iiop_bytes))
        self._pump()

    def submit_reply(self, server_group: str, port: int, iiop_bytes: bytes,
                     on_executed: Optional[Callable[[], None]] = None) -> None:
        """Queue a delivered response.

        Responses share the FIFO queue with invocations — the paper's
        recovery protocol enqueues "invocations and responses" alike, and
        a response ordered after a get_state() marker must not reach the
        application before the get_state() executes.
        """
        self._queue.append(("reply", server_group, port, iiop_bytes,
                            on_executed))
        self._pump()

    def submit_get_state(self, transfer_id: str,
                         done: Callable[[str, bytes, str], None]) -> None:
        """Queue the fabricated get_state(); ``done(transfer_id,
        app_state_bytes, app_digest)`` fires when the operation completes.
        The digest is computed once here, at capture time; callers use it
        for cross-replica consistency auditing and for delta-transfer base
        negotiation without hashing the blob again.

        The wait from here until the marker reaches the head of the FIFO
        queue *is* the time-to-quiescence; it is traced as a
        ``recovery.quiesce`` span nested in the capture span.
        """
        node = self.process.node_id
        self._spans.start(
            "recovery.quiesce",
            span_id=f"{transfer_id}/quiesce@{node}",
            parent=f"{transfer_id}/capture@{node}",
            node=node, group=self.group_id, queue_depth=len(self._queue),
        )
        self._queue.append(("get_state", transfer_id, done))
        self._pump()

    def submit_set_state(self, app_state: bytes,
                         done: Callable[[], None]) -> None:
        """Queue the fabricated set_state() carrying ``app_state``."""
        self._queue.append(("set_state", app_state, done))
        self._pump()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _pump(self) -> None:
        if self._executing or not self._queue:
            return
        if not self.process.alive:
            return
        item = self._queue.pop(0)
        self._executing = True
        kind = item[0]
        if kind == "request":
            self._run_request(item[1], item[2])
        elif kind == "reply":
            self._run_reply(item[1], item[2], item[3], item[4])
        elif kind == "get_state":
            self._run_get_state(item[1], item[2])
        else:
            self._run_set_state(item[1], item[2])

    def _finish(self) -> None:
        self._executing = False
        self.quiescence.end_operation()
        self._pump()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_request(self, connection: ConnectionKey,
                     iiop_bytes: bytes) -> None:
        decoded = self.orb.decode_request(connection.as_str(), iiop_bytes)
        if decoded is None:
            # The ORB discarded the request (e.g. un-negotiated short key,
            # §4.2.2).  No reply will ever be produced.
            self.tracer.emit("replica", "request_discarded",
                             node=self.process.node_id, group=self.group_id)
            self._finish()
            return
        until = self.process.scheduler.now + decoded.duration
        self.quiescence.begin_operation(until)
        self.process.call_after(decoded.duration, self._complete_request,
                                connection, decoded)

    def _complete_request(self, connection: ConnectionKey, decoded) -> None:
        if getattr(self.servant, "_hung_for_test", False):
            # Injected replica-hang fault: the operation never completes,
            # the queue backs up, and the process stays alive — exactly the
            # failure mode pull-based fault monitoring exists to catch.
            return
        reply_bytes = self.orb.execute_request(decoded)
        self.operations_executed += 1
        self.tracer.emit("replica", "executed", node=self.process.node_id,
                         group=self.group_id,
                         operation=decoded.request.operation)
        if reply_bytes is not None:
            self.on_reply_produced(connection, reply_bytes)
        self._finish()

    def _run_reply(self, server_group: str, port: int, iiop_bytes: bytes,
                   on_executed: Optional[Callable[[], None]]) -> None:
        delay = self.config.reply_processing_delay
        self.quiescence.begin_operation(self.process.scheduler.now + delay)
        self.process.call_after(delay, self._complete_reply, server_group,
                                port, iiop_bytes, on_executed)

    def _complete_reply(self, server_group: str, port: int,
                        iiop_bytes: bytes,
                        on_executed: Optional[Callable[[], None]]) -> None:
        if on_executed is not None:
            on_executed()
        delivered = self.orb.handle_reply(server_group, port, iiop_bytes)
        if not delivered:
            self.tracer.emit("replica", "reply_discarded_by_orb",
                             node=self.process.node_id, group=self.group_id)
        self._finish()

    def _state_duration(self, payload_len: int) -> float:
        return STATE_OP_BASE_DURATION + payload_len / self.config.state_capture_bps

    def _run_get_state(self, transfer_id: str,
                       done: Callable[[str, bytes], None]) -> None:
        # The marker reached the queue head: the replica is quiescent.
        self._spans.end(
            f"{transfer_id}/quiesce@{self.process.node_id}"
        )
        if self.servant is None:
            raise StateTransferError(
                f"get_state on uninstantiated replica of {self.group_id}"
            )
        request = self._fabricate(GET_STATE, ())
        decoded = self.orb.decode_request(_RECOVERY_CONN, request)
        reply_bytes = self.orb.execute_request(decoded)
        reply = decode_message(reply_bytes)
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            raise StateTransferError(
                f"get_state() on {self.group_id} raised {reply.exception_id}: "
                f"{reply.result!r}"
            )
        app_state = encode_any(to_any(reply.result))
        from repro.obs.audit import state_digest
        app_digest = state_digest(app_state)
        duration = self._state_duration(len(app_state))
        self.quiescence.begin_operation(self.process.scheduler.now + duration)
        self.tracer.emit("replica", "get_state", node=self.process.node_id,
                         group=self.group_id, size=len(app_state))
        self.process.call_after(duration, self._complete_state_op,
                                done, transfer_id, app_state, app_digest)

    def _run_set_state(self, app_state: bytes,
                       done: Callable[[], None]) -> None:
        if self.servant is None:
            raise StateTransferError(
                f"set_state on uninstantiated replica of {self.group_id}"
            )
        value = decode_any(app_state).value
        request = self._fabricate(SET_STATE, (value,))
        decoded = self.orb.decode_request(_RECOVERY_CONN, request)
        reply_bytes = self.orb.execute_request(decoded)
        reply = decode_message(reply_bytes)
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            raise StateTransferError(
                f"set_state() on {self.group_id} raised {reply.exception_id}: "
                f"{reply.result!r}"
            )
        duration = self._state_duration(len(app_state))
        self.quiescence.begin_operation(self.process.scheduler.now + duration)
        self.tracer.emit("replica", "set_state", node=self.process.node_id,
                         group=self.group_id, size=len(app_state))
        self.process.call_after(duration, self._complete_state_op, done)

    def _complete_state_op(self, done: Callable, *args) -> None:
        done(*args)
        self._finish()

    def _fabricate(self, operation: str, args: tuple) -> bytes:
        """Build a local GIOP request for a fabricated state operation."""
        from repro.orb.objectkey import make_key
        self._recovery_request_counter += 1
        request = RequestMessage(
            request_id=self._recovery_request_counter,
            object_key=make_key("RootPOA", self.group_id.encode("ascii")),
            operation=operation,
            args=args,
        )
        return encode_message(request)

