"""The Eternal Interceptor (paper §2, footnote 1).

"Eternal's Interceptor is an IIOP message interceptor that is not part of
the ORB stack and is located outside the ORB, at the ORB's socket-level
interface to the operating system."  It captures the IIOP messages intended
for TCP/IP and diverts them to the Replication Mechanisms for multicasting.

Beyond diversion, the interceptor is where ORB/POA-level request_id
synchronization is *enforced* from outside the ORB (§4.2.1): a recovered
replica's ORB restarts its per-connection request_id counters at zero, so
the interceptor installs a per-connection **rewrite offset** — outgoing
requests have their GIOP request_id patched up to the group-consistent
value, and incoming replies are patched back down before the ORB sees them.
The ORB itself is never modified and never knows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.envelope import IiopEnvelope
from repro.core.identifiers import ConnectionKey, OpKind, invocation_trace_id
from repro.core.infra_state import InfraState
from repro.core.orb_state import OrbStateTracker
from repro.giop.messages import (
    ReplyMessage,
    RequestMessage,
    decode_message,
    encode_message,
)
from repro.obs.spans import SpanEmitter
from repro.runtime.trace import NULL_TRACER, Tracer

SendFn = Callable[[IiopEnvelope], None]


class Interceptor:
    """Per-replica IIOP capture point between one ORB and the mechanisms."""

    def __init__(
        self,
        node_id: str,
        group_id: str,
        send: SendFn,
        infra: InfraState,
        orb_state: OrbStateTracker,
        *,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.node_id = node_id
        self.group_id = group_id
        self._send = send
        self._infra = infra
        self._orb_state = orb_state
        self.tracer = tracer
        self._spans = SpanEmitter(tracer, node_id=node_id)
        self._offsets: Dict[ConnectionKey, int] = {}
        self.suppressed_reissues = 0
        #: Optional read fast-path hook (repro.core.readfast): called with
        #: (connection, wire_id, operation, envelope) for each captured
        #: two-way request; returning True claims the request for
        #: point-to-point service instead of the total-order multicast.
        self.fast_path: Optional[
            Callable[[ConnectionKey, int, str, IiopEnvelope], bool]] = None
        # Two-way invocations issued by this replica whose replies have
        # not come back yet (rendered by the health exposition), with the
        # captured envelope kept for retransmission: a request ordered
        # while its target group had no live members is dropped by
        # everyone, and only the issuing side can put it back on the wire.
        self._open_roundtrips: Dict[Tuple[ConnectionKey, int],
                                    IiopEnvelope] = {}

    def _rpc_span_id(self, connection: ConnectionKey,
                     request_id: int) -> str:
        return f"rpc:{self.node_id}:{connection.as_str()}:{request_id}"

    #: The invocation's end-to-end trace id (see
    #: :func:`repro.core.identifiers.invocation_trace_id`): the client-side
    #: request capture and the server-side reply capture compute the same
    #: id independently, so one trace spans the whole round trip.
    trace_id = staticmethod(invocation_trace_id)

    # ------------------------------------------------------------------
    # request_id rewrite offsets (installed during recovery, §4.2.1)
    # ------------------------------------------------------------------

    def set_request_id_offset(self, connection: ConnectionKey,
                              offset: int) -> None:
        self._offsets[connection] = offset

    def request_id_offset(self, connection: ConnectionKey) -> int:
        return self._offsets.get(connection, 0)

    # ------------------------------------------------------------------
    # Outgoing capture (the ORB believes this is TCP)
    # ------------------------------------------------------------------

    def capture_client_request(self, host: str, port: int,
                               data: bytes) -> None:
        """Transport hook installed on the replica ORB's client side."""
        connection = ConnectionKey(client_group=self.group_id,
                                   server_group=host)
        message = decode_message(data)
        assert isinstance(message, RequestMessage)
        offset = self._offsets.get(connection, 0)
        wire_id = message.request_id + offset
        if offset:
            data = encode_message(replace(message, request_id=wire_id))
        self._orb_state.observe_outgoing_request(connection, wire_id)
        envelope = IiopEnvelope(connection, OpKind.REQUEST, wire_id,
                                self.node_id, data)
        if (message.response_expected and self.fast_path is not None
                and self.fast_path(connection, wire_id, message.operation,
                                   envelope)):
            # Claimed by the leader-lease read fast path: served
            # point-to-point, off the total order and off the infra
            # books (reads are idempotent; a recovery re-issue simply
            # reads again).  Still an open round trip — the fallback
            # machinery and the retransmission safety net both key on it.
            self._open_roundtrips[(connection, wire_id)] = envelope
            trace_id = self.trace_id(connection, wire_id)
            self.tracer.emit("interceptor", "request_fast",
                             node=self.node_id, conn=connection.as_str(),
                             request_id=wire_id, trace=trace_id)
            self._spans.start(
                "rpc.roundtrip",
                span_id=self._rpc_span_id(connection, wire_id),
                node=self.node_id, group=self.group_id,
                conn=connection.as_str(), request_id=wire_id,
                operation=message.operation, trace=trace_id,
            )
            return
        if message.response_expected:
            # Track before the reissue check: a suppressed reissue is
            # still awaiting its reply, so it is still outstanding.
            self._open_roundtrips[(connection, wire_id)] = envelope
        is_new = self._infra.record_issued(
            connection, wire_id, message.operation,
            message.response_expected,
        )
        if not is_new:
            # A deterministic re-issue after recovery: already on the wire
            # before the replica failed.  Suppress the duplicate multicast
            # but keep awaiting the reply.
            self.suppressed_reissues += 1
            self.tracer.emit("interceptor", "reissue_suppressed",
                             node=self.node_id, group=self.group_id,
                             request_id=wire_id)
            return
        trace_id = self.trace_id(connection, wire_id)
        self.tracer.emit("interceptor", "request", node=self.node_id,
                         conn=connection.as_str(), request_id=wire_id,
                         trace=trace_id)
        if message.response_expected:
            # One round-trip span per two-way invocation: capture here,
            # closed when the matching reply is delivered back to this
            # replica (note_reply_delivered).
            self._spans.start(
                "rpc.roundtrip",
                span_id=self._rpc_span_id(connection, wire_id),
                node=self.node_id, group=self.group_id,
                conn=connection.as_str(), request_id=wire_id,
                operation=message.operation, trace=trace_id,
            )
        self._send(envelope)

    def capture_server_reply(self, connection: ConnectionKey,
                             data: bytes) -> None:
        """Capture a reply produced by the local server replica."""
        message = decode_message(data)
        assert isinstance(message, ReplyMessage)
        trace_id = self.trace_id(connection, message.request_id)
        self.tracer.emit("interceptor", "reply", node=self.node_id,
                         conn=connection.as_str(),
                         request_id=message.request_id, trace=trace_id)
        self._send(IiopEnvelope(connection, OpKind.REPLY,
                                message.request_id, self.node_id, data))

    # ------------------------------------------------------------------
    # Incoming rewrite (before the ORB sees a reply)
    # ------------------------------------------------------------------

    @property
    def outstanding_invocations(self) -> int:
        """Two-way invocations issued but not yet answered."""
        return len(self._open_roundtrips)

    def note_reply_delivered(self, connection: ConnectionKey,
                             request_id: int) -> None:
        """Close the round-trip span opened when the request was captured
        (``request_id`` is the wire id; no-op for unmatched replies)."""
        self._open_roundtrips.pop((connection, request_id), None)
        self._spans.end(self._rpc_span_id(connection, request_id))

    def open_requests(self) -> List[IiopEnvelope]:
        """The captured envelopes of every two-way invocation still
        awaiting its reply, in issue order — the retransmission
        candidates after the target group went through a window with no
        live members."""
        return [self._open_roundtrips[key]
                for key in sorted(self._open_roundtrips,
                                  key=lambda k: (k[0].as_str(), k[1]))]

    def rewrite_incoming_reply(self, connection: ConnectionKey,
                               data: bytes) -> bytes:
        """Patch a delivered reply's request_id back into the local ORB's
        numbering (inverse of the outgoing rewrite)."""
        offset = self._offsets.get(connection, 0)
        if not offset:
            return data
        message = decode_message(data)
        assert isinstance(message, ReplyMessage)
        return encode_message(
            replace(message, request_id=message.request_id - offset)
        )
