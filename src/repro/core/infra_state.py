"""Infrastructure-level state (paper §4.3).

"Completely independent of, and invisible to, the replicated object as well
as to the ORB and the POA" — the bookkeeping Eternal itself needs for
duplicate detection and log garbage collection:

* the duplicate-suppression filter over operation identifiers;
* the invocations the replica has issued and awaits responses to;
* the high-water mark of issued request ids per connection (so a recovered
  client replica that deterministically re-issues work is suppressed on the
  wire rather than duplicated);
* the replica's replication style and role.

During recovery this state is piggybacked onto the fabricated
``set_state()`` and assigned *last*, before the replica becomes operational.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.identifiers import ConnectionKey, DuplicateFilter
from repro.giop.types import decode_any, encode_any, to_any


class InfraState:
    """One replica's infrastructure-level state."""

    def __init__(self, style: str = "active", role: str = "active") -> None:
        self.style = style
        self.role = role
        self.duplicates = DuplicateFilter()
        # client side: wire request ids issued on each connection
        self.issued: Dict[ConnectionKey, int] = {}
        # client side: wire request ids awaiting replies -> operation name
        self.awaiting: Dict[ConnectionKey, Dict[int, str]] = {}

    # -- client-side bookkeeping -------------------------------------------

    def record_issued(self, connection: ConnectionKey, wire_request_id: int,
                      operation: str, response_expected: bool) -> bool:
        """Record an outgoing invocation.

        Returns True if it is *new* (must be multicast) or False if this
        request id was already issued before the replica recovered — a
        deterministic re-issue that must be suppressed on the wire while
        re-registering interest in its reply.
        """
        is_new = wire_request_id > self.issued.get(connection, -1)
        if is_new:
            self.issued[connection] = wire_request_id
        if response_expected:
            self.awaiting.setdefault(connection, {})[wire_request_id] = \
                operation
        return is_new

    def record_reply_delivered(self, connection: ConnectionKey,
                               wire_request_id: int) -> None:
        pending = self.awaiting.get(connection)
        if pending is not None:
            pending.pop(wire_request_id, None)
            if not pending:
                del self.awaiting[connection]

    def awaiting_reply(self, connection: ConnectionKey,
                       wire_request_id: int) -> Optional[str]:
        """Operation name if this reply is awaited, else None."""
        return self.awaiting.get(connection, {}).get(wire_request_id)

    # -- capture / restore ---------------------------------------------------

    def capture(self, duplicates_override: Optional[dict] = None) -> bytes:
        """Serialize for piggybacking.

        ``duplicates_override`` substitutes a duplicate-filter snapshot
        taken earlier (at the get_state() marker's delivery position) for
        the live filter — the filter marks messages at delivery, which can
        run ahead of the synchronization point.
        """
        duplicates = (duplicates_override if duplicates_override is not None
                      else self.duplicates.capture())
        payload = {
            "style": self.style,
            "role": self.role,
            "duplicates": duplicates,
            "issued": {c.as_str(): rid for c, rid in self.issued.items()},
            "awaiting": {
                c.as_str(): {str(rid): op for rid, op in pending.items()}
                for c, pending in self.awaiting.items()
            },
        }
        return encode_any(to_any(payload))

    @classmethod
    def decode(cls, blob: bytes) -> "InfraState":
        state = cls()
        if not blob:
            return state
        payload = decode_any(blob).value
        state.style = payload.get("style", "active")
        state.role = payload.get("role", "active")
        state.duplicates = DuplicateFilter.restore(
            payload.get("duplicates", {})
        )
        state.issued = {
            ConnectionKey.from_str(text): rid
            for text, rid in payload.get("issued", {}).items()
        }
        state.awaiting = {
            ConnectionKey.from_str(text): {
                int(rid): op for rid, op in pending.items()
            }
            for text, pending in payload.get("awaiting", {}).items()
        }
        return state

    def adopt(self, other: "InfraState", *, keep_role: bool = True) -> None:
        """Assign another replica's captured infrastructure-level state to
        this one (recovery step: infrastructure state is assigned last).

        Adoption *merges* rather than overwrites the duplicate filter and
        the issued watermarks: the adopter may have filtered/observed
        messages ordered after the source captured its state, and must not
        forget them.  The awaiting map is replaced (it describes the
        in-flight invocations of the adopted application state).  The local
        role is preserved by default: a recovering backup adopting the
        primary's state must not believe it is the primary.
        """
        self.style = other.style
        self.duplicates.merge(other.duplicates)
        for conn, rid in other.issued.items():
            if rid > self.issued.get(conn, -1):
                self.issued[conn] = rid
        self.awaiting = {c: dict(p) for c, p in other.awaiting.items()}
        if not keep_role:
            self.role = other.role
