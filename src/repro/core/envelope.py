"""Multicast envelopes: everything Eternal sends over Totem.

Application IIOP traffic travels in :class:`IiopEnvelope` (the captured GIOP
bytes plus the operation identifier Eternal derived for them).  Group
administration and the state-transfer protocol travel in control envelopes.
All envelopes serialize to real bytes (CDR) so the network model charges
honest transmission time — in particular a :class:`StateSet` carrying a
large application state produces a proportionally large multicast message,
which Totem fragments at the Ethernet MTU: the mechanism behind Figure 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import ProtocolError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.core.identifiers import (
    ConnectionKey,
    OperationId,
    OpKind,
    invocation_trace_id,
)


class TransferPurpose(enum.Enum):
    """Why a state transfer is happening (§5.1 recovery vs §3.3 checkpoint)."""

    RECOVERY = 0      # synchronizing a new/recovered replica (§5.1)
    CHECKPOINT = 1    # periodic state retrieval for passive styles (§3.3)


@dataclass(frozen=True)
class IiopEnvelope:
    """A captured IIOP message plus Eternal's routing/dedup metadata."""

    connection: ConnectionKey
    kind: OpKind
    request_id: int
    sender_node: str
    iiop_bytes: bytes

    @property
    def operation_id(self) -> OperationId:
        return OperationId(self.connection, self.request_id, self.kind)

    @property
    def trace_id(self) -> str:
        """End-to-end invocation trace id — derived, never serialized.

        Computed from fields already on the wire, so tracing adds no
        bytes to the charged envelope: at wire-bound load even ~20 bytes
        per small envelope measurably shifts the saturation knee.
        """
        return invocation_trace_id(self.connection, self.request_id)

    @property
    def target_group(self) -> str:
        """Requests go to the server group; replies to the client group."""
        if self.kind is OpKind.REQUEST:
            return self.connection.server_group
        return self.connection.client_group


@dataclass(frozen=True)
class GroupUpdate:
    """Replication Manager: authoritative group-membership update.

    Carries the *full* membership (node, role, operational) so that a node
    that just rejoined the ring can rebuild its group view from any single
    update.  ``action`` selects the side effect at the affected node:

    * ``create`` — initial deployment; every listed member instantiates its
      replica, already consistent (identical initial state), and starts it;
    * ``add`` — ``subject_node`` instantiates a new replica and announces a
      :class:`ReplicaJoin` to start recovery;
    * ``remove`` — ``subject_node`` destroys its replica;
    * ``sync`` — membership bookkeeping only.
    """

    group_id: str
    type_id: str
    style: str                 # ReplicationStyle.value
    checkpoint_interval: float
    app_version: int
    members: Tuple[Tuple[str, str, bool], ...]  # (node, role, operational)
    action: str = "sync"
    subject_node: str = ""
    fault_monitoring_interval: float = 0.05
    max_log_messages: int = 0


@dataclass(frozen=True)
class ReplicaJoin:
    """Announced by the node hosting a newly launched replica; its delivery
    position starts the recovery protocol for that replica.

    ``base_digest`` is the app-state digest of the announcer's last
    committed checkpoint (empty if it has none): responders whose own
    checkpoint matches may answer with a page-level delta instead of the
    full snapshot (see :mod:`repro.core.statedelta`).

    ``bulk_ok`` advertises that the announcer can fetch large snapshots
    over the out-of-band bulk lane (:mod:`repro.core.bulk`); responders
    then multicast only a page manifest and serve the bytes
    point-to-point.  Cleared on the in-order fallback re-announce.

    ``store_position`` advertises how far the announcer's *durable* store
    covers the group's message stream: ``-1`` means no store is
    configured, ``0`` a configured but empty journal, and a positive
    value the highest journaled local log position.  When no live member
    can answer the join (whole-cluster restart), these values elect the
    cold-boot seed (see
    :meth:`repro.core.recovery.RecoveryMechanisms.handle_cold_seed`)."""

    group_id: str
    node_id: str
    transfer_id: str
    base_digest: str = ""
    bulk_ok: bool = False
    store_position: int = -1


@dataclass(frozen=True)
class StateGet:
    """The fabricated ``get_state()`` marker in the total order (§5.1 i).

    ``base_digest`` names the shared base snapshot a delta-encoded reply
    may be computed against (empty requests a full snapshot); ``bulk_ok``
    carries the target's bulk-lane capability through to the responders."""

    group_id: str
    transfer_id: str
    purpose: TransferPurpose
    initiator: str
    target_node: str = ""      # RECOVERY: the node being synchronized
    base_digest: str = ""
    bulk_ok: bool = False


@dataclass(frozen=True)
class ReplicaFault:
    """A fault detector's report: a replica on a (live) node is faulty.

    Travels in the total order so every node — and the Replication Manager
    — learns of the fault at the same logical point (FT-CORBA pull
    monitoring at the fault monitoring interval, paper §2)."""

    group_id: str
    node_id: str
    reason: str = "unresponsive"


@dataclass(frozen=True)
class ColdSeed:
    """A cold-boot candidate claims the seed role for a whole-dead group.

    When every replica of a group is gone — full-cluster power loss — no
    member can answer a :class:`ReplicaJoin`, and §5.1 recovery has
    nothing to ladder from.  A restarting node with a durable store waits
    out a short bid window collecting the ``store_position`` values from
    its peers' join announcements; the best-covered candidate (ties to
    the lowest node id) multicasts ``ColdSeed``.  Its delivery in the
    total order is the group's rebirth point: every node marks the seed
    operational, the seed restores from its journal and replays its local
    log, and everyone else recovers from the seed over the ordinary
    ladder — now with a live responder."""

    group_id: str
    node_id: str
    transfer_id: str
    store_position: int = 0


@dataclass(frozen=True)
class NodeRestarted:
    """A node's stack re-launched with a fresh incarnation.

    A process that restarts faster than the token timeout never leaves the
    ring view, so membership alone cannot reveal that its replicas'
    volatile state is gone.  The rebuilt stack announces itself in the
    total order; every node drops the announcer's (dead) members at the
    same logical point, and the Replication Manager re-places them."""

    node_id: str
    incarnation: int


#: Versioned ``StateSet`` body layouts: a full encoded snapshot, a
#: page-level delta (:func:`repro.core.statedelta.encode_delta`) against
#: the receiver's last committed checkpoint, or a page manifest
#: (:func:`repro.core.bulk.encode_manifest`) whose pages travel over the
#: out-of-band bulk lane.
STATE_BODY_FULL = 0
STATE_BODY_DELTA = 1
STATE_BODY_MANIFEST = 2


@dataclass(frozen=True)
class StateSet:
    """The fabricated ``set_state()`` with the piggybacked ORB/POA-level
    and infrastructure-level state (§5.1 iv-v).

    ``app_state`` is a versioned body: the full encoded snapshot when
    ``app_delta`` and ``app_manifest`` are False, an encoded
    :class:`~repro.core.statedelta.StateDelta` the receiver must apply to
    its own base checkpoint when ``app_delta``, or an encoded
    :class:`~repro.core.bulk.PageManifest` when ``app_manifest`` — the
    snapshot's integrity summary, with the pages themselves fetched
    point-to-point over the out-of-band bulk lane."""

    group_id: str
    transfer_id: str
    purpose: TransferPurpose
    source_node: str
    target_node: str
    app_state: bytes
    orb_state: bytes
    infra_state: bytes
    app_delta: bool = False
    app_manifest: bool = False


Envelope = Union[IiopEnvelope, GroupUpdate, ReplicaJoin, StateGet, StateSet,
                 ReplicaFault, NodeRestarted, ColdSeed]

_TAG_IIOP = 1
_TAG_GROUP_UPDATE = 2
_TAG_REPLICA_JOIN = 5
_TAG_STATE_GET = 6
_TAG_STATE_SET = 7
_TAG_REPLICA_FAULT = 8
_TAG_NODE_RESTARTED = 9
_TAG_COLD_SEED = 10


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope for multicast."""
    out = CdrOutputStream()
    if isinstance(envelope, IiopEnvelope):
        out.write_octet(_TAG_IIOP)
        out.write_string(envelope.connection.client_group)
        out.write_string(envelope.connection.server_group)
        out.write_octet(envelope.kind.value)
        out.write_ulong(envelope.request_id)
        out.write_string(envelope.sender_node)
        out.write_octets(envelope.iiop_bytes)
    elif isinstance(envelope, GroupUpdate):
        out.write_octet(_TAG_GROUP_UPDATE)
        out.write_string(envelope.group_id)
        out.write_string(envelope.type_id)
        out.write_string(envelope.style)
        out.write_double(envelope.checkpoint_interval)
        out.write_ulong(envelope.app_version)
        out.write_ulong(len(envelope.members))
        for node_id, role, operational in envelope.members:
            out.write_string(node_id)
            out.write_string(role)
            out.write_boolean(operational)
        out.write_string(envelope.action)
        out.write_string(envelope.subject_node)
        out.write_double(envelope.fault_monitoring_interval)
        out.write_ulong(envelope.max_log_messages)
    elif isinstance(envelope, ReplicaJoin):
        out.write_octet(_TAG_REPLICA_JOIN)
        out.write_string(envelope.group_id)
        out.write_string(envelope.node_id)
        out.write_string(envelope.transfer_id)
        out.write_octets(envelope.base_digest.encode("ascii"))
        out.write_boolean(envelope.bulk_ok)
        out.write_longlong(envelope.store_position)
    elif isinstance(envelope, StateGet):
        out.write_octet(_TAG_STATE_GET)
        out.write_string(envelope.group_id)
        out.write_string(envelope.transfer_id)
        out.write_octet(envelope.purpose.value)
        out.write_string(envelope.initiator)
        out.write_string(envelope.target_node)
        out.write_octets(envelope.base_digest.encode("ascii"))
        out.write_boolean(envelope.bulk_ok)
    elif isinstance(envelope, StateSet):
        out.write_octet(_TAG_STATE_SET)
        out.write_string(envelope.group_id)
        out.write_string(envelope.transfer_id)
        out.write_octet(envelope.purpose.value)
        out.write_string(envelope.source_node)
        out.write_string(envelope.target_node)
        if envelope.app_manifest:
            body_kind = STATE_BODY_MANIFEST
        elif envelope.app_delta:
            body_kind = STATE_BODY_DELTA
        else:
            body_kind = STATE_BODY_FULL
        out.write_octet(body_kind)
        out.write_octets(envelope.app_state)
        out.write_octets(envelope.orb_state)
        out.write_octets(envelope.infra_state)
    elif isinstance(envelope, ReplicaFault):
        out.write_octet(_TAG_REPLICA_FAULT)
        out.write_string(envelope.group_id)
        out.write_string(envelope.node_id)
        out.write_string(envelope.reason)
    elif isinstance(envelope, NodeRestarted):
        out.write_octet(_TAG_NODE_RESTARTED)
        out.write_string(envelope.node_id)
        out.write_ulong(envelope.incarnation)
    elif isinstance(envelope, ColdSeed):
        out.write_octet(_TAG_COLD_SEED)
        out.write_string(envelope.group_id)
        out.write_string(envelope.node_id)
        out.write_string(envelope.transfer_id)
        out.write_longlong(envelope.store_position)
    else:
        raise ProtocolError(f"cannot encode envelope {type(envelope).__name__}")
    return out.getvalue()


def decode_envelope(data: bytes) -> Envelope:
    """Inverse of :func:`encode_envelope`."""
    try:
        return _decode_envelope(data)
    except ValueError as exc:
        # invalid enum discriminants in hostile/corrupted bytes
        raise ProtocolError(f"malformed envelope: {exc}") from exc


def _decode_envelope(data: bytes) -> Envelope:
    inp = CdrInputStream(data)
    tag = inp.read_octet()
    if tag == _TAG_IIOP:
        connection = ConnectionKey(inp.read_string(), inp.read_string())
        kind = OpKind(inp.read_octet())
        request_id = inp.read_ulong()
        sender_node = inp.read_string()
        iiop_bytes = inp.read_octets()
        return IiopEnvelope(connection, kind, request_id, sender_node,
                            iiop_bytes)
    if tag == _TAG_GROUP_UPDATE:
        group_id = inp.read_string()
        type_id = inp.read_string()
        style = inp.read_string()
        checkpoint_interval = inp.read_double()
        app_version = inp.read_ulong()
        count = inp.read_ulong()
        members = tuple(
            (inp.read_string(), inp.read_string(), inp.read_boolean())
            for _ in range(count)
        )
        action = inp.read_string()
        subject_node = inp.read_string()
        fault_monitoring_interval = inp.read_double()
        max_log_messages = inp.read_ulong()
        return GroupUpdate(group_id, type_id, style, checkpoint_interval,
                           app_version, members, action, subject_node,
                           fault_monitoring_interval, max_log_messages)
    if tag == _TAG_REPLICA_JOIN:
        return ReplicaJoin(inp.read_string(), inp.read_string(),
                           inp.read_string(),
                           str(inp.read_octets(), "ascii"),
                           inp.read_boolean(),
                           inp.read_longlong())
    if tag == _TAG_STATE_GET:
        return StateGet(inp.read_string(), inp.read_string(),
                        TransferPurpose(inp.read_octet()),
                        inp.read_string(), inp.read_string(),
                        str(inp.read_octets(), "ascii"),
                        inp.read_boolean())
    if tag == _TAG_STATE_SET:
        group_id = inp.read_string()
        transfer_id = inp.read_string()
        purpose = TransferPurpose(inp.read_octet())
        source_node = inp.read_string()
        target_node = inp.read_string()
        body_kind = inp.read_octet()
        if body_kind not in (STATE_BODY_FULL, STATE_BODY_DELTA,
                             STATE_BODY_MANIFEST):
            raise ProtocolError(f"unknown StateSet body kind {body_kind}")
        return StateSet(group_id, transfer_id, purpose, source_node,
                        target_node, inp.read_octets(), inp.read_octets(),
                        inp.read_octets(),
                        app_delta=body_kind == STATE_BODY_DELTA,
                        app_manifest=body_kind == STATE_BODY_MANIFEST)
    if tag == _TAG_REPLICA_FAULT:
        return ReplicaFault(inp.read_string(), inp.read_string(),
                            inp.read_string())
    if tag == _TAG_NODE_RESTARTED:
        return NodeRestarted(inp.read_string(), inp.read_ulong())
    if tag == _TAG_COLD_SEED:
        return ColdSeed(inp.read_string(), inp.read_string(),
                        inp.read_string(), inp.read_longlong())
    raise ProtocolError(f"unknown envelope tag {tag}")
