"""The :class:`LiveSystem` facade: a whole Eternal deployment on UDP.

The wall-clock counterpart of the simulator's ``EternalSystem`` — same
substrate-neutral core (:class:`repro.core.system.SystemCore`), same
protocol stacks, but hosts are :class:`~repro.live.node.LiveNode`\\ s
with real sockets and timers on an asyncio loop.  Time advances by
*awaiting*, so the running/waiting helpers are coroutines::

    system = LiveSystem(["n1", "n2", "n3"])      # inside a running loop
    system.register_factory("IDL:Counter:1.0", CounterServant)
    await system.wait_for(system.ring_formed, timeout=10.0)
    group = system.create_group("counter", "IDL:Counter:1.0")
    ...
    system.kill_node("n2")
    system.restart_node("n2")
    await system.wait_for(lambda: group.is_operational_on("n2"))
    system.close()
"""

from __future__ import annotations

import asyncio
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import EternalConfig
from repro.core.system import SystemCore
from repro.errors import UnknownNode
from repro.live.clock import LiveScheduler
from repro.live.node import LiveNode
from repro.live.transport import SegmentDispatcher, UdpTransport
from repro.runtime.interfaces import Host
from repro.totem.config import TotemConfig

#: Totem tuned for wall-clock time on a shared loopback host.  The
#: simulator's defaults assume ideal 100 Mbps latencies (20 µs token
#: hold, 20 ms token loss timeout); under asyncio scheduling jitter and
#: CI-grade machines those would misdiagnose slow timers as token loss
#: and churn the ring.  These values keep the same ordering
#: (hold ≪ timeout, join < gather) with two orders of magnitude of slack.
LIVE_TOTEM_CONFIG = TotemConfig(
    token_hold=0.001,
    token_timeout=0.25,
    gather_timeout=0.08,
    join_interval=0.04,
    probe_interval=0.5,
)

#: Record streams muted at the tracer in live runs — but only while the
#: telemetry config also flight-excludes them, so a full-fidelity config
#: (``flight_exclude=()``) still sees every record (counters keep
#: counting either way; see ``Tracer.set_muted_events`` and the note in
#: ``LiveSystem.__init__``).
LIVE_TRACE_MUTE = frozenset({"totem.deliver", "replication.duplicate"})


class LiveSystem(SystemCore):
    """A complete live (loopback-UDP, wall-clock) Eternal deployment.

    Must be constructed while an asyncio event loop is available (pass
    ``loop`` explicitly, or construct inside a running loop).
    """

    def __init__(
        self,
        node_ids: List[str],
        *,
        totem_config: Optional[TotemConfig] = None,
        eternal_config: Optional[EternalConfig] = None,
        manager_node: Optional[str] = None,
        keep_trace_records: bool = False,
        telemetry=None,
        profiling=None,
        store_dir: Optional[str] = None,
        store_fsync: str = "checkpoint",
        loop: Optional[asyncio.AbstractEventLoop] = None,
        shared_observability=None,
        ring_name: str = "",
    ) -> None:
        if loop is None:
            loop = asyncio.get_event_loop()
        self.loop = loop
        self.scheduler = LiveScheduler(loop)
        store_factory = None
        if store_dir is not None:
            # One journal root per node, as each real deployment node
            # would own its own disk.  The store survives kill()/restart()
            # because SystemCore caches it outside the node stack.
            from repro.store.journal import JournalStore

            def store_factory(node_id: str, _root=store_dir,
                              _fsync=store_fsync) -> JournalStore:
                return JournalStore(os.path.join(_root, node_id),
                                    fsync=_fsync)
        self._init_core(
            node_ids,
            totem_config=totem_config or LIVE_TOTEM_CONFIG,
            eternal_config=eternal_config,
            manager_node=manager_node,
            keep_trace_records=keep_trace_records,
            telemetry=telemetry,
            profiling=profiling,
            store_factory=store_factory,
            shared_observability=shared_observability,
            ring_name=ring_name,
        )
        # A ring of a sharded facade adopts the facade's plane and must not
        # tear it down in close(); the facade owns that lifecycle.
        self._owns_observability = shared_observability is None
        # The two highest-volume record streams in a live run have no
        # consumer under the default telemetry config: ``totem.deliver``
        # and ``replication.duplicate`` are flight-excluded and ignored
        # by the metrics registry, the auditor, and the profiler alike —
        # yet at ~35% of all records their construction and four-way
        # fan-out is measurable on the hot path.  Mute them at the
        # tracer, but only while the flight recorder would drop them
        # anyway: a config with a narrower ``flight_exclude`` (e.g. the
        # full-fidelity ``()``) has a consumer — report stitching reads
        # ``totem.deliver`` for the ring_deliver stage — so those
        # streams must keep flowing.  Counters (which the benches read)
        # keep counting either way.
        excluded = set(self.telemetry.config.flight_exclude)
        self.tracer.set_muted_events(frozenset(
            stream for stream in LIVE_TRACE_MUTE
            if stream in excluded
            or stream.partition(".")[0] in excluded))
        self.segment = SegmentDispatcher()
        self.segment.open(loop)
        self.nodes: Dict[str, LiveNode] = {
            node_id: LiveNode(self, node_id) for node_id in node_ids
        }
        self.peer_addrs: Dict[str, Tuple[str, int]] = {
            node_id: node.addr for node_id, node in self.nodes.items()
        }
        self.segment.set_members(list(self.peer_addrs.values()))
        for node_id in node_ids:
            self._add_stack(self.nodes[node_id].host)
        self.resource_manager.set_alive(set(node_ids))

    @property
    def segment_addr(self) -> Tuple[str, int]:
        return self.segment.addr

    def _make_transport(self, process: Host) -> UdpTransport:
        return self.nodes[process.node_id].make_transport()

    # ------------------------------------------------------------------
    # Running (time passes by awaiting)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    async def run_for(self, duration: float) -> None:
        await asyncio.sleep(duration)

    async def wait_for(self, predicate: Callable[[], bool],
                       timeout: float = 10.0, *,
                       poll_interval: float = 0.005) -> bool:
        """Poll ``predicate`` until true; False on wall-clock timeout."""
        deadline = self.loop.time() + timeout
        while True:
            if predicate():
                return True
            if self.loop.time() >= deadline:
                return bool(predicate())
            await asyncio.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.tracer.emit("fault", "crash", node=node_id)
        self.nodes[node_id].kill()

    def restart_node(self, node_id: str) -> None:
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.tracer.emit("fault", "restart", node=node_id)
        self.nodes[node_id].restart()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear the deployment down: crash every node (cancelling all
        protocol timers via their crash listeners) and release sockets."""
        if self._owns_observability:
            self.telemetry.stop()
            self.profiler.release()
        for node in self.nodes.values():
            node.kill()
        self.close_stores()
        self.segment.close()
