"""The ``python -m repro live`` scenario driver.

Builds a :class:`~repro.live.system.LiveSystem` on loopback UDP, deploys
one of the :data:`~repro.live.loadgen.LIVE_APPS` actively replicated
across all non-manager nodes with a closed-loop driver streaming at it,
then kills one replica, re-launches it, and reports the wall-clock
recovery latency with the §5.1 per-phase breakdown — the live
counterpart of the simulated Figure 6 numbers.

Exit codes: 0 on a clean run, 1 if the ring/deployment/recovery fails or
the consistency auditor reports findings, 2 if a produced artifact
(health exposition) fails its self-check.
"""

from __future__ import annotations

import asyncio
import sys

from repro.core.config import EternalConfig
from repro.ftcorba.properties import FTProperties
from repro.live.clock import new_event_loop
from repro.live.health_http import start_health_server
from repro.live.loadgen import (
    DRIVER_TYPE,
    LIVE_APPS,
    make_driver_factory,
)
from repro.live.system import LiveSystem
from repro.obs.exporters import ChromeTraceWriter
from repro.obs.telemetry import TelemetryConfig, install_crash_hooks


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 1


def _print_dumps(dumps) -> None:
    for dump in dumps:
        where = dump.path or f"(in memory, {len(dump.records)} records)"
        print(f"flight dump [{dump.reason}] {dump.node}: {where}",
              file=sys.stderr)


async def _run(args) -> int:
    node_ids = [f"n{i + 1}" for i in range(args.nodes)]
    manager_node, server_nodes = node_ids[0], node_ids[1:]
    app = LIVE_APPS[args.app]
    # jsonl export re-reads the retained records at the end; the chrome
    # exporter streams each event as it happens (survives abrupt exits),
    # so it needs no retention at all.
    keep_records = bool(args.trace_out) and args.trace_format == "jsonl"
    telemetry = (TelemetryConfig(flight_dir=args.flight_dir)
                 if args.flight_dir else None)
    profile_session = None
    if getattr(args, "profile", False):
        from repro.obs.profiling import ProfileSession
        profile_session = ProfileSession(
            sample_interval=getattr(args, "profile_sample_interval", 0.005))
    # The live CLI defaults the leader-lease read fast path ON
    # (--no-read-lease restores the paper's pure total order); servants
    # without read_only operations are unaffected either way.
    read_lease = getattr(args, "read_lease", True)
    system = LiveSystem(
        node_ids, keep_trace_records=keep_records, telemetry=telemetry,
        eternal_config=EternalConfig(read_lease=read_lease),
        profiling=profile_session.config if profile_session else None,
        store_dir=getattr(args, "store_dir", None),
        store_fsync=getattr(args, "store_fsync", "checkpoint"))
    if getattr(args, "store_dir", None):
        print(f"durable journals under {args.store_dir} "
              f"(fsync={args.store_fsync})")
    if profile_session is not None:
        profile_session.attach(system)
        profile_session.start()
    trace_writer = None
    if args.trace_out and args.trace_format == "chrome":
        trace_writer = ChromeTraceWriter(args.trace_out)
        system.tracer.subscribe(trace_writer.feed)
    # However this process dies — unhandled exception, SIGINT, plain
    # exit — every node's flight ring lands in --flight-dir first.
    uninstall_hooks = install_crash_hooks(system.telemetry,
                                          on_dump=_print_dumps)
    auditor = system.attach_auditor()
    health_server = None
    recovery_wall = None
    try:
        if args.health_port is not None:
            health_server, port = await start_health_server(
                system, args.health_port)
            print(f"health exposition at http://127.0.0.1:{port}/")

        # -- ring + deployment ------------------------------------------
        if not await system.wait_for(system.ring_formed, timeout=15.0):
            return _fail("Totem ring did not form within 15 s")
        print(f"ring formed across {args.nodes} nodes at "
              f"t={system.now * 1000:.0f} ms (wall clock)")

        system.register_factory(app.type_id,
                                app.make_factory(args.state_size),
                                nodes=server_nodes)
        group = system.create_group(
            "app", app.type_id,
            FTProperties(initial_replicas=len(server_nodes),
                         min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=server_nodes,
        )
        if not await system.wait_for(
                lambda: all(group.is_operational_on(n)
                            for n in server_nodes), timeout=15.0):
            return _fail(f"app group never became operational on "
                         f"{server_nodes}")
        print(f"app {args.app!r} operational on {', '.join(server_nodes)} "
              f"({args.state_size} B state)")

        iogr = group.iogr().stringify()
        driver_factory = (app.make_driver(iogr) if app.make_driver
                          else make_driver_factory(iogr, app.driver_op))
        system.register_factory(DRIVER_TYPE, driver_factory,
                                nodes=[manager_node])
        driver_group = system.create_group(
            "driver", DRIVER_TYPE,
            FTProperties(initial_replicas=1, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=[manager_node],
        )
        if not await system.wait_for(
                lambda: driver_group.is_operational_on(manager_node),
                timeout=15.0):
            return _fail("closed-loop driver never became operational")
        driver = driver_group.servant_on(manager_node)
        if not await system.wait_for(lambda: driver.acked >= 10,
                                     timeout=15.0):
            return _fail("no load flowing (driver got <10 replies in 15 s)")
        t0 = system.now
        print(f"closed-loop load flowing ({app.driver_op!r} invocations)")

        # -- kill / recover ---------------------------------------------
        victim = server_nodes[-1]
        await system.run_for(max(0.0, (t0 + args.kill_after) - system.now))
        print(f"killing {victim} at t={system.now - t0:.2f} s …")
        system.kill_node(victim)
        await system.run_for(args.downtime)
        relaunched_at = system.now
        print(f"re-launching {victim} after {args.downtime * 1000:.0f} ms "
              f"downtime …")
        system.restart_node(victim)
        if not await system.wait_for(
                lambda: group.is_operational_on(victim), timeout=30.0):
            return _fail(f"replica on {victim} did not recover within 30 s")
        recovery_wall = system.now - relaunched_at
        acked_at_recovery = driver.acked
        await system.wait_for(lambda: driver.acked > acked_at_recovery,
                              timeout=10.0)

        # -- let the remaining duration play out ------------------------
        await system.run_for(max(0.0, (t0 + args.duration) - system.now))

        # -- report ------------------------------------------------------
        print(f"\nrecovered {victim} in {recovery_wall * 1000:.2f} ms "
              f"(wall clock, re-launch → operational)")
        print("\nper-phase breakdown (§5.1 steps, wall-clock ms):")
        print(system.metrics.format_table(prefix="span.recovery",
                                          scale=1000.0, unit="ms"))
        progress = {n: app.progress_of(group.servant_on(n))
                    for n in server_nodes
                    if group.servant_on(n) is not None}
        print(f"driver: sent={driver.sent} acked={driver.acked}")
        print("replica progress: "
              + " ".join(f"{n}={v}" for n, v in sorted(progress.items())))
        batches = system.tracer.count("live.sys.recv_batches")
        datagrams = system.tracer.count("live.sys.recv_datagrams")
        if batches:
            print(f"socket batching: {datagrams} datagrams over "
                  f"{batches} wakeups "
                  f"({datagrams / batches:.2f} datagrams/wakeup)")
        fast = system.tracer.count("interceptor.request_fast")
        if read_lease and fast:
            print(f"read fast path: {fast} reads diverted to the "
                  f"leaseholder, "
                  f"{system.tracer.count('lease.fallback')} fell back "
                  f"to the total order")

        if args.health_out or args.health_port is not None:
            from repro.obs.health import parse_exposition, render_health
            exposition = render_health(system, auditor=auditor)
            try:
                parse_exposition(exposition)
            except ValueError as exc:
                print(f"error: health exposition failed its self-check: "
                      f"{exc}", file=sys.stderr)
                return 2
            if args.health_out:
                with open(args.health_out, "w", encoding="utf-8") as fh:
                    fh.write(exposition)
                print(f"wrote health exposition to {args.health_out}")
    finally:
        if health_server is not None:
            health_server.close()
        if profile_session is not None:
            profile_session.stop()
        system.close()

    if args.trace_out:
        if trace_writer is not None:
            trace_writer.close()
            print(f"wrote {trace_writer.events_written} trace events to "
                  f"{args.trace_out} (chrome, streamed)")
        else:
            written = system.export_trace(args.trace_out,
                                          fmt=args.trace_format)
            print(f"wrote {written} trace events to {args.trace_out} "
                  f"({args.trace_format})")
    if profile_session is not None:
        from repro.obs.profiling import syscall_counters
        print("\nper-phase resource attribution (wall vs CPU vs allocs "
              "vs syscalls):")
        print(profile_session.render_table(
            syscalls=syscall_counters(system.tracer.counters)))
        out = getattr(args, "profile_out", None) or "profile.folded"
        lines = profile_session.write_folded(out)
        print(f"wrote {lines} folded stacks to {out} "
              f"({profile_session.sampler.samples_taken} samples; render "
              f"with flamegraph.pl or speedscope)")
    if args.flight_dir:
        # Orderly completion: dump the surviving nodes' rings too, so the
        # run's dumps stitch into full cross-node timelines (the killed
        # node already dumped itself at the moment of the crash).
        _print_dumps(system.telemetry.flight.dump_all("shutdown"))
    uninstall_hooks()
    auditor.finish()
    print(auditor.summary())
    return 0 if auditor.ok else 1


async def _run_sharded(args) -> int:
    """``live --rings N``: the multi-ring scenario — N independent UDP
    rings under one placement layer, closed-loop load on every ring,
    then a kill/recover inside ring ``r0`` while the other rings keep
    streaming (their token rotations never see the fault)."""
    from repro.live.sharded import LiveShardedSystem

    suffixes = [f"n{i + 1}" for i in range(args.nodes)]
    manager, servers = suffixes[0], suffixes[1:]
    app = LIVE_APPS[args.app]
    telemetry = (TelemetryConfig(flight_dir=args.flight_dir)
                 if args.flight_dir else None)
    system = LiveShardedSystem(
        rings=args.rings, node_template=tuple(suffixes),
        eternal_config=EternalConfig(
            read_lease=getattr(args, "read_lease", True)),
        telemetry=telemetry,
        store_dir=getattr(args, "store_dir", None),
        store_fsync=getattr(args, "store_fsync", "checkpoint"))
    uninstall_hooks = install_crash_hooks(system.telemetry,
                                          on_dump=_print_dumps)
    auditor = system.attach_auditor()
    try:
        if not await system.wait_for(system.ring_formed, timeout=20.0):
            return _fail(f"{args.rings} Totem rings did not all form "
                         f"within 20 s")
        print(f"{args.rings} rings formed ({args.nodes} nodes each) at "
              f"t={system.now * 1000:.0f} ms (wall clock)")

        drivers = {}
        for name, sub in system.rings.items():
            server_nodes = [f"{name}.{s}" for s in servers]
            driver_node = f"{name}.{manager}"
            sub.register_factory(app.type_id,
                                 app.make_factory(args.state_size),
                                 nodes=server_nodes)
            group = system.create_group(
                f"app.{name}", app.type_id,
                FTProperties(initial_replicas=len(server_nodes),
                             min_replicas=1,
                             fault_monitoring_interval=0.5),
                nodes=server_nodes)
            if not await system.wait_for(
                    lambda: all(group.is_operational_on(n)
                                for n in server_nodes), timeout=15.0):
                return _fail(f"app group on ring {name} never became "
                             f"operational")
            iogr = group.iogr().stringify()
            driver_factory = (app.make_driver(iogr) if app.make_driver
                              else make_driver_factory(iogr, app.driver_op))
            sub.register_factory(DRIVER_TYPE, driver_factory,
                                 nodes=[driver_node])
            driver_group = system.create_group(
                f"driver.{name}", DRIVER_TYPE,
                FTProperties(initial_replicas=1, min_replicas=1,
                             fault_monitoring_interval=0.5),
                nodes=[driver_node])
            if not await system.wait_for(
                    lambda: driver_group.is_operational_on(driver_node),
                    timeout=15.0):
                return _fail(f"driver on ring {name} never became "
                             f"operational")
            drivers[name] = (driver_group.servant_on(driver_node), group)
        if not await system.wait_for(
                lambda: all(d.acked >= 10 for d, _ in drivers.values()),
                timeout=15.0):
            return _fail("no load flowing on every ring (some driver got "
                         "<10 replies in 15 s)")
        t0 = system.now
        print(f"closed-loop load flowing on all {args.rings} rings "
              f"({app.driver_op!r} invocations)")

        # -- kill / recover inside r0; the other rings never notice -----
        victim_ring = "r0"
        victim = f"{victim_ring}.{servers[-1]}"
        group = drivers[victim_ring][1]
        await system.run_for(max(0.0, (t0 + args.kill_after) - system.now))
        acked_at_kill = {name: d.acked for name, (d, _) in drivers.items()}
        print(f"killing {victim} at t={system.now - t0:.2f} s …")
        system.kill_node(victim)
        await system.run_for(args.downtime)
        relaunched_at = system.now
        print(f"re-launching {victim} after {args.downtime * 1000:.0f} ms "
              f"downtime …")
        system.restart_node(victim)
        if not await system.wait_for(
                lambda: group.is_operational_on(victim), timeout=30.0):
            return _fail(f"replica on {victim} did not recover within 30 s")
        recovery_wall = system.now - relaunched_at
        await system.run_for(max(0.0, (t0 + args.duration) - system.now))

        # -- report ------------------------------------------------------
        print(f"\nrecovered {victim} in {recovery_wall * 1000:.2f} ms "
              f"(wall clock, re-launch → operational)")
        stalled = []
        for name, (driver, _) in sorted(drivers.items()):
            gained = driver.acked - acked_at_kill[name]
            marker = " (faulted ring)" if name == victim_ring else ""
            print(f"  ring {name}: driver acked {driver.acked} "
                  f"(+{gained} since the kill){marker}")
            if name != victim_ring and gained <= 0:
                stalled.append(name)
        print(f"gateway: {system.bridge.forwarded} cross-ring forwards, "
              f"{system.bridge.duplicates} duplicates suppressed")
        if stalled:
            return _fail(f"fault in {victim_ring} stalled healthy "
                         f"rings: {', '.join(stalled)}")
    finally:
        system.close()
    if args.flight_dir:
        _print_dumps(system.telemetry.flight.dump_all("shutdown"))
    uninstall_hooks()
    auditor.finish()
    print(auditor.summary())
    return 0 if auditor.ok else 1


def run_live(args) -> int:
    """Entry point used by ``python -m repro live``."""
    if args.nodes < 3:
        return _fail("--nodes must be >= 3 (manager + at least two "
                     "app replicas)")
    if args.app not in LIVE_APPS:
        return _fail(f"unknown app {args.app!r} "
                     f"(choices: {', '.join(sorted(LIVE_APPS))})")
    if args.kill_after >= args.duration:
        return _fail("--kill-after must be less than --duration")
    rings = getattr(args, "rings", 1)
    if rings < 1:
        return _fail("--rings must be >= 1")
    if rings > 1 and (getattr(args, "profile", False) or args.trace_out
                      or args.health_port is not None or args.health_out):
        return _fail("--rings > 1 does not support --profile/--trace-out/"
                     "--health-port/--health-out yet; run those "
                     "single-ring")
    use_uvloop = getattr(args, "uvloop", False)
    try:
        # asyncio.Runner so the loop factory is pluggable (--uvloop swaps
        # in uvloop's implementation when the optional extra is present).
        with asyncio.Runner(
                loop_factory=lambda: new_event_loop(
                    use_uvloop=use_uvloop)) as runner:
            return runner.run(_run_sharded(args) if rings > 1
                              else _run(args))
    except RuntimeError as exc:
        if "uvloop" in str(exc):
            return _fail(str(exc))
        raise
