"""UDP transport for the live runtime.

Each node owns one non-blocking UDP socket on loopback.  Unicast goes
straight to the destination node's port; broadcast goes to a
:class:`SegmentDispatcher` — a tiny software switch that forwards every
frame to *all* member ports, the sender's included, emulating the shared
Ethernet segment of the paper's testbed (Totem relies on self-delivery
of its own multicasts).

Frames carry a small header (magic, source node id) followed by the
Totem frame in the versioned binary CDR codec of
:mod:`repro.totem.wire` — the same marshalling layer the IIOP stack
uses.  Unlike the pickle encoding this transport started with, decoding
a hostile datagram can only ever produce Totem message objects, and a
frame from an incompatible build is rejected by its version octet
instead of being mis-parsed.

The MTU contract is enforced on the *declared* ``size_bytes`` of each
payload, exactly like the simulator's network model: the ring member
fragments application messages to honest 1500-byte Ethernet frames even
though the loopback interface would happily carry 64 KB datagrams.  The
encoded representation is slightly larger than the declared size (CDR
alignment padding); loopback's real MTU (65 536) absorbs the overhead.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MarshalError, NetworkError, ProtocolError, \
    UnmarshalError
from repro.runtime.interfaces import Host, Transport
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.totem.wire import decode_frame_payload, encode_frame_payload

Address = Tuple[str, int]

#: Largest declared payload per frame — the simulator's Ethernet model
#: (1518-byte frame minus the 18-byte header) so fragment counts, and
#: therefore recovery-vs-state-size behaviour, match the simulation.
LIVE_MTU_PAYLOAD = 1500

_MAGIC = b"ET2\x00"     # bumped with the pickle -> CDR codec switch
_HEADER = struct.Struct("!4sH")     # magic, src-id length


def encode_frame(src: str, payload: Any) -> bytes:
    """Encode one frame: magic, source node id, CDR-encoded Totem frame."""
    src_bytes = src.encode("utf-8")
    try:
        body = encode_frame_payload(payload)
    except (MarshalError, ProtocolError) as exc:
        raise NetworkError(f"unencodable frame payload: {exc}") from exc
    return _HEADER.pack(_MAGIC, len(src_bytes)) + src_bytes + body


def decode_frame(data: bytes) -> Tuple[str, Any]:
    """Decode a frame back into ``(src, payload)``; raises
    :class:`NetworkError` on anything malformed."""
    if len(data) < _HEADER.size:
        raise NetworkError(f"short frame ({len(data)} bytes)")
    magic, src_len = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise NetworkError(f"bad frame magic {magic!r}")
    end = _HEADER.size + src_len
    if len(data) < end:
        raise NetworkError("truncated frame source id")
    src = data[_HEADER.size:end].decode("utf-8")
    try:
        payload = decode_frame_payload(data[end:])
    except (UnmarshalError, ProtocolError, ValueError) as exc:
        raise NetworkError(f"undecodable frame payload: {exc}") from exc
    return src, payload


def bind_udp_socket(port: int = 0) -> socket.socket:
    """A non-blocking UDP socket bound to loopback.

    ``SO_REUSEADDR`` lets a restarted node re-bind the port its peers
    already know (their peer table is fixed at system construction)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", port))
    sock.setblocking(False)
    return sock


class UdpTransport(Transport):
    """One node's attachment to the emulated segment (see module docstring).

    A process restart builds a *new* transport on a *new* socket bound to
    the same port; this one is closed by the node wrapper, exactly as the
    simulator's network detaches a crashed process's endpoint.
    """

    def __init__(
        self,
        process: Host,
        sock: socket.socket,
        peers: Dict[str, Address],
        segment_addr: Address,
        *,
        mtu_payload: int = LIVE_MTU_PAYLOAD,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(process)
        self._sock = sock
        self._peers = peers
        self._segment_addr = segment_addr
        self._mtu_payload = mtu_payload
        self._tracer = tracer
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def mtu_payload(self) -> int:
        return self._mtu_payload

    @property
    def local_addr(self) -> Address:
        return self._sock.getsockname()

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    def open(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start reading: frames arriving on the socket are dispatched on
        the event loop thread."""
        self._loop = loop
        loop.add_reader(self._sock.fileno(), self._on_readable)

    def close(self) -> None:
        """Stop reading and release the socket (SIGKILL-style: anything
        in flight to this port is dropped by the kernel)."""
        if self._loop is not None:
            self._loop.remove_reader(self._sock.fileno())
            self._loop = None
        self._sock.close()

    def _on_readable(self) -> None:
        # Syscall accounting (``live.sys.*``, see repro.obs.profiling):
        # one wakeup drains the socket, so recvfrom calls = datagrams + 1
        # (the terminating EAGAIN) and datagrams/batches is the kernel
        # batching the drain loop actually achieves.
        tracer = self._tracer
        tracer.add("live.sys.recv_batches", 1)
        datagrams = 0
        while True:
            tracer.add("live.sys.recvfrom", 1)
            try:
                data, _addr = self._sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                tracer.add("live.sys.recv_eagain", 1)
                tracer.add("live.sys.recv_datagrams", datagrams)
                return
            except OSError:
                # e.g. ECONNREFUSED surfaced from a prior send to a dead
                # peer's port (Linux reports the ICMP error on the socket).
                continue
            datagrams += 1
            if not self.process.alive:
                continue
            try:
                src, payload = decode_frame(data)
            except NetworkError:
                tracer.emit("live", "bad_frame", node=self.node_id,
                            size=len(data))
                continue
            tracer.add("live.codec.bytes_in", len(data))
            self.deliver(src, payload)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _check_size(self, size_bytes: int) -> None:
        if size_bytes > self._mtu_payload:
            raise NetworkError(
                f"payload of {size_bytes} bytes exceeds the MTU "
                f"({self._mtu_payload} bytes) — fragment it first"
            )

    def _send(self, data: bytes, addr: Address) -> None:
        self._tracer.add("live.sys.sendto", 1)
        try:
            self._sock.sendto(data, addr)
        except BlockingIOError:
            # Socket buffer full (EAGAIN) — counted apart from generic
            # drops: a nonzero rate here means the sender outruns the
            # kernel buffer, a different problem than a dead peer.
            self._tracer.add("live.sys.send_eagain", 1)
            self._tracer.emit("live", "send_drop", node=self.node_id)
        except OSError:
            # Dead peer (port closed) or transient buffer pressure: UDP
            # semantics — drop the frame; Totem's retransmission machinery
            # owns reliability.
            self._tracer.emit("live", "send_drop", node=self.node_id)

    def unicast(
        self, dst: str, payload: Any, size_bytes: int, *, oob: bool = False,
    ) -> None:
        # ``oob`` is accepted for interface parity and ignored: real UDP
        # unicast is already point-to-point and off the Totem ring; there
        # is no separate physical lane to select on a single interface.
        self._check_size(size_bytes)
        try:
            addr = self._peers[dst]
        except KeyError:
            raise NetworkError(f"unknown destination node {dst!r}") from None
        data = encode_frame(self.node_id, payload)
        self._tracer.add("live.codec.bytes_out", len(data))
        self._send(data, addr)

    def broadcast(self, payload: Any, size_bytes: int) -> None:
        self._check_size(size_bytes)
        data = encode_frame(self.node_id, payload)
        self._tracer.add("live.codec.bytes_out", len(data))
        self._send(data, self._segment_addr)


class SegmentDispatcher:
    """The emulated shared segment: one UDP socket that forwards every
    datagram it receives to all member ports (the origin included — the
    source id travels inside the frame, so forwarding is verbatim)."""

    def __init__(self) -> None:
        self._sock = bind_udp_socket()
        self._members: List[Address] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def addr(self) -> Address:
        return self._sock.getsockname()

    def set_members(self, addrs: List[Address]) -> None:
        self._members = list(addrs)

    def add_member(self, addr: Address) -> None:
        self._members.append(addr)

    def open(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        loop.add_reader(self._sock.fileno(), self._on_readable)

    def close(self) -> None:
        if self._loop is not None:
            self._loop.remove_reader(self._sock.fileno())
            self._loop = None
        self._sock.close()

    def _on_readable(self) -> None:
        while True:
            try:
                data, _addr = self._sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                continue
            for member in self._members:
                try:
                    self._sock.sendto(data, member)
                except OSError:
                    continue
