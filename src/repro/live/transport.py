"""UDP transport for the live runtime.

Each node owns one non-blocking UDP socket on loopback.  Unicast goes
straight to the destination node's port; broadcast goes to a
:class:`SegmentDispatcher` — a tiny software switch that forwards every
frame to *all* member ports, the sender's included, emulating the shared
Ethernet segment of the paper's testbed (Totem relies on self-delivery
of its own multicasts).

Frames carry a small header (magic, source node id) followed by the
Totem frame in the versioned binary CDR codec of
:mod:`repro.totem.wire` — the same marshalling layer the IIOP stack
uses.  Unlike the pickle encoding this transport started with, decoding
a hostile datagram can only ever produce Totem message objects, and a
frame from an incompatible build is rejected by its version octet
instead of being mis-parsed.

Raw-speed structure of the hot path:

* **Batched receive** — each readable wakeup drains the socket to
  EAGAIN: a short C-speed ``recvfrom_into`` prefix for the shallow
  common case, then ``recvmmsg`` (via :mod:`repro.live._mmsg`) into
  preallocated buffers once the queue is provably deep, falling back to
  a pure ``recvfrom_into`` loop when batching is unavailable; either
  way one wakeup handles every queued datagram and the achieved
  batching is visible in telemetry (``live.sys.recv_batch_size``).
* **Coalesced send** — while a receive drain is running, frames from
  ``unicast``/``broadcast`` queue up and flush once at the end of the
  wakeup — the reply bursts a drained datagram triggers batch for
  free, through ``sendmmsg`` once the flush is deep enough to amortize
  its setup and a C ``sendto`` loop below that.  Outside a drain,
  ordinary frames coalesce per event-loop iteration (a flush scheduled
  with ``call_soon`` sweeps everything the iteration's timer callbacks
  produced), while the token forward — the rotation's critical path —
  goes straight to ``sendto`` with zero queueing latency.  Send order
  is preserved within each regime.
* **Zero-copy decode** — the single per-datagram ``bytes`` copy made by
  the receive path is the buffer all decoded chunk views point into;
  :func:`decode_frame` hands the codec a ``memoryview`` so payload
  bodies are never copied again, and :func:`encode_frame` reuses one
  scratch buffer per transport for the CDR body.

The MTU contract is enforced on the *declared* ``size_bytes`` of each
payload, exactly like the simulator's network model: the ring member
fragments application messages to honest 1500-byte Ethernet frames even
though the loopback interface would happily carry 64 KB datagrams.  The
encoded representation is slightly larger than the declared size (CDR
alignment padding); loopback's real MTU (65 536) absorbs the overhead.
"""

from __future__ import annotations

import asyncio
import errno as _errno
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MarshalError, NetworkError, ProtocolError, \
    UnmarshalError
from repro.live import _mmsg
from repro.runtime.interfaces import Host, Transport
from repro.runtime.trace import NULL_TRACER, Tracer
from repro.totem.messages import Token
from repro.totem.wire import decode_frame_payload, encode_frame_payload_into

Address = Tuple[str, int]

#: Largest declared payload per frame — the simulator's Ethernet model
#: (1518-byte frame minus the 18-byte header) so fragment counts, and
#: therefore recovery-vs-state-size behaviour, match the simulation.
LIVE_MTU_PAYLOAD = 1500

_MAGIC = b"ET2\x00"     # bumped with the pickle -> CDR codec switch
_HEADER = struct.Struct("!4sH")     # magic, src-id length

#: Loopback errnos that mean "the peer's port is closed" — expected noise
#: while kill tests are running, not a transport failure.
_DEAD_PEER_ERRNOS = _mmsg.DEAD_PEER_ERRNOS

#: Safety bound on drain iterations per wakeup (each iteration is one
#: syscall; a healthy drain exits via EAGAIN long before this).
_MAX_DRAIN_ROUNDS = 4096

#: Minimum queued frames before a flush pays the ctypes ``sendmmsg``
#: machinery; below this a C-speed ``sendto`` loop is faster (measured:
#: the Python-side per-item scatter/gather setup costs more than the
#: syscalls it saves until the batch is this deep).
_MMSG_SEND_MIN = 16

#: Datagrams drained through ``recvfrom_into`` before a wakeup switches
#: to ``recvmmsg`` — shallow queues (the latency-bound common case)
#: never pay the ctypes overhead; provably deep saturation drains still
#: batch the remainder.
_HYBRID_RECV_PREFIX = 8


def encode_frame(src: str, payload: Any,
                 scratch: Optional[bytearray] = None) -> bytes:
    """Encode one frame: magic, source node id, CDR-encoded Totem frame.

    ``scratch`` is an optional reusable buffer for the CDR body (cleared
    here); the returned frame is always a fresh immutable ``bytes``.
    """
    src_bytes = src.encode("utf-8")
    body = scratch if scratch is not None else bytearray()
    del body[:]
    try:
        encode_frame_payload_into(body, payload)
    except (MarshalError, ProtocolError) as exc:
        raise NetworkError(f"unencodable frame payload: {exc}") from exc
    return _HEADER.pack(_MAGIC, len(src_bytes)) + src_bytes + body


def decode_frame(data: bytes) -> Tuple[str, Any]:
    """Decode a frame back into ``(src, payload)``; raises
    :class:`NetworkError` on anything malformed.

    ``data`` must be an immutable buffer: chunk fields of the decoded
    payload are zero-copy ``memoryview`` slices into it.
    """
    if len(data) < _HEADER.size:
        raise NetworkError(f"short frame ({len(data)} bytes)")
    magic, src_len = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise NetworkError(f"bad frame magic {magic!r}")
    end = _HEADER.size + src_len
    if len(data) < end:
        raise NetworkError("truncated frame source id")
    view = memoryview(data)
    try:
        src = str(view[_HEADER.size:end], "utf-8")
    except UnicodeDecodeError as exc:
        raise NetworkError(f"bad frame source id: {exc}") from exc
    try:
        payload = decode_frame_payload(view[end:])
    except (UnmarshalError, ProtocolError, ValueError) as exc:
        raise NetworkError(f"undecodable frame payload: {exc}") from exc
    return src, payload


def bind_udp_socket(port: int = 0) -> socket.socket:
    """A non-blocking UDP socket bound to loopback.

    ``SO_REUSEADDR`` lets a restarted node re-bind the port its peers
    already know (their peer table is fixed at system construction)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", port))
    sock.setblocking(False)
    return sock


class UdpTransport(Transport):
    """One node's attachment to the emulated segment (see module docstring).

    A process restart builds a *new* transport on a *new* socket bound to
    the same port; this one is closed by the node wrapper, exactly as the
    simulator's network detaches a crashed process's endpoint.
    """

    def __init__(
        self,
        process: Host,
        sock: socket.socket,
        peers: Dict[str, Address],
        segment_addr: Address,
        *,
        mtu_payload: int = LIVE_MTU_PAYLOAD,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(process)
        self._sock = sock
        self._peers = peers
        self._segment_addr = segment_addr
        self._mtu_payload = mtu_payload
        self._tracer = tracer
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._mmsg = _mmsg.new_batch()
        self._recv_buf = bytearray(65536)       # portable-path fill buffer
        self._encode_scratch = bytearray()      # reusable CDR body buffer
        self._send_queue: List[Tuple[bytes, Address]] = []
        self._in_drain = False
        self._batch_sample = 0      # 1-in-32 recv_batch record sampler

    @property
    def mtu_payload(self) -> int:
        return self._mtu_payload

    @property
    def local_addr(self) -> Address:
        return self._sock.getsockname()

    @property
    def batching(self) -> bool:
        """True when the sendmmsg/recvmmsg path is active."""
        return self._mmsg is not None

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    def open(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start reading: frames arriving on the socket are dispatched on
        the event loop thread."""
        self._loop = loop
        loop.add_reader(self._sock.fileno(), self._on_readable)

    def close(self) -> None:
        """Stop reading and release the socket (SIGKILL-style: anything
        in flight to this port is dropped by the kernel)."""
        if self._loop is not None:
            self._loop.remove_reader(self._sock.fileno())
            self._loop = None
        self._closed = True
        self._send_queue.clear()
        self._sock.close()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_readable(self) -> None:
        # Syscall accounting (``live.sys.*``, see repro.obs.profiling):
        # one wakeup drains the socket, so datagrams/batches is the
        # kernel batching the drain loop actually achieves.
        tracer = self._tracer
        tracer.add("live.sys.recv_batches", 1)
        self._in_drain = True
        try:
            if self._mmsg is not None:
                datagrams = self._drain_mmsg()
            else:
                datagrams = self._drain_portable()
        finally:
            self._in_drain = False
            self._flush_sends()
        tracer.add("live.sys.recv_datagrams", datagrams)
        # The batch-size *record* (feeding the live.sys.recv_batch_size
        # histogram and repro top) is sampled 1-in-32: a full record per
        # wakeup costs more than the drain it measures, and an unbiased
        # subsample keeps the distribution honest.  The counters above
        # stay exact.
        self._batch_sample += 1
        if not self._batch_sample & 31:
            tracer.emit("live", "recv_batch", node=self.node_id,
                        n=datagrams)

    def _drain_mmsg(self) -> int:
        # Hybrid drain: the first few datagrams go through the socket
        # module's C-speed ``recvfrom_into`` — at ~1 datagram/wakeup
        # (the latency-bound common case) that is strictly cheaper than
        # ctypes ``recvmmsg`` on a batch of one.  Only once the queue is
        # provably deep does the batched path take over for the rest.
        tracer = self._tracer
        buf = self._recv_buf
        datagrams = 0
        for _ in range(_HYBRID_RECV_PREFIX):
            tracer.add("live.sys.recvfrom", 1)
            try:
                nbytes, _addr = self._sock.recvfrom_into(buf)
            except (BlockingIOError, InterruptedError):
                tracer.add("live.sys.recv_eagain", 1)
                return datagrams
            except OSError:
                continue
            datagrams += 1
            self._handle_datagram(bytes(buf[:nbytes]))
        fd = self._sock.fileno()
        for _ in range(_MAX_DRAIN_ROUNDS):
            tracer.add("live.sys.recvmmsg", 1)
            try:
                msgs, truncated, drained = self._mmsg.recv(fd)
            except OSError:
                break
            if truncated:
                tracer.add("live.sys.recv_trunc", truncated)
            datagrams += len(msgs)
            for data in msgs:
                self._handle_datagram(data)
            if drained:
                if not msgs:
                    tracer.add("live.sys.recv_eagain", 1)
                break
        return datagrams

    def _drain_portable(self) -> int:
        tracer = self._tracer
        buf = self._recv_buf
        datagrams = 0
        for _ in range(_MAX_DRAIN_ROUNDS):
            tracer.add("live.sys.recvfrom", 1)
            try:
                nbytes, _addr = self._sock.recvfrom_into(buf)
            except (BlockingIOError, InterruptedError):
                tracer.add("live.sys.recv_eagain", 1)
                break
            except OSError:
                # e.g. ECONNREFUSED surfaced from a prior send to a dead
                # peer's port (Linux reports the ICMP error on the socket).
                continue
            datagrams += 1
            self._handle_datagram(bytes(buf[:nbytes]))
        return datagrams

    def _handle_datagram(self, data: bytes) -> None:
        if not self.process.alive:
            return
        try:
            src, payload = decode_frame(data)
        except NetworkError:
            self._tracer.emit("live", "bad_frame", node=self.node_id,
                              size=len(data))
            return
        self._tracer.add("live.codec.bytes_in", len(data))
        self.deliver(src, payload)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _check_size(self, size_bytes: int) -> None:
        if size_bytes > self._mtu_payload:
            raise NetworkError(
                f"payload of {size_bytes} bytes exceeds the MTU "
                f"({self._mtu_payload} bytes) — fragment it first"
            )

    def _send(self, data: bytes, addr: Address, *,
              urgent: bool = False) -> None:
        """Send one frame.  During a receive drain frames are queued
        and flushed once at the end of the wakeup, so the bursts a
        delivered datagram triggers (acks, retransmissions, the RPC
        fan-out) coalesce into ``sendmmsg`` batches.  Outside a drain,
        ordinary frames queue behind a flush scheduled for the next
        loop pass — every timer callback expiring this iteration (the
        container's reply completions under concurrent load) lands in
        one burst, which is also what lets the *receiving* socket
        drain them as one batch.  ``urgent`` frames (the token forward,
        the rotation's critical path) skip the queue entirely: one
        extra loop pass per hop is real latency on every rotation."""
        if self._closed:
            return
        if self._in_drain:
            self._send_queue.append((data, addr))
            return
        if urgent:
            self._tracer.add("live.sys.send_flushes", 1)
            self._sendto(data, addr)
            return
        if not self._send_queue and self._loop is not None:
            self._loop.call_soon(self._flush_sends)
        self._send_queue.append((data, addr))

    def _flush_sends(self) -> None:
        if self._closed or not self._send_queue:
            return
        queue = self._send_queue
        self._send_queue = []
        tracer = self._tracer
        tracer.add("live.sys.send_flushes", 1)
        if len(queue) < _MMSG_SEND_MIN:
            # Shallow flush (the latency-bound common case): the socket
            # module's C ``sendto`` loop beats the ctypes sendmmsg
            # machinery until the batch is deep enough to amortize the
            # per-item scatter/gather setup.
            for data, addr in queue:
                self._sendto(data, addr)
            return
        if self._mmsg is not None:
            result = self._mmsg.send(self._sock.fileno(), queue)
            tracer.add("live.sys.sendmmsg", result.syscalls)
            if result.eagain:
                tracer.add("live.sys.send_eagain", result.eagain)
                for _ in range(result.eagain):
                    tracer.emit("live", "send_drop", node=self.node_id)
            if result.dead_peer:
                tracer.add("live.sys.send_dead_peer", result.dead_peer)
                for _ in range(result.dead_peer):
                    tracer.emit("live", "send_dead_peer", node=self.node_id)
            if result.other:
                for _ in range(result.other):
                    tracer.emit("live", "send_drop", node=self.node_id)
            return
        for data, addr in queue:
            self._sendto(data, addr)

    def _sendto(self, data: bytes, addr: Address) -> None:
        self._tracer.add("live.sys.sendto", 1)
        try:
            self._sock.sendto(data, addr)
        except BlockingIOError:
            # Socket buffer full (EAGAIN) — counted apart from generic
            # drops: a nonzero rate here means the sender outruns the
            # kernel buffer, a different problem than a dead peer.
            self._tracer.add("live.sys.send_eagain", 1)
            self._tracer.emit("live", "send_drop", node=self.node_id)
        except OSError as exc:
            if exc.errno in _DEAD_PEER_ERRNOS:
                # Dead peer (port closed): expected noise during kill
                # tests — drop the frame (UDP semantics; Totem's
                # retransmission machinery owns reliability) but count
                # it apart from real send failures.
                self._tracer.add("live.sys.send_dead_peer", 1)
                self._tracer.emit("live", "send_dead_peer",
                                  node=self.node_id)
            else:
                self._tracer.emit("live", "send_drop", node=self.node_id)

    def unicast(
        self, dst: str, payload: Any, size_bytes: int, *, oob: bool = False,
    ) -> None:
        # ``oob`` is accepted for interface parity and ignored: real UDP
        # unicast is already point-to-point and off the Totem ring; there
        # is no separate physical lane to select on a single interface.
        self._check_size(size_bytes)
        try:
            addr = self._peers[dst]
        except KeyError:
            raise NetworkError(f"unknown destination node {dst!r}") from None
        data = encode_frame(self.node_id, payload, self._encode_scratch)
        self._tracer.add("live.codec.bytes_out", len(data))
        self._send(data, addr, urgent=isinstance(payload, Token))

    def broadcast(self, payload: Any, size_bytes: int) -> None:
        self._check_size(size_bytes)
        data = encode_frame(self.node_id, payload, self._encode_scratch)
        self._tracer.add("live.codec.bytes_out", len(data))
        self._send(data, self._segment_addr,
                   urgent=isinstance(payload, Token))


class SegmentDispatcher:
    """The emulated shared segment: one UDP socket that forwards every
    datagram it receives to all member ports (the origin included — the
    source id travels inside the frame, so forwarding is verbatim).

    Forwarding is batched end-to-end: one wakeup drains the socket and
    the whole ``datagrams × members`` fan-out goes out in as few
    ``sendmmsg`` syscalls as possible."""

    def __init__(self) -> None:
        self._sock = bind_udp_socket()
        self._members: List[Address] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._mmsg = _mmsg.new_batch()
        self._recv_buf = bytearray(65536)

    @property
    def addr(self) -> Address:
        return self._sock.getsockname()

    def set_members(self, addrs: List[Address]) -> None:
        self._members = list(addrs)

    def add_member(self, addr: Address) -> None:
        self._members.append(addr)

    def open(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        loop.add_reader(self._sock.fileno(), self._on_readable)

    def close(self) -> None:
        if self._loop is not None:
            self._loop.remove_reader(self._sock.fileno())
            self._loop = None
        self._sock.close()

    def _on_readable(self) -> None:
        # Hybrid drain, like UdpTransport._drain_mmsg: the first two
        # datagrams use the C-speed ``recvfrom_into``; only a provably
        # deep queue pays the ctypes ``recvmmsg`` machinery.
        sock = self._sock
        buf = self._recv_buf
        members = self._members
        fanout: List[Tuple[bytes, Address]] = []
        drained = False
        for _ in range(_HYBRID_RECV_PREFIX):
            try:
                nbytes, _addr = sock.recvfrom_into(buf)
            except (BlockingIOError, InterruptedError):
                drained = True
                break
            except OSError:
                continue
            data = bytes(buf[:nbytes])
            for member in members:
                fanout.append((data, member))
        if not drained:
            if self._mmsg is not None:
                fd = sock.fileno()
                for _ in range(_MAX_DRAIN_ROUNDS):
                    try:
                        msgs, _truncated, deep_drained = self._mmsg.recv(fd)
                    except OSError:
                        break
                    for data in msgs:
                        for member in members:
                            fanout.append((data, member))
                    if deep_drained:
                        break
            else:
                for _ in range(_MAX_DRAIN_ROUNDS):
                    try:
                        nbytes, _addr = sock.recvfrom_into(buf)
                    except (BlockingIOError, InterruptedError):
                        break
                    except OSError:
                        continue
                    data = bytes(buf[:nbytes])
                    for member in members:
                        fanout.append((data, member))
        if not fanout:
            return
        if self._mmsg is not None and len(fanout) >= _MMSG_SEND_MIN:
            self._mmsg.send(sock.fileno(), fanout)
            return
        for data, member in fanout:
            try:
                sock.sendto(data, member)
            except OSError:
                continue
