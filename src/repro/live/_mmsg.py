"""Opportunistic ``sendmmsg(2)`` / ``recvmmsg(2)`` batching via ctypes.

The live transport's hot cost is the per-datagram syscall: one
``recvfrom`` per received frame and one ``sendto`` per destination.
Linux can move a whole batch per syscall with ``sendmmsg``/``recvmmsg``;
Python's :mod:`socket` does not expose them, so this module binds the
libc wrappers with :mod:`ctypes` and manages preallocated scatter/gather
arrays per socket.

Availability is *probed functionally* at import (a real send+recv round
trip over a loopback socket), and everything degrades gracefully: if the
symbols are missing, the probe fails, or ``REPRO_NO_MMSG`` is set in the
environment, :func:`new_batch` returns ``None`` and the transport falls
back to its portable batched loop (``recvfrom_into`` until EAGAIN,
per-datagram ``sendto``).  The fallback is semantically identical —
batching is a syscall-count optimization, never a protocol change.
"""

from __future__ import annotations

import ctypes
import errno
import os
import socket
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

Address = Tuple[str, int]

#: Errnos that mean "the peer's port is closed" on loopback — dead-peer
#: noise during kill tests, classified apart from real send failures.
DEAD_PEER_ERRNOS = frozenset({errno.ECONNREFUSED, errno.EHOSTUNREACH})

_EAGAIN_ERRNOS = frozenset({errno.EAGAIN, errno.EWOULDBLOCK})


class _IoVec(ctypes.Structure):
    # ``iov_base`` is declared ``c_char_p`` so the send path can assign a
    # ``bytes`` object directly (one C-level conversion) instead of
    # wrapping it in two fresh ctypes objects per datagram.
    _fields_ = [
        ("iov_base", ctypes.c_char_p),
        ("iov_len", ctypes.c_size_t),
    ]


class _MsgHdr(ctypes.Structure):
    # Linux layout; ctypes inserts the natural-alignment padding.
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint32),
        ("msg_iov", ctypes.POINTER(_IoVec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _MMsgHdr(ctypes.Structure):
    _fields_ = [
        ("msg_hdr", _MsgHdr),
        ("msg_len", ctypes.c_uint),
    ]


class _SockaddrIn(ctypes.Structure):
    _fields_ = [
        ("sin_family", ctypes.c_uint16),
        ("sin_port", ctypes.c_uint16),      # network byte order
        ("sin_addr", ctypes.c_uint32),      # network byte order
        ("sin_zero", ctypes.c_uint8 * 8),
    ]


def _load_libc():
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        sendmmsg = libc.sendmmsg
        recvmmsg = libc.recvmmsg
    except (OSError, AttributeError):
        return None
    sendmmsg.restype = ctypes.c_int
    sendmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_MMsgHdr),
                         ctypes.c_uint, ctypes.c_int]
    recvmmsg.restype = ctypes.c_int
    recvmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_MMsgHdr),
                         ctypes.c_uint, ctypes.c_int, ctypes.c_void_p]
    return sendmmsg, recvmmsg


_LIBC = _load_libc()


@dataclass
class SendResult:
    """Outcome of one batched send: datagrams handed to the kernel plus
    the drop counts per failure class."""

    sent: int = 0
    eagain: int = 0         # socket buffer full; remainder dropped
    dead_peer: int = 0      # ECONNREFUSED/EHOSTUNREACH (kill-test noise)
    other: int = 0          # any other per-message errno
    syscalls: int = 0


class MmsgBatch:
    """Preallocated scatter/gather arrays for one socket's batched I/O.

    One instance belongs to one transport (arrays are reused across
    calls, never shared across sockets concurrently).
    """

    def __init__(self, max_batch: int = 32, buf_size: int = 4096) -> None:
        if _LIBC is None:
            raise OSError("sendmmsg/recvmmsg unavailable")
        self._sendmmsg, self._recvmmsg = _LIBC
        self._n = max_batch
        self._buf_size = buf_size
        # Receive side: fixed buffers, headers set up once.
        self._recv_bufs = ((ctypes.c_char * buf_size) * max_batch)()
        self._recv_iovs = (_IoVec * max_batch)()
        self._recv_hdrs = (_MMsgHdr * max_batch)()
        for i in range(max_batch):
            self._recv_iovs[i].iov_base = ctypes.cast(
                self._recv_bufs[i], ctypes.c_char_p)
            self._recv_iovs[i].iov_len = buf_size
            hdr = self._recv_hdrs[i].msg_hdr
            hdr.msg_iov = ctypes.pointer(self._recv_iovs[i])
            hdr.msg_iovlen = 1
        # Send side: per-slot destination sockaddr + iovec.
        self._send_addrs = (_SockaddrIn * max_batch)()
        self._send_iovs = (_IoVec * max_batch)()
        self._send_hdrs = (_MMsgHdr * max_batch)()
        for i in range(max_batch):
            hdr = self._send_hdrs[i].msg_hdr
            hdr.msg_name = ctypes.cast(
                ctypes.pointer(self._send_addrs[i]), ctypes.c_void_p)
            hdr.msg_namelen = ctypes.sizeof(_SockaddrIn)
            hdr.msg_iov = ctypes.pointer(self._send_iovs[i])
            hdr.msg_iovlen = 1
        # Per-slot proxies resolved once: ctypes array indexing builds a
        # fresh wrapper object per access, which would otherwise dominate
        # the per-item setup below.
        self._send_addr_refs = [ctypes.byref(self._send_addrs[i])
                                for i in range(max_batch)]
        self._send_iov_slots = [self._send_iovs[i]
                                for i in range(max_batch)]
        self._addr_cache: dict = {}

    @property
    def max_batch(self) -> int:
        return self._n

    def _packed_sockaddr(self, addr: Address) -> bytes:
        """The full ``sockaddr_in`` image for ``(host, port)``, cached:
        the per-item send setup is one ``memmove`` of these 16 bytes
        instead of three (slow) ctypes field assignments."""
        packed = self._addr_cache.get(addr)
        if packed is None:
            host, port = addr
            packed = struct.pack("=HHI8s", socket.AF_INET,
                                 socket.htons(port),
                                 struct.unpack("=I", socket.inet_aton(host))[0],
                                 b"\x00" * 8)
            self._addr_cache[addr] = packed
        return packed

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def recv(self, fd: int) -> Tuple[List[bytes], int, bool]:
        """One ``recvmmsg`` call: ``(datagrams, truncated, drained)``.

        ``drained`` is True when the socket is (almost certainly) empty —
        EAGAIN, or fewer messages than the batch had room for.  Each
        returned datagram is a fresh immutable ``bytes`` copied out of
        the reused kernel-fill buffer: the one unavoidable copy per
        datagram, and the buffer zero-copy decode views point into.
        """
        r = self._recvmmsg(fd, self._recv_hdrs, self._n, 0, None)
        if r < 0:
            err = ctypes.get_errno()
            if err in _EAGAIN_ERRNOS:
                return [], 0, True
            if err == errno.EINTR or err in DEAD_PEER_ERRNOS:
                # Dead-peer ICMP errors surface on the socket queue; eat
                # one and let the caller loop (matches the per-datagram
                # path's ``except OSError: continue``).
                return [], 0, False
            raise OSError(err, os.strerror(err))
        out: List[bytes] = []
        truncated = 0
        for i in range(r):
            hdr = self._recv_hdrs[i]
            if hdr.msg_hdr.msg_flags & socket.MSG_TRUNC:
                truncated += 1
                continue
            out.append(self._recv_bufs[i][:hdr.msg_len])
        return out, truncated, r < self._n

    # ------------------------------------------------------------------
    # Send
    # ------------------------------------------------------------------

    def send(self, fd: int, items: List[Tuple[bytes, Address]]) -> SendResult:
        """Send every ``(data, (host, port))`` with as few syscalls as
        possible.  Per-message destinations are supported directly, so
        callers never need to group by destination.  UDP drop semantics
        are preserved: EAGAIN drops the remainder of the queue (the
        kernel buffer is full; Totem retransmission owns reliability),
        a dead-peer errno drops that one message and continues."""
        result = SendResult()
        total = len(items)
        index = 0
        addr_cache = self._addr_cache
        addr_refs = self._send_addr_refs
        iov_slots = self._send_iov_slots
        sockaddr_size = ctypes.sizeof(_SockaddrIn)
        memmove = ctypes.memmove
        while index < total:
            round_count = min(self._n, total - index)
            for slot in range(round_count):
                data, addr = items[index + slot]
                packed = addr_cache.get(addr)
                if packed is None:
                    packed = self._packed_sockaddr(addr)
                memmove(addr_refs[slot], packed, sockaddr_size)
                iov = iov_slots[slot]
                # The bytes object stays referenced via ``items`` for the
                # duration of the call, so the raw pointer is safe.
                iov.iov_base = data
                iov.iov_len = len(data)
            done = 0
            while done < round_count:
                result.syscalls += 1
                r = self._sendmmsg(
                    fd,
                    ctypes.cast(
                        ctypes.byref(self._send_hdrs,
                                     done * ctypes.sizeof(_MMsgHdr)),
                        ctypes.POINTER(_MMsgHdr)),
                    round_count - done, 0)
                if r > 0:
                    done += r
                    result.sent += r
                    continue
                err = ctypes.get_errno()
                if err == errno.EINTR:
                    continue
                if err in _EAGAIN_ERRNOS:
                    result.eagain += (round_count - done) + (total - index
                                                             - round_count)
                    return result
                # The error belongs to the first unsent message; classify
                # it, skip it, keep going with the rest.
                if err in DEAD_PEER_ERRNOS:
                    result.dead_peer += 1
                else:
                    result.other += 1
                done += 1
            index += round_count
        return result


def _probe() -> bool:
    """Functional availability check: a real batched round trip."""
    if _LIBC is None:
        return False
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind(("127.0.0.1", 0))
        sock.setblocking(False)
        batch = MmsgBatch(max_batch=2)
        here = sock.getsockname()
        result = batch.send(sock.fileno(), [(b"mmsg0", here), (b"mmsg1", here)])
        if result.sent != 2:
            return False
        got: List[bytes] = []
        for _ in range(1000):
            msgs, _trunc, drained = batch.recv(sock.fileno())
            got.extend(msgs)
            if len(got) >= 2:
                break
            if drained and not msgs and got:
                break
        return got == [b"mmsg0", b"mmsg1"]
    except OSError:
        return False
    finally:
        sock.close()


_AVAILABLE = _probe()


def available() -> bool:
    """Can this process batch syscalls?  (Re-checks ``REPRO_NO_MMSG`` so
    tests can force the portable path at runtime.)"""
    return _AVAILABLE and not os.environ.get("REPRO_NO_MMSG")


def new_batch(max_batch: int = 32, buf_size: int = 4096) -> Optional[MmsgBatch]:
    """A fresh :class:`MmsgBatch`, or ``None`` when unavailable."""
    if not available():
        return None
    return MmsgBatch(max_batch=max_batch, buf_size=buf_size)
