"""Wall-clock scheduler over an asyncio event loop.

Implements :class:`repro.runtime.Scheduler` so the protocol stack's
timers (token retransmission, gather deadlines, checkpoint intervals …)
run on real time.  ``now`` is seconds since this scheduler was created —
the same "seconds since the substrate started" convention the simulator
uses, so protocol timeout constants carry over unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.runtime.interfaces import Scheduler, TimerHandle


def uvloop_available() -> bool:
    """True when the optional ``uvloop`` accelerator can be imported."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def new_event_loop(use_uvloop: bool = False) -> asyncio.AbstractEventLoop:
    """Create a fresh event loop for the live runtime.

    With ``use_uvloop=True`` the loop is a ``uvloop`` one — a drop-in
    libuv-backed replacement that cuts per-wakeup event-loop overhead on
    the hot datagram path.  ``uvloop`` is an *optional* extra
    (``pip install eternal-repro[uvloop]``); requesting it without the
    package installed raises ``RuntimeError`` with an actionable message
    rather than silently degrading, so benchmark arms stay honest.
    """
    if not use_uvloop:
        return asyncio.new_event_loop()
    try:
        import uvloop
    except ImportError as exc:
        raise RuntimeError(
            "uvloop requested but not installed — install the optional "
            "extra (pip install 'eternal-repro[uvloop]') or drop --uvloop"
        ) from exc
    return uvloop.new_event_loop()


class LiveTimerHandle(TimerHandle):
    """Wraps an :class:`asyncio.TimerHandle`."""

    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class LiveScheduler(Scheduler):
    """``call_at``/``call_after`` on an asyncio loop, wall-clock ``now``.

    Unlike the simulator — where scheduling in the past is a programming
    error and raises — a live substrate can observe "late" times simply
    because wall time moved while code ran; past deadlines are clamped to
    "as soon as possible".
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._epoch = self._loop.time()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def now(self) -> float:
        """Wall-clock seconds since this scheduler was created."""
        return self._loop.time() - self._epoch

    def call_at(self, time: float, fn: Callable[..., Any],
                *args: Any) -> TimerHandle:
        when = max(self._epoch + time, self._loop.time())
        return LiveTimerHandle(self._loop.call_at(when, fn, *args))

    def call_after(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> TimerHandle:
        return LiveTimerHandle(
            self._loop.call_later(max(0.0, delay), fn, *args))
