"""Per-node wrapper: a crashable host bound to a UDP port.

:class:`LiveNode` owns what survives a crash (the node's identity and
its UDP port number) and what does not (the current socket and
transport).  ``kill()`` closes the socket and crashes the host —
SIGKILL semantics: everything in flight to the port is dropped by the
kernel, all hosted components are torn down via crash listeners.
``restart()`` re-launches the host; the stack rebuild asks the node for
a fresh transport, which re-binds the same port so the fixed peer
tables stay valid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.live.transport import UdpTransport, bind_udp_socket
from repro.runtime.host import BaseHost

if TYPE_CHECKING:
    from repro.live.system import LiveSystem


class LiveHost(BaseHost):
    """One crashable live host (see :class:`repro.runtime.BaseHost`)."""


class LiveNode:
    """One node of a :class:`~repro.live.system.LiveSystem`."""

    def __init__(self, system: "LiveSystem", node_id: str) -> None:
        self.system = system
        # Bind now so every node's address is known before any stack is
        # built; the first transport adopts this socket.
        self._pending_sock = bind_udp_socket()
        self.port: int = self._pending_sock.getsockname()[1]
        self.host = LiveHost(system.scheduler, node_id,
                             tracer=system.tracer)
        self.transport: Optional[UdpTransport] = None

    @property
    def node_id(self) -> str:
        return self.host.node_id

    @property
    def addr(self) -> Tuple[str, int]:
        return ("127.0.0.1", self.port)

    def make_transport(self) -> UdpTransport:
        """A fresh transport on this node's port (called by the stack
        build, both the initial one and every post-restart rebuild)."""
        if self.transport is not None:
            self.transport.close()
        sock = self._pending_sock
        if sock is None:
            sock = bind_udp_socket(self.port)
        self._pending_sock = None
        self.transport = UdpTransport(
            self.host, sock, self.system.peer_addrs,
            self.system.segment_addr, tracer=self.system.tracer,
        )
        self.transport.open(self.system.loop)
        return self.transport

    def kill(self) -> None:
        """SIGKILL the node: close its socket, lose all volatile state."""
        if not self.host.alive:
            return
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        self.host.crash()

    def restart(self) -> None:
        """Re-launch the node; the restart listeners rebuild the stack
        (which re-binds the port via :meth:`make_transport`)."""
        if self.host.alive:
            return
        self.host.restart()
