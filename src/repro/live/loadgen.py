"""Closed-loop load generation for the live runtime.

:class:`ClosedLoopDriver` generalizes the paper's packet driver
(:mod:`repro.apps.packet_driver`) to any target operation: it keeps
exactly one two-way invocation in flight, each reply immediately
triggering the next request.  Its whole behaviour is a deterministic
function of its application state, so it can itself be actively
replicated, and its recovery contract matches the packet driver's —
after ``set_state()`` it re-issues the single in-flight invocation
before anything new, keeping its recovered ORB's request_ids aligned
with the Interceptor's rewrite offset (§4.2.1).

:data:`LIVE_APPS` maps the ``--app`` CLI choices to the servant under
test plus the operation the driver streams at it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.apps.counter import CounterServant
from repro.apps.kvstore import make_kvstore_factory
from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus

DRIVER_TYPE = "IDL:repro/ClosedLoopDriver:1.0"


class ClosedLoopDriver(Checkpointable):
    """Streams ``op_name(sent)`` invocations at a replicated target."""

    type_id = DRIVER_TYPE

    def __init__(self, target_ior: str, op_name: str, *,
                 max_invocations: int = 0) -> None:
        self._target_ior = target_ior
        self._op_name = op_name
        self._max_invocations = max_invocations     # 0: unbounded
        self.sent = 0           # invocations issued so far
        self.acked = 0          # replies received so far
        self.last_result: Any = None
        self._proxy = None

    # ------------------------------------------------------------------
    # Application logic (deterministic function of state)
    # ------------------------------------------------------------------

    def _ensure_proxy(self):
        if self._proxy is None:
            container = self._eternal_container
            self._proxy = container.connect(IOR.from_string(self._target_ior))
        return self._proxy

    def _invoke(self, token: int) -> None:
        self._ensure_proxy().invoke(self._op_name, token,
                                    on_reply=self._on_reply)

    def _send_next(self) -> None:
        if self._max_invocations and self.sent >= self._max_invocations:
            return
        token = self.sent
        self.sent += 1
        self._invoke(token)

    def _on_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        self.acked += 1
        self.last_result = reply.result
        self._send_next()

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the replica container)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Initial kick: begin the invocation stream."""
        if self.sent == 0:
            self._send_next()

    def resume(self) -> None:
        """Post-recovery: re-issue the in-flight invocation, if any; the
        Interceptor suppresses the duplicate on the wire."""
        if self.sent > self.acked:
            self._invoke(self.sent - 1)
        elif self.sent == 0:
            self._send_next()

    # ------------------------------------------------------------------
    # Checkpointable
    # ------------------------------------------------------------------

    def get_state(self) -> Any:
        return {"sent": self.sent, "acked": self.acked,
                "last_result": self.last_result}

    def set_state(self, state: Any) -> None:
        try:
            self.sent = int(state["sent"])
            self.acked = int(state["acked"])
            self.last_result = state["last_result"]
        except (TypeError, KeyError, ValueError) as exc:
            raise InvalidState(f"bad driver state: {exc}") from exc


class ReadMixDriver(ClosedLoopDriver):
    """A closed-loop driver streaming a read-heavy kvstore mix: every
    ``write_every``-th invocation is a ``put`` (ordered through Totem as
    always), the rest are ``get`` reads the leader-lease fast path can
    serve point-to-point (:mod:`repro.core.readfast`).

    The very first invocation is a write, so the client-server handshake
    is ordered — and therefore replayable to every server replica —
    before any read may bypass the total order.  The op choice is a pure
    function of the invocation index, keeping the driver deterministic
    and safely replicable like its parent.
    """

    def __init__(self, target_ior: str, *, write_every: int = 16,
                 key_space: int = 8, max_invocations: int = 0) -> None:
        super().__init__(target_ior, "get",
                         max_invocations=max_invocations)
        self._write_every = max(1, write_every)
        self._key_space = max(1, key_space)
        self.reads_acked = 0
        self.writes_acked = 0

    def _invoke(self, token: int) -> None:
        proxy = self._ensure_proxy()
        key = f"k{token % self._key_space}"
        if token % self._write_every == 0:
            proxy.invoke("put", key, token, on_reply=self._on_write_reply)
        else:
            proxy.invoke("get", key, on_reply=self._on_read_reply)

    def _on_read_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is ReplyStatus.NO_EXCEPTION:
            self.reads_acked += 1
        self._on_reply(reply)

    def _on_write_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is ReplyStatus.NO_EXCEPTION:
            self.writes_acked += 1
        self._on_reply(reply)

    def get_state(self) -> Any:
        state = super().get_state()
        state["reads_acked"] = self.reads_acked
        state["writes_acked"] = self.writes_acked
        return state

    def set_state(self, state: Any) -> None:
        super().set_state(state)
        self.reads_acked = int(state.get("reads_acked", 0))
        self.writes_acked = int(state.get("writes_acked", 0))


@dataclass(frozen=True)
class LiveApp:
    """One servant the live CLI can deploy, and how to drive it."""

    name: str
    type_id: str
    driver_op: str
    make_factory: Callable[[int], Callable[[], Any]]
    #: Reads the comparable progress value out of a servant instance, so
    #: the CLI can print cross-replica consistency at the end of a run.
    progress_of: Callable[[Any], Any]
    #: Optional custom driver builder (target IOR -> zero-arg factory);
    #: when None the CLI streams ``driver_op`` via ClosedLoopDriver.
    make_driver: Optional[Callable[[str], Callable[[], Any]]] = None


def _counter_factory(state_size: int) -> Callable[[], CounterServant]:
    # The counter's whole state is one integer; state_size is meaningless
    # for it and deliberately ignored.
    return CounterServant


LIVE_APPS = {
    "counter": LiveApp(
        name="counter",
        type_id=CounterServant.type_id,
        driver_op="increment",
        make_factory=_counter_factory,
        progress_of=lambda servant: servant.value,
    ),
    "kvstore": LiveApp(
        name="kvstore",
        type_id="IDL:repro/KvStore:1.0",
        driver_op="echo",
        make_factory=make_kvstore_factory,
        progress_of=lambda servant: servant.echo_count,
    ),
    "kvstore-read": LiveApp(
        name="kvstore-read",
        type_id="IDL:repro/KvStore:1.0",
        driver_op="get",
        make_factory=make_kvstore_factory,
        progress_of=lambda servant: sorted(
            (k, v) for k, v in servant.data.items()
            if isinstance(k, str) and k.startswith("k")),
        make_driver=lambda iogr: (lambda: ReadMixDriver(iogr)),
    ),
}


def make_driver_factory(target_ior: str, op_name: str, *,
                        max_invocations: int = 0
                        ) -> Callable[[], ClosedLoopDriver]:
    """Build a zero-argument :class:`ClosedLoopDriver` constructor, for
    callers (the live CLI) that create the driver only once the hosting
    node is up."""
    def factory() -> ClosedLoopDriver:
        return ClosedLoopDriver(target_ior, op_name,
                                max_invocations=max_invocations)
    return factory
