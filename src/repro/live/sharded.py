"""Sharded live deployments: many UDP Totem rings on one asyncio loop.

The wall-clock counterpart of
:class:`repro.simnet.sharded.ShardedEternalSystem`: N independent
:class:`~repro.live.system.LiveSystem` sub-systems — each with its own
:class:`~repro.live.transport.SegmentDispatcher` (own multicast segment,
own ephemeral UDP ports) and its own token rotation — behind the same
placement layer (:class:`repro.core.placement.HashRing` + explicit
pins), the same cross-ring :class:`~repro.core.gateway.GatewayBridge`,
and one shared observability plane.

Because every ring runs real sockets on the one loop, aggregate
throughput scales with rings until the host's cores or the loop itself
saturate — the live analogue of the simulator's per-ring token bound.

Typical use (inside a running loop)::

    system = LiveShardedSystem(rings=4)
    system.register_factory("IDL:Counter:1.0", CounterServant)
    await system.wait_for(system.ring_formed, timeout=10.0)
    group = system.create_group("counter", "IDL:Counter:1.0")
    ...
    system.close()
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import EternalConfig
from repro.core.gateway import GatewayBridge
from repro.core.placement import HashRing
from repro.core.system import GroupHandle, SharedObservability
from repro.errors import SimulationError, UnknownNode
from repro.ftcorba.properties import FTProperties
from repro.live.clock import LiveScheduler
from repro.live.system import LIVE_TOTEM_CONFIG, LiveSystem
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import ProfilingConfig, SpanResourceProfiler
from repro.obs.telemetry import TelemetryConfig, TelemetryPlane
from repro.runtime.trace import Tracer
from repro.simnet.sharded import DEFAULT_NODE_TEMPLATE, ring_label
from repro.totem.config import TotemConfig


class LiveShardedSystem:
    """N independent live rings behind one placement + routing layer."""

    def __init__(
        self,
        rings: int = 2,
        *,
        node_template: Sequence[str] = DEFAULT_NODE_TEMPLATE,
        totem_config: Optional[TotemConfig] = None,
        eternal_config: Optional[EternalConfig] = None,
        keep_trace_records: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
        profiling: Optional[ProfilingConfig] = None,
        store_dir: Optional[str] = None,
        store_fsync: str = "checkpoint",
        loop: Optional[asyncio.AbstractEventLoop] = None,
        virtual_nodes: int = 64,
    ) -> None:
        if rings < 1:
            raise SimulationError("need at least one ring")
        if not node_template:
            raise SimulationError("need at least one node per ring")
        if loop is None:
            loop = asyncio.get_event_loop()
        self.loop = loop
        self.scheduler = LiveScheduler(loop)
        # One observability plane for the whole cluster (see the simnet
        # facade for the rationale); the facade owns its lifecycle, so the
        # sub-systems' close() must not stop it (LiveSystem checks).
        self.tracer = Tracer(keep_records=keep_trace_records)
        self.tracer.bind_clock(lambda: self.scheduler.now)
        self.metrics = MetricsRegistry()
        self.metrics.bind(self.tracer)
        self.telemetry = TelemetryPlane(
            telemetry or TelemetryConfig(),
            tracer=self.tracer, metrics=self.metrics,
            clock=lambda: self.scheduler.now,
        )
        self.telemetry.bind_system(self)
        if self.telemetry.enabled:
            self.telemetry.start_sampler(self.scheduler)
        self.profiler = SpanResourceProfiler(
            profiling or ProfilingConfig(), metrics=self.metrics,
        ).attach(self.tracer)
        shared = SharedObservability(
            tracer=self.tracer, metrics=self.metrics,
            telemetry=self.telemetry, profiler=self.profiler,
        )
        self.auditor = None
        self.placement = HashRing(virtual_nodes=virtual_nodes)
        self._pinned: Dict[str, str] = {}
        self.bridge = GatewayBridge(self.resolve_ring, tracer=self.tracer)
        self.rings: Dict[str, LiveSystem] = {}
        base_totem = totem_config or LIVE_TOTEM_CONFIG
        for index in range(rings):
            name = ring_label(index)
            sub = LiveSystem(
                [f"{name}.{suffix}" for suffix in node_template],
                totem_config=replace(base_totem, ring_name=name),
                eternal_config=eternal_config,
                # Node ids are globally unique, so all rings can share one
                # store root: each node keeps its own journal directory.
                store_dir=store_dir,
                store_fsync=store_fsync,
                loop=loop,
                shared_observability=shared,
                ring_name=name,
            )
            port = self.bridge.register_ring(name, sub)
            sub.gateway_port = port
            for stack in sub.stacks.values():
                stack.mechanisms.gateway = port
            self.placement.add_shard(name)
            self.rings[name] = sub

    # ------------------------------------------------------------------
    # Placement and routing (same contract as the simnet facade)
    # ------------------------------------------------------------------

    def resolve_ring(self, group_id: str) -> Optional[str]:
        pinned = self._pinned.get(group_id)
        if pinned is not None:
            return pinned
        return self.placement.owner_of(group_id)

    def ring(self, name: str) -> LiveSystem:
        try:
            return self.rings[name]
        except KeyError:
            raise SimulationError(f"no ring named {name!r}") from None

    def ring_of_node(self, node_id: str) -> LiveSystem:
        for sub in self.rings.values():
            if node_id in sub.stacks:
                return sub
        raise UnknownNode(node_id)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def register_factory(self, type_id: str, factory: Callable,
                         *, version: int = 0,
                         ring: Optional[str] = None) -> None:
        targets = [self.ring(ring)] if ring else self.rings.values()
        for sub in targets:
            sub.register_factory(type_id, factory, version=version)

    def create_group(self, group_id: str, type_id: str,
                     properties: Optional[FTProperties] = None,
                     nodes: Optional[List[str]] = None,
                     ring: Optional[str] = None) -> GroupHandle:
        if ring is None and nodes:
            ring = self.ring_of_node(nodes[0]).ring_name
        if ring is None:
            ring = self.placement.owner_of(group_id)
        sub = self.ring(ring)
        if nodes is not None:
            for node_id in nodes:
                if node_id not in sub.stacks:
                    raise SimulationError(
                        f"node {node_id!r} is not in ring {ring!r}; groups "
                        f"cannot span rings"
                    )
        self._pinned[group_id] = ring
        return sub.create_group(group_id, type_id, properties, nodes)

    # ------------------------------------------------------------------
    # Running (time passes by awaiting)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    async def run_for(self, duration: float) -> None:
        await asyncio.sleep(duration)

    async def wait_for(self, predicate: Callable[[], bool],
                       timeout: float = 10.0, *,
                       poll_interval: float = 0.005) -> bool:
        deadline = self.loop.time() + timeout
        while True:
            if predicate():
                return True
            if self.loop.time() >= deadline:
                return bool(predicate())
            await asyncio.sleep(poll_interval)

    def ring_formed(self) -> bool:
        return all(sub.ring_formed() for sub in self.rings.values())

    # ------------------------------------------------------------------
    # Faults and introspection
    # ------------------------------------------------------------------

    def kill_node(self, node_id: str) -> None:
        self.ring_of_node(node_id).kill_node(node_id)

    def restart_node(self, node_id: str) -> None:
        self.ring_of_node(node_id).restart_node(node_id)

    @property
    def stacks(self) -> Dict[str, "object"]:
        merged = {}
        for sub in self.rings.values():
            merged.update(sub.stacks)
        return merged

    def stack(self, node_id: str):
        return self.ring_of_node(node_id).stack(node_id)

    def mechanisms(self, node_id: str):
        return self.ring_of_node(node_id).mechanisms(node_id)

    def attach_auditor(self, auditor=None):
        if auditor is None:
            from repro.obs.audit import ConsistencyAuditor
            auditor = ConsistencyAuditor(metrics=self.metrics)
        self.auditor = auditor.bind(self.tracer)
        if self.telemetry.enabled:
            self.auditor.on_finding = self.telemetry.flight.record_finding
        return self.auditor

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear every ring down, then stop the shared plane."""
        self.telemetry.stop()
        self.profiler.release()
        for sub in self.rings.values():
            sub.close()
