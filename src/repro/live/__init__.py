"""The live runtime: the Eternal/Totem stack over UDP and the wall clock.

Hosts the *unchanged* protocol code (Totem ring member, Replication and
Recovery Mechanisms, interceptor, managers) on the
:mod:`repro.runtime` interfaces implemented with asyncio: real UDP
sockets on loopback, ``loop.call_later`` timers, and wall-clock time.
A :class:`~repro.live.system.LiveSystem` mirrors the simulator's
``EternalSystem`` facade; ``python -m repro live`` drives a kill/recover
scenario end to end and reports wall-clock recovery latency.

Tracing, metrics, the online consistency auditor, and the health
exposition from :mod:`repro.obs` work identically in live mode — they
only ever consumed the trace stream and the system facade.
"""

from repro.live.clock import LiveScheduler
from repro.live.node import LiveHost, LiveNode
from repro.live.system import LIVE_TOTEM_CONFIG, LiveSystem
from repro.live.transport import SegmentDispatcher, UdpTransport

__all__ = [
    "LIVE_TOTEM_CONFIG",
    "LiveHost",
    "LiveNode",
    "LiveScheduler",
    "LiveSystem",
    "SegmentDispatcher",
    "UdpTransport",
]
