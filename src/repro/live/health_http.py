"""Serve the :mod:`repro.obs.health` exposition over HTTP.

A deliberately tiny HTTP/1.0 responder on asyncio streams — good enough
for ``curl``, a Prometheus scrape job, and ``python -m repro top --url``;
not a general web server.  Two routes:

* ``/metrics/history`` — a JSON dump of the telemetry plane's sampled
  time series (counter deltas, gauges, histogram quantiles; see
  :class:`repro.obs.telemetry.MetricsHistory`), with a fresh sample taken
  at request time so the newest point is never older than the scrape;
* anything else — the Prometheus-style text snapshot.
"""

from __future__ import annotations

import asyncio
import json
from typing import Tuple

from repro.obs.health import render_health


async def _handle(system, reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    path = "/"
    try:
        # Read the request line for the path, then drain the header block;
        # any method works.
        first = await asyncio.wait_for(reader.readline(), timeout=5.0)
        parts = first.decode("latin-1", "replace").split()
        if len(parts) >= 2:
            path = parts[1]
        while first.rstrip(b"\r\n"):
            first = await asyncio.wait_for(reader.readline(), timeout=5.0)
    except (asyncio.TimeoutError, ConnectionError):
        writer.close()
        return
    content_type = b"text/plain; version=0.0.4; charset=utf-8"
    try:
        if path.startswith("/metrics/history"):
            system.telemetry.sample_now()
            body = json.dumps(
                system.telemetry.history.snapshot()).encode("utf-8")
            content_type = b"application/json"
        else:
            body = render_health(system,
                                 auditor=system.auditor).encode("utf-8")
        status = b"200 OK"
    except Exception as exc:   # snapshot raced a teardown — report, not die
        body = f"health snapshot failed: {exc}\n".encode("utf-8")
        status = b"500 Internal Server Error"
    writer.write(b"HTTP/1.0 " + status + b"\r\n"
                 b"Content-Type: " + content_type + b"\r\n"
                 + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                 + body)
    try:
        await writer.drain()
    except ConnectionError:
        pass
    writer.close()


async def start_health_server(system, port: int = 0,
                              host: str = "127.0.0.1"
                              ) -> Tuple[asyncio.AbstractServer, int]:
    """Start serving health snapshots; returns ``(server, bound_port)``
    (pass ``port=0`` for an ephemeral port)."""
    server = await asyncio.start_server(
        lambda r, w: _handle(system, r, w), host, port)
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port
