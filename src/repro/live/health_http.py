"""Serve the :mod:`repro.obs.health` exposition over HTTP.

A deliberately tiny HTTP/1.0 responder on asyncio streams — every
request, whatever its path, gets a fresh Prometheus-style snapshot of
the running :class:`~repro.live.system.LiveSystem`.  Good enough for
``curl`` and a Prometheus scrape job pointed at
``http://127.0.0.1:<port>/``; not a general web server.
"""

from __future__ import annotations

import asyncio
from typing import Tuple

from repro.obs.health import render_health


async def _handle(system, reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    try:
        # Drain the request head; we answer any method/path the same way.
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if not line.rstrip(b"\r\n"):
                break
    except (asyncio.TimeoutError, ConnectionError):
        writer.close()
        return
    try:
        body = render_health(system, auditor=system.auditor).encode("utf-8")
        status = b"200 OK"
    except Exception as exc:   # snapshot raced a teardown — report, not die
        body = f"health snapshot failed: {exc}\n".encode("utf-8")
        status = b"500 Internal Server Error"
    writer.write(b"HTTP/1.0 " + status + b"\r\n"
                 b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                 + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                 + body)
    try:
        await writer.drain()
    except ConnectionError:
        pass
    writer.close()


async def start_health_server(system, port: int = 0,
                              host: str = "127.0.0.1"
                              ) -> Tuple[asyncio.AbstractServer, int]:
    """Start serving health snapshots; returns ``(server, bound_port)``
    (pass ``port=0`` for an ephemeral port)."""
    server = await asyncio.start_server(
        lambda r, w: _handle(system, r, w), host, port)
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port
