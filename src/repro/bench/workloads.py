"""Workload generation: open-loop drivers and arrival schedules.

The paper's packet driver is *closed-loop* (one invocation in flight; the
reply clocks the next request), which measures response time but cannot
probe throughput saturation.  This module adds an **open-loop** driver that
issues invocations on a precomputed arrival schedule regardless of replies
— the standard tool for latency-vs-offered-load curves.

Schedules are deterministic functions of (rate, seed), so runs repeat
exactly.  The open-loop driver is intended for *unreplicated* (1-replica)
client groups: a timer-driven client is inherently non-deterministic
across replicas, which is exactly why the paper's replicated test client
is reply-clocked.
"""

from __future__ import annotations

from typing import Any, List

from repro.ftcorba.checkpointable import Checkpointable, InvalidState
from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus


def uniform_schedule(rate: float, duration: float,
                     start: float = 0.0) -> List[float]:
    """Evenly spaced arrivals at ``rate`` per second for ``duration``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    interval = 1.0 / rate
    count = int(duration * rate)
    return [start + i * interval for i in range(count)]


def poisson_schedule(rate: float, duration: float, seed: int = 0,
                     start: float = 0.0) -> List[float]:
    """Poisson arrivals at mean ``rate`` per second (deterministic in
    (rate, seed))."""
    import math
    import random
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    arrivals: List[float] = []
    clock = start
    while clock - start < duration:
        clock += -math.log(1.0 - rng.random()) / rate
        if clock - start < duration:
            arrivals.append(clock)
    return arrivals


def bursty_schedule(rate: float, duration: float, *, burst: int = 10,
                    start: float = 0.0) -> List[float]:
    """Arrivals in instantaneous bursts of ``burst`` at the same mean rate."""
    if rate <= 0 or burst < 1:
        raise ValueError("rate and burst must be positive")
    gap = burst / rate
    arrivals: List[float] = []
    clock = start
    while clock - start < duration:
        arrivals.extend([clock] * burst)
        clock += gap
    return [t for t in arrivals if t - start < duration]


class OpenLoopDriverServant(Checkpointable):
    """Issues ``echo`` invocations on a fixed arrival schedule.

    Tracks per-invocation latency (send → reply, simulated seconds).
    Replies that never arrive simply leave a hole in ``latencies``.
    """

    type_id = "IDL:repro/OpenLoopDriver:1.0"

    def __init__(self, target_ior: str, schedule: List[float]) -> None:
        self._target_ior = target_ior
        self._schedule = list(schedule)
        self.sent = 0
        self.completed = 0
        self.latencies: List[float] = []
        self._send_times = {}
        self._proxy = None

    def _container(self):
        return self._eternal_container

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._container().connect(
                IOR.from_string(self._target_ior)
            )
        return self._proxy

    def start(self) -> None:
        process = self._container().process
        now = process.scheduler.now
        for at in self._schedule:
            delay = max(0.0, at - now)
            process.call_after(delay, self._fire)

    def _fire(self) -> None:
        proxy = self._ensure()
        token = self.sent
        self.sent += 1
        self._send_times[token] = self._container().process.scheduler.now
        proxy.invoke("echo", token, on_reply=self._on_reply)

    def _on_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        sent_at = self._send_times.pop(reply.result, None)
        if sent_at is None:
            return
        now = self._container().process.scheduler.now
        self.completed += 1
        self.latencies.append(now - sent_at)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        import math
        ordered = sorted(self.latencies)
        index = max(0, min(len(ordered) - 1,
                           math.ceil(0.99 * len(ordered)) - 1))
        return ordered[index]

    # ------------------------------------------------------------------
    # Checkpointable (the driver itself can be recovered, though load
    # generators are normally deployed unreplicated)
    # ------------------------------------------------------------------

    def get_state(self) -> Any:
        return {"sent": self.sent, "completed": self.completed}

    def set_state(self, state: Any) -> None:
        try:
            self.sent = int(state["sent"])
            self.completed = int(state["completed"])
        except (TypeError, KeyError, ValueError) as exc:
            raise InvalidState(f"bad driver state: {exc}") from exc


def make_open_loop_factory(target_ior: str, schedule: List[float]):
    """Factory for deploying an open-loop driver via a GenericFactory."""
    def factory() -> OpenLoopDriverServant:
        return OpenLoopDriverServant(target_ior, schedule)
    return factory
