"""Benchmark harness support: deployments, baselines, and reporting.

The benchmark files under ``benchmarks/`` regenerate the paper's evaluation
(Figure 6, the §6 overhead claim, and the replication-style trade-offs) plus
ablations; this package holds the shared machinery they use:

* :mod:`repro.bench.deployments` — canned EternalSystem deployments
  (replicated server + packet-driver client, per style/size/config).
* :mod:`repro.bench.baseline` — the *unreplicated* client/server pair over
  plain point-to-point messaging, the comparison point for the fault-free
  overhead measurement.
* :mod:`repro.bench.reporting` — fixed-width result tables with
  paper-vs-measured context.
* :mod:`repro.bench.sweeps` — the checkpoint-transfer-cost and
  wire-bound throughput sweeps shared by the CLI (``python -m repro
  checkpoint`` / ``throughput``) and the benchmark suite.
"""

from repro.bench.baseline import BaselinePair
from repro.bench.deployments import ClientServerDeployment, build_client_server
from repro.bench.plot import ascii_plot
from repro.bench.reporting import print_table
from repro.bench.stats import Summary, aggregate, summarize
from repro.bench.sweeps import (
    run_checkpoint_point,
    run_checkpoint_sweep,
    run_throughput_point,
    run_throughput_sweep,
)
from repro.bench.workloads import (
    OpenLoopDriverServant,
    bursty_schedule,
    poisson_schedule,
    uniform_schedule,
)

__all__ = [
    "BaselinePair",
    "ClientServerDeployment",
    "build_client_server",
    "print_table",
    "ascii_plot",
    "Summary",
    "aggregate",
    "summarize",
    "OpenLoopDriverServant",
    "run_checkpoint_point",
    "run_checkpoint_sweep",
    "run_throughput_point",
    "run_throughput_sweep",
    "uniform_schedule",
    "poisson_schedule",
    "bursty_schedule",
]
