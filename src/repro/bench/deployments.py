"""Canned deployments for benchmarks and integration tests.

The standard topology mirrors the paper's experiment (§6): a packet-driver
client streaming two-way invocations at a replicated server, plus a manager
node.  Builders return a :class:`ClientServerDeployment` exposing the
handles the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.kvstore import KvStoreServant, make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.core.config import EternalConfig
from repro.core.system import EternalSystem, GroupHandle
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.orb.servant import operation
from repro.simnet.network import ETHERNET_100MBPS, NetworkConfig
from repro.totem.config import TotemConfig

KVSTORE_TYPE = "IDL:repro/KvStore:1.0"
DRIVER_TYPE = "IDL:repro/PacketDriver:1.0"


def make_weighted_kvstore_factory(payload_size: int, echo_duration: float,
                                  jitter: float = 0.0):
    """A kvstore factory whose ``echo`` costs ``echo_duration`` simulated
    seconds — used to model realistic (1999-era ORB) operation costs in the
    overhead experiment.

    ``jitter`` (a fraction, e.g. 0.1) spreads each call's duration
    deterministically over ±jitter around the mean, breaking the phase lock
    between a serial client and the token rotation so that mean latency
    reflects the average token wait rather than a beat artifact.  The
    sequence is a pure function of the invocation count, so active replicas
    stay deterministic.
    """

    class WeightedKvStore(KvStoreServant):
        def _echo_duration(self) -> float:
            if jitter <= 0:
                return echo_duration
            phase = (self.echo_count * 2654435761) % 1000 / 999.0
            return echo_duration * (1.0 - jitter + 2.0 * jitter * phase)

        @operation(duration=echo_duration)
        def echo(self, token: int) -> int:
            self.echo_count += 1
            return token

        def _operation_duration(self, name: str) -> float:
            if name == "echo":
                return self._echo_duration()
            return super()._operation_duration(name)

    def factory() -> KvStoreServant:
        return WeightedKvStore(payload_size)

    return factory


@dataclass
class ClientServerDeployment:
    """A running system: replicated kvstore server + packet-driver client."""

    system: EternalSystem
    server_group: GroupHandle
    client_group: GroupHandle
    server_nodes: List[str]
    client_nodes: List[str]
    #: Simulated instant of the last injected kill (set by fault drivers).
    kill_time: float = 0.0

    @property
    def driver(self) -> PacketDriverServant:
        for node in self.client_nodes:
            servant = self.client_group.servant_on(node)
            if servant is not None:
                return servant
        raise LookupError("no live packet driver replica")

    def server_servant(self, node: str) -> Optional[KvStoreServant]:
        return self.server_group.servant_on(node)


def build_client_server(
    *,
    style: ReplicationStyle = ReplicationStyle.ACTIVE,
    server_replicas: int = 2,
    client_replicas: int = 1,
    state_size: int = 1000,
    checkpoint_interval: float = 0.1,
    echo_duration: Optional[float] = None,
    echo_jitter: float = 0.0,
    eternal_config: Optional[EternalConfig] = None,
    network_config: NetworkConfig = ETHERNET_100MBPS,
    totem_config: Optional[TotemConfig] = None,
    seed: int = 0,
    warmup: float = 0.1,
    keep_trace_records: bool = False,
    telemetry=None,
    profiling=None,
    store_factory=None,
    scribble_every: int = 0,
    scribble_fraction: float = 0.1,
) -> ClientServerDeployment:
    """Deploy the paper's measurement topology and warm it up.

    Nodes: one manager (``m``), ``client_replicas`` client nodes (``c*``),
    ``server_replicas`` server nodes (``s*``).  The kvstore server group is
    replicated in ``style`` with ``state_size`` bytes of application-level
    state; the packet-driver client streams ``echo`` invocations at it.

    ``scribble_every`` > 0 mixes a ``scribble(scribble_fraction)`` write
    into the stream every that many echo replies, dirtying a rotating
    fraction of the server's bulk state — the workload under which delta
    checkpointing earns its keep.

    ``store_factory`` gives each node a durable store (see
    :mod:`repro.store`) that survives kill/restart — the cold-restart
    experiments pass ``lambda node_id: MemoryStore()``.
    """
    server_nodes = [f"s{i + 1}" for i in range(server_replicas)]
    client_nodes = [f"c{i + 1}" for i in range(client_replicas)]
    node_ids = ["m"] + client_nodes + server_nodes
    system = EternalSystem(
        node_ids,
        seed=seed,
        network_config=network_config,
        totem_config=totem_config,
        eternal_config=eternal_config,
        keep_trace_records=keep_trace_records,
        telemetry=telemetry,
        profiling=profiling,
        store_factory=store_factory,
    )
    if echo_duration is None:
        server_factory = make_kvstore_factory(state_size)
    else:
        server_factory = make_weighted_kvstore_factory(
            state_size, echo_duration, jitter=echo_jitter
        )
    system.register_factory(KVSTORE_TYPE, server_factory, nodes=server_nodes)
    server_group = system.create_group(
        "store", KVSTORE_TYPE,
        FTProperties(
            replication_style=style,
            initial_replicas=server_replicas,
            min_replicas=1,
            checkpoint_interval=checkpoint_interval,
        ),
        nodes=server_nodes,
    )
    system.run_for(0.05)
    iogr = server_group.iogr().stringify()
    system.register_factory(
        DRIVER_TYPE,
        lambda: PacketDriverServant(iogr, scribble_every=scribble_every,
                                    scribble_fraction=scribble_fraction),
        nodes=client_nodes)
    client_group = system.create_group(
        "driver", DRIVER_TYPE,
        FTProperties(
            replication_style=ReplicationStyle.ACTIVE,
            initial_replicas=client_replicas,
            min_replicas=1,
        ),
        nodes=client_nodes,
    )
    system.run_for(warmup)
    return ClientServerDeployment(
        system=system,
        server_group=server_group,
        client_group=client_group,
        server_nodes=server_nodes,
        client_nodes=client_nodes,
    )


def measure_recovery(deployment: ClientServerDeployment, node: str,
                     *, downtime: float = 0.05,
                     timeout: float = 10.0) -> float:
    """Kill the server replica on ``node``, re-launch it, and return the
    paper's recovery-time metric: re-launch → reinstatement (operational).

    Returns the recovery time in simulated seconds (raises on timeout).
    """
    system = deployment.system
    system.kill_node(node)
    system.run_for(downtime)
    relaunched_at = system.now
    system.restart_node(node)
    ok = system.wait_for(
        lambda: deployment.server_group.is_operational_on(node),
        timeout=timeout,
    )
    if not ok:
        raise TimeoutError(f"replica on {node} did not recover within "
                           f"{timeout}s (simulated)")
    return system.now - relaunched_at
