"""Multi-seed aggregation for benchmark sweeps.

The simulator is deterministic per seed; statistical claims (means,
spreads, confidence intervals) come from running the same experiment under
several seeds.  :func:`aggregate` runs a measurement callable across seeds
and summarizes; :class:`Summary` carries the moments benchmark tables
print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class Summary:
    """Aggregated measurements from repeated deterministic runs."""

    samples: tuple

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for n < 2)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self.samples)
                         / (self.n - 1))

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of a normal-approximation 95% confidence interval.

        With the handful of seeds benches use this is indicative, not
        rigorous — the tables label it ±.
        """
        if self.n < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.n)

    def format(self, scale: float = 1.0, digits: int = 2) -> str:
        """Render as ``mean ±ci`` after scaling (e.g. seconds→ms)."""
        return (f"{self.mean * scale:.{digits}f} "
                f"±{self.ci95_halfwidth * scale:.{digits}f}")


def summarize(samples: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; rejects empty sample sets."""
    if not samples:
        raise ValueError("cannot summarize zero samples")
    return Summary(tuple(float(s) for s in samples))


def aggregate(measure: Callable[[int], float],
              seeds: Sequence[int] = (0, 1, 2)) -> Summary:
    """Run ``measure(seed)`` for every seed and summarize the results."""
    return summarize([measure(seed) for seed in seeds])
