"""Terminal line/scatter plots for benchmark sweeps.

Dependency-free ASCII rendering so the Figure 6 curve is *visible* in the
benchmark output, not just tabulated.

::

    print(ascii_plot(sizes, times_ms, x_label="state bytes",
                     y_label="recovery ms", logx=True))
"""

from __future__ import annotations

import math
from typing import List, Sequence


def _transform(values: Sequence[float], log: bool) -> List[float]:
    if not log:
        return [float(v) for v in values]
    return [math.log10(max(v, 1e-12)) for v in values]


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    marker: str = "*",
) -> str:
    """Render (xs, ys) as an ASCII chart; points are joined visually by
    their own density, not interpolated."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal, non-empty xs and ys")
    tx = _transform(xs, logx)
    ty = [float(y) for y in ys]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(tx, ty):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    margin = max(len(top_label), len(bottom_label), len(y_label) + 1)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif index == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_lo_label = f"{xs[0]:.3g}" if not logx else f"{min(xs):.3g}"
    x_hi_label = f"{max(xs):.3g}"
    scale_note = " (log x)" if logx else ""
    footer = (" " * margin + "  " + x_lo_label
              + x_label.center(width - len(x_lo_label) - len(x_hi_label))
              + x_hi_label + scale_note)
    lines.append(footer)
    return "\n".join(lines)
