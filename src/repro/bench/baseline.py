"""The unreplicated baseline: one client, one server, plain point-to-point.

The paper quantifies Eternal's fault-free cost as "within the range of
10-15% of the response time for fault-tolerant CORBA test applications,
over their unreplicated counterparts" (§6).  This module provides the
unreplicated counterpart: the same mini-ORB and GIOP bytes, but carried by
direct unicast frames (the simulated TCP path) with no interception, no
multicast, no replication mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus
from repro.orb.orb import Orb
from repro.orb.servant import Servant
from repro.simnet.endpoint import Endpoint
from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.simnet.trace import NULL_TRACER, Tracer

BASELINE_PORT = 2809


@dataclass(frozen=True)
class RawIiop:
    """A point-to-point frame: IIOP bytes between two concrete nodes."""

    src_node: str
    dst_node: str
    kind: str            # "request" | "reply"
    data: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.data) + 8     # TCP/IP-ish framing overhead


class BaselineServer:
    """An unreplicated server: ORB + servant on one node."""

    def __init__(self, process: Process, network: Network, servant: Servant,
                 *, tracer: Tracer = NULL_TRACER) -> None:
        self.process = process
        self.endpoint = Endpoint(process, network)
        self.orb = Orb(f"{process.node_id}:baseline", host=process.node_id,
                       port=BASELINE_PORT)
        self.ior = self.orb.activate(servant)
        self.servant = servant
        self.tracer = tracer
        self._busy = False
        self._backlog: List[RawIiop] = []
        self.endpoint.register(RawIiop, self._on_frame)

    def _on_frame(self, src: str, frame: RawIiop) -> None:
        if frame.kind != "request":
            return
        if self._busy:
            self._backlog.append(frame)
            return
        self._execute(frame)

    def _execute(self, frame: RawIiop) -> None:
        decoded = self.orb.decode_request(frame.src_node, frame.data)
        if decoded is None:
            return
        self._busy = True
        self.process.call_after(decoded.duration, self._complete, frame,
                                decoded)

    def _complete(self, frame: RawIiop, decoded) -> None:
        reply = self.orb.execute_request(decoded)
        self._busy = False
        if reply is not None:
            self.endpoint.unicast(
                frame.src_node,
                RawIiop(self.process.node_id, frame.src_node, "reply", reply),
                len(reply) + 8,
            )
        if self._backlog:
            self._execute(self._backlog.pop(0))


class BaselineClient:
    """An unreplicated client issuing two-way invocations back-to-back."""

    def __init__(self, process: Process, network: Network, server_ior: IOR,
                 *, tracer: Tracer = NULL_TRACER) -> None:
        self.process = process
        self.endpoint = Endpoint(process, network)
        self.orb = Orb(f"{process.node_id}:baseline-client")
        self.orb.set_client_transport(self._transport)
        self.proxy = self.orb.connect(server_ior)
        self.server_node = server_ior.host
        self.tracer = tracer
        self.completed = 0
        self.latencies: List[float] = []
        self._sent_at: Optional[float] = None
        self._running = False
        self.endpoint.register(RawIiop, self._on_frame)

    def _transport(self, host: str, port: int, data: bytes) -> None:
        self.endpoint.unicast(
            self.server_node,
            RawIiop(self.process.node_id, self.server_node, "request", data),
            len(data) + 8,
        )

    def _on_frame(self, src: str, frame: RawIiop) -> None:
        if frame.kind != "reply":
            return
        self.orb.handle_reply(self.proxy.ior.host, self.proxy.ior.port,
                              frame.data)

    def start(self) -> None:
        self._running = True
        self._send_next()

    def stop(self) -> None:
        self._running = False

    def _send_next(self) -> None:
        self._sent_at = self.process.scheduler.now
        self.proxy.invoke("echo", self.completed, on_reply=self._on_reply)

    def _on_reply(self, reply: ReplyMessage) -> None:
        if reply.reply_status is not ReplyStatus.NO_EXCEPTION:
            return
        self.latencies.append(self.process.scheduler.now - self._sent_at)
        self.completed += 1
        if self._running:
            self._send_next()

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)


class BaselinePair:
    """A ready-to-run unreplicated client/server pair on a fresh network."""

    def __init__(self, servant_factory, *, network_config=None,
                 seed: int = 0) -> None:
        from repro.simnet.network import ETHERNET_100MBPS
        self.scheduler = Scheduler()
        self.tracer = Tracer(keep_records=False)
        self.tracer.bind_clock(lambda: self.scheduler.now)
        self.network = Network(self.scheduler,
                               network_config or ETHERNET_100MBPS,
                               tracer=self.tracer)
        server_proc = Process(self.scheduler, "server", tracer=self.tracer)
        client_proc = Process(self.scheduler, "client", tracer=self.tracer)
        self.server = BaselineServer(server_proc, self.network,
                                     servant_factory(), tracer=self.tracer)
        self.client = BaselineClient(client_proc, self.network,
                                     self.server.ior, tracer=self.tracer)

    def run(self, duration: float) -> None:
        self.client.start()
        self.scheduler.run_until(self.scheduler.now + duration)
        self.client.stop()
