"""Benchmark regression recording and comparison.

A bench run can be summarized into a ``BenchRecord`` — per-sweep-point
values plus median/p95 of the key metric, the machine it ran on, and the
git revision — and written to ``BENCH_<name>.json``.  A later run loads
the previous file and compares with a configurable tolerance:

* the key metric is **lower-is-better** (recovery milliseconds);
* the comparison fails only if the current summary statistic exceeds
  ``baseline * (1 + tolerance)`` — improvements always pass;
* per-point comparisons are reported but only the summary gates.

All times in this repository are *simulated* seconds, so records are
deterministic for a given seed and comparable across machines; machine
info and git sha are recorded for provenance, not matched.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

SCHEMA = "repro.bench.regression/1"


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Median and p95 (nearest-rank) plus bounds of ``samples``."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    ordered = sorted(samples)

    def rank(q: float) -> float:
        return ordered[max(1, math.ceil(q * len(ordered))) - 1]

    return {
        "count": len(ordered),
        "median": rank(0.50),
        "p95": rank(0.95),
        "min": ordered[0],
        "max": ordered[-1],
    }


def machine_info() -> Dict[str, str]:
    """Provenance: where the record was produced."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }


def current_git_sha() -> Optional[str]:
    """The repository's HEAD sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class BenchRecord:
    """One recorded benchmark: points, summary, and provenance."""

    name: str
    metric: str
    unit: str
    points: Dict[str, float]
    summary: Dict[str, float] = field(default_factory=dict)
    machine: Dict[str, str] = field(default_factory=dict)
    git_sha: Optional[str] = None
    schema: str = SCHEMA

    @classmethod
    def from_points(cls, name: str, metric: str, unit: str,
                    points: Dict[str, float]) -> "BenchRecord":
        """Build a record (summary and provenance filled in)."""
        return cls(
            name=name, metric=metric, unit=unit, points=dict(points),
            summary=summarize(list(points.values())),
            machine=machine_info(),
            git_sha=current_git_sha(),
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "name": self.name,
                "metric": self.metric,
                "unit": self.unit,
                "points": self.points,
                "summary": self.summary,
                "machine": self.machine,
                "git_sha": self.git_sha,
            },
            indent=2, sort_keys=True,
        ) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "BenchRecord":
        data = json.loads(text)
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bench record schema {data.get('schema')!r}"
            )
        return cls(
            name=data["name"], metric=data["metric"], unit=data["unit"],
            points={str(k): float(v) for k, v in data["points"].items()},
            # "count" stays integral so records round-trip byte-identically
            summary={str(k): (int(v) if k == "count" else float(v))
                     for k, v in data.get("summary", {}).items()},
            machine=dict(data.get("machine", {})),
            git_sha=data.get("git_sha"),
            schema=data["schema"],
        )

    @classmethod
    def load(cls, path: str) -> "BenchRecord":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


@dataclass
class Comparison:
    """Outcome of comparing a current record against a baseline."""

    ok: bool
    verdict: str
    regressions: List[str] = field(default_factory=list)


def compare_bench_records(baseline: BenchRecord, current: BenchRecord,
                          *, tolerance: float = 0.2) -> Comparison:
    """Compare lower-is-better records; fail on worse-than-tolerance.

    Gates on the summary ``median`` and ``p95``; per-point excursions are
    listed for context but do not fail on their own (a single sweep point
    shifting inside an unchanged distribution is noise, not a regression).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if baseline.metric != current.metric or baseline.name != current.name:
        raise ValueError(
            f"records disagree: {baseline.name}/{baseline.metric} vs "
            f"{current.name}/{current.metric}"
        )
    regressions: List[str] = []
    for stat in ("median", "p95"):
        base = baseline.summary.get(stat)
        cur = current.summary.get(stat)
        if base is None or cur is None:
            continue
        limit = base * (1 + tolerance)
        if cur > limit:
            regressions.append(
                f"{stat}: {cur:.3f}{current.unit} exceeds baseline "
                f"{base:.3f}{current.unit} by more than "
                f"{tolerance:.0%} (limit {limit:.3f})"
            )
    notes: List[str] = []
    for key in sorted(baseline.points.keys() & current.points.keys()):
        base, cur = baseline.points[key], current.points[key]
        if base > 0 and cur > base * (1 + tolerance):
            notes.append(
                f"point {key}: {cur:.3f} vs baseline {base:.3f}"
            )
    ok = not regressions
    if ok:
        verdict = (f"PASS: {current.name} within {tolerance:.0%} of "
                   f"baseline ({baseline.git_sha or 'unknown sha'})")
        if notes:
            verdict += f" — {len(notes)} point(s) drifted: " + "; ".join(notes)
    else:
        verdict = (f"FAIL: {current.name} regressed vs baseline "
                   f"({baseline.git_sha or 'unknown sha'}): "
                   + "; ".join(regressions))
    return Comparison(ok=ok, verdict=verdict, regressions=regressions)
